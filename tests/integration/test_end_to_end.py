"""Cross-module integration tests beyond the running example."""

import pytest

from repro import PCQEngine, QueryRequest, QueryStatus
from repro.cost import BinomialCost, LinearCost
from repro.increment import SimulatedImprovementService
from repro.policy import PolicyStore
from repro.sql import run_sql
from repro.storage import Database, REAL, Schema, TEXT
from repro.trust import (
    CollectionMethod,
    ConfidenceAssigner,
    DataSource,
    ProvenanceRecord,
)
from repro.workload import healthcare_database


class TestTrustToPolicyPipeline:
    """Element 1 (confidence assignment) feeding elements 2–4."""

    def test_provenance_seeds_query_confidence(self):
        db = Database()
        table = db.create_table("facts", Schema.of(("k", TEXT), ("v", REAL)))
        good = table.insert(["a", 1.0], cost_model=LinearCost(50.0))
        bad = table.insert(["b", 2.0], cost_model=LinearCost(50.0))

        assigner = ConfidenceAssigner(half_life_days=None)
        bureau = DataSource("bureau", 0.9)
        blog = DataSource("blog", 0.2)
        feed = CollectionMethod("feed", 1.0)
        assigner.assign(
            table,
            {
                good: ProvenanceRecord(bureau, feed),
                bad: ProvenanceRecord(blog, feed),
            },
        )

        result = run_sql(db, "SELECT k FROM facts")
        confidences = dict(
            zip((row.values[0] for row in result), result.confidences(db))
        )
        assert confidences["a"] == pytest.approx(0.9)
        assert confidences["b"] == pytest.approx(0.2)

        policies = PolicyStore(default_threshold=0.5)
        policies.add_role("analyst")
        policies.add_purpose("reporting")
        policies.add_user("u", roles=["analyst"])
        engine = PCQEngine(db, policies)
        outcome = engine.execute(
            QueryRequest("SELECT k FROM facts", "reporting", 0.0), user="u"
        )
        assert outcome.status is QueryStatus.SATISFIED
        assert outcome.rows == [("a",)]


class TestHealthcareScenario:
    def test_researcher_vs_oncologist_thresholds(self):
        scenario = healthcare_database(patients=120, seed=4)
        sql = (
            "SELECT p.PatientId, t.Treatment, t.ResponseRate "
            "FROM Patients p JOIN Treatments t ON p.PatientId = t.PatientId "
            "WHERE p.Diagnosis = 'breast'"
        )
        engine = PCQEngine(scenario.db, scenario.policies)
        research = engine.execute(
            QueryRequest(sql, "hypothesis-generation", 0.0), user="rachel"
        )
        care = engine.execute(
            QueryRequest(sql, "treatment-evaluation", 0.0), user="omar"
        )
        # The laxer research policy releases at least as many rows.
        assert len(research.rows) >= len(care.rows)

    def test_oncologist_improvement_flow(self):
        scenario = healthcare_database(patients=60, seed=9)
        sql = (
            "SELECT p.PatientId, t.Treatment FROM Patients p "
            "JOIN Treatments t ON p.PatientId = t.PatientId "
            "WHERE p.Stage = 'IV'"
        )
        service = SimulatedImprovementService()
        engine = PCQEngine(
            scenario.db, scenario.policies, improvement=service, solver="greedy"
        )
        result = engine.execute(
            QueryRequest(sql, "treatment-evaluation", 0.6), user="omar"
        )
        if result.status is QueryStatus.IMPROVED:
            assert service.spent > 0
            assert result.released_fraction >= 0.6 - 1e-9
        else:
            assert result.status in (
                QueryStatus.SATISFIED,
                QueryStatus.INFEASIBLE,
            )


class TestMultiQuerySession:
    """§4's multi-query extension: improvements persist across queries."""

    def test_shared_base_tuples_benefit_later_queries(self):
        db = Database()
        table = db.create_table("m", Schema.of(("k", TEXT), ("grp", TEXT)))
        for key, group in [("a", "g1"), ("b", "g1"), ("c", "g2")]:
            table.insert(
                [key, group],
                confidence=0.3,
                cost_model=BinomialCost(10.0, 20.0),
            )
        policies = PolicyStore(default_threshold=0.5)
        policies.add_role("r")
        policies.add_purpose("p")
        policies.add_user("u", roles=["r"])
        engine = PCQEngine(db, policies, solver="greedy")

        first = engine.execute(
            QueryRequest("SELECT k FROM m WHERE grp = 'g1'", "p", 1.0), user="u"
        )
        assert first.status is QueryStatus.IMPROVED
        # The same base tuples now answer an overlapping query directly.
        second = engine.execute(
            QueryRequest("SELECT k FROM m WHERE k = 'a'", "p", 1.0), user="u"
        )
        assert second.status is QueryStatus.SATISFIED


class TestAggregateQueriesThroughPolicy:
    def test_group_confidence_filtering(self):
        db = Database()
        table = db.create_table("sales", Schema.of(("region", TEXT), ("amt", REAL)))
        table.insert(["east", 10.0], confidence=0.9)
        table.insert(["east", 20.0], confidence=0.8)
        table.insert(["west", 30.0], confidence=0.1)
        policies = PolicyStore(default_threshold=0.5)
        policies.add_role("r")
        policies.add_purpose("p")
        policies.add_user("u", roles=["r"])
        engine = PCQEngine(db, policies)
        result = engine.execute(
            QueryRequest(
                "SELECT region, SUM(amt) AS total FROM sales GROUP BY region",
                "p",
                0.0,
            ),
            user="u",
        )
        regions = {row[0] for row in result.rows}
        assert regions == {"east"}  # west's group confidence is 0.1
