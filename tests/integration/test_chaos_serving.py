"""Chaos tests: the serving stack under injected network failure.

Every fault here is deterministic — a seeded
:class:`~repro.server.faults.NetworkFaultInjector` armed at one (point,
mode, occurrence) cell — never timing games.  The invariants under test:

* **no leaked pins** — an abnormal disconnect (RST mid-session) releases
  the session's snapshot pin: ``mvcc.generation_seqs()`` returns to the
  current-generation baseline (the ISSUE-9 pin-leak regression);
* **quiet half-closed writes** — a peer that resets before its reply is
  written costs one ``server.write_errors`` tick, never an unhandled
  event-loop error;
* **exactly-once DML** — a retry after an ambiguous failure (torn reply,
  dead recv) is deduplicated by idempotency key: the row lands once;
* **bounded requests** — a server-side timeout answers retryably and the
  connection survives the cancellation handshake;
* **graceful drain** — in-flight requests finish, new ones are rejected
  retryably, and nothing accepted is dropped.
"""

from __future__ import annotations

import dataclasses
import socket
import struct
import threading
import time

import pytest

from repro.obs import get_metrics
from repro.server import (
    NetworkFaultInjector,
    PCQEServer,
    RetryingClient,
    ServerClient,
    ServerReplyError,
    iter_network_fault_specs,
)
from repro.server.protocol import recv_frame, send_frame
from repro.workload import venture_capital_database

pytestmark = pytest.mark.chaos


def _serve(**kwargs) -> tuple[PCQEServer, object]:
    scenario = venture_capital_database()
    server = PCQEServer(
        scenario.db, scenario.policies, port=0, **kwargs
    ).start()
    return server, scenario


def _retrying(server, **kwargs) -> RetryingClient:
    kwargs.setdefault("user", "bob")
    kwargs.setdefault("purpose", "investment")
    kwargs.setdefault("sleep", lambda _s: None)
    return RetryingClient(server.host, server.port, **kwargs)


def _rst_close(sock: socket.socket) -> None:
    """Close with RST (SO_LINGER 0): an abnormal disconnect, not a FIN."""
    sock.setsockopt(
        socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
    )
    sock.close()


def _eventually(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return bool(predicate())


def _pins_released(server: PCQEServer) -> bool:
    return server.mvcc.generation_seqs() == [server.mvcc.current_seq]


class TestPinLeakRegression:
    def test_rst_mid_session_releases_the_snapshot_pin(self):
        """The ISSUE-9 regression: before the disconnect hardening, an
        aborted connection left its session pin held forever, retaining
        every superseded generation."""
        server, _ = _serve()
        sessions = get_metrics().gauge("server.active_sessions")
        baseline = sessions.value
        try:
            sock = socket.create_connection(
                (server.host, server.port), timeout=10
            )
            send_frame(
                sock, {"op": "hello", "user": "bob", "purpose": "investment"}
            )
            assert recv_frame(sock)["ok"] is True
            send_frame(sock, {"op": "sql", "sql": "SELECT * FROM Proposal"})
            assert recv_frame(sock)["ok"] is True
            # A writer commits, so the hung session pins a *superseded*
            # generation — the state a leak would retain forever.
            with ServerClient(
                server.host, server.port, user="alice", purpose="investment"
            ) as writer:
                writer.sql("INSERT INTO Proposal VALUES ('Rst', 'P1', 1.0)")
            assert len(server.mvcc.generation_seqs()) >= 2
            _rst_close(sock)
            assert _eventually(lambda: _pins_released(server)), (
                f"leaked pins: generations "
                f"{server.mvcc.generation_seqs()} vs current "
                f"{server.mvcc.current_seq}"
            )
            assert _eventually(lambda: sessions.value == baseline)
        finally:
            server.stop()


class TestHalfClosedWrites:
    def test_reset_peer_costs_one_write_error_and_stays_quiet(
        self, network_fault
    ):
        """Satellite 2: a reply hitting a dead socket ticks
        ``server.write_errors`` and closes quietly — no unhandled
        connection error, and the server keeps serving."""
        # Delay the reply so the RST provably lands before the write.
        injector = network_fault(
            "server.write", "delay", occurrence=2, delay_s=0.25
        )
        server, _ = _serve(faults=injector)
        metrics = get_metrics()
        write_errors = metrics.counter("server.write_errors")
        connection_errors = metrics.counter("server.connection_errors")
        before_write = write_errors.value
        before_conn = connection_errors.value
        try:
            sock = socket.create_connection(
                (server.host, server.port), timeout=10
            )
            send_frame(
                sock, {"op": "hello", "user": "bob", "purpose": "investment"}
            )
            assert recv_frame(sock)["ok"] is True
            send_frame(sock, {"op": "sql", "sql": "SELECT * FROM Proposal"})
            _rst_close(sock)
            assert _eventually(
                lambda: write_errors.value == before_write + 1
            )
            assert connection_errors.value == before_conn
            assert _eventually(lambda: _pins_released(server))
            # The loop is healthy: a fresh client gets served.
            with ServerClient(
                server.host, server.port, user="bob", purpose="investment"
            ) as probe:
                assert probe.sql("SELECT * FROM Proposal")["count"] == 6
        finally:
            server.stop()


class TestExactlyOnceDml:
    def test_torn_reply_replays_the_committed_write(self, network_fault):
        """The server executed the DML, then the reply frame tore: the
        retry must be served from the idempotency cache, not re-run."""
        injector = network_fault("server.write", "torn_frame", occurrence=2)
        server, _ = _serve(faults=injector)
        try:
            with _retrying(server) as client:
                reply = client.sql(
                    "INSERT INTO Proposal VALUES ('Torn', 'P1', 1.0)"
                )
                assert reply["idempotent_replay"] is True
                assert client.reconnects == 1
                client.refresh()
                count = client.sql(
                    "SELECT * FROM Proposal WHERE Company = 'Torn'"
                )["count"]
            assert injector.tripped
            assert count == 1
        finally:
            server.stop()

    def test_ambiguous_recv_death_is_deduplicated(self, network_fault):
        """The canonical ambiguous failure: the request left, the client
        died waiting for the reply.  Occurrence 3 is the first recv of
        the DML reply (the hello reply consumed hits 1-2)."""
        injector = network_fault("client.recv", "disconnect", occurrence=3)
        server, _ = _serve()
        try:
            with _retrying(server, faults=injector) as client:
                client.sql("INSERT INTO Proposal VALUES ('Ambig', 'P1', 1.0)")
                assert client.reconnects == 1
                client.refresh()
                count = client.sql(
                    "SELECT * FROM Proposal WHERE Company = 'Ambig'"
                )["count"]
            assert injector.tripped
            assert count == 1
        finally:
            server.stop()


class TestRequestTimeouts:
    def test_slow_handler_times_out_retryably_and_connection_survives(self):
        server, _ = _serve(request_timeout=0.15)
        timeouts = get_metrics().counter("server.timeouts")
        before = timeouts.value

        def slow_sql(session, request):
            time.sleep(0.4)  # beyond the timeout, inside the grace window
            return {"ok": True, "slow": True}

        server._op_sql = slow_sql
        try:
            with ServerClient(
                server.host, server.port, user="bob", purpose="investment"
            ) as client:
                with pytest.raises(ServerReplyError) as info:
                    client.sql("SELECT * FROM Proposal")
                assert info.value.type == "RequestTimeoutError"
                assert info.value.error["retryable"] is True
                assert info.value.error["timeout_ms"] == pytest.approx(150.0)
                assert timeouts.value == before + 1
                # The worker yielded inside the grace window, so the
                # connection was not poisoned: it still serves.
                del server._op_sql
                assert client.sql("SELECT * FROM Proposal")["count"] == 6
        finally:
            server.stop()

    def test_deadline_pressed_ask_degrades_on_the_wire(self, running_example):
        """A stalling primary under a deadline falls back to greedy; the
        reply carries the ``degraded`` marker end to end."""
        from repro.errors import ReproError
        from repro.increment.runtime import budget_exceeded

        def stall(problem, budget=None):
            if budget is None:
                raise ReproError("stall solver needs a budget")
            while budget.charge():
                pass
            raise budget_exceeded("stall", problem, None)

        stall.__name__ = "stall"
        server = PCQEServer(
            running_example.db,
            running_example.policies,
            port=0,
            solver=stall,
        ).start()
        try:
            with ServerClient(
                server.host, server.port, user="bob", purpose="investment"
            ) as client:
                reply = client.ask(
                    running_example.QUERY, fraction=1.0, deadline_ms=2000.0
                )
            assert reply["degraded"] is True
            assert reply["status"] in ("improved", "satisfied")
        finally:
            server.stop()


class TestGracefulDrain:
    def test_drain_finishes_inflight_rejects_new_and_releases_pins(self):
        server, _ = _serve()

        def slow_sql(session, request):
            time.sleep(0.3)
            return {"ok": True, "slow": True}

        server._op_sql = slow_sql
        inflight_reply: dict = {}
        client_a = ServerClient(
            server.host, server.port, user="bob", purpose="investment"
        )
        client_b = ServerClient(
            server.host, server.port, user="alice", purpose="investment"
        )

        def ask_slow():
            inflight_reply.update(client_a.request({"op": "sql", "sql": "x"}))

        worker = threading.Thread(target=ask_slow)
        worker.start()
        time.sleep(0.1)  # the slow request is in flight
        report: dict = {}
        drainer = threading.Thread(
            target=lambda: report.update(server.drain(timeout=5.0))
        )
        drainer.start()
        assert _eventually(lambda: server._draining)
        # A request arriving during the drain is rejected retryably.
        with pytest.raises(ServerReplyError) as info:
            client_b.request({"op": "sql", "sql": "SELECT * FROM Proposal"})
        assert info.value.type == "ServerDrainingError"
        assert info.value.error["retryable"] is True
        worker.join(timeout=10.0)
        drainer.join(timeout=10.0)
        # The accepted in-flight request was never dropped.
        assert inflight_reply.get("slow") is True
        assert report["drained"] is True
        assert report["inflight"] == 0
        assert get_metrics().gauge("server.draining").value == 0
        # Drain ends in a full stop: pins released, listener closed.
        assert server.mvcc.generation_seqs() == [server.mvcc.current_seq]
        with pytest.raises(OSError):
            socket.create_connection(
                (client_a._sock.getpeername()[0], 0), timeout=0.2
            )
        client_a._closed = True  # the server is gone; skip the bye
        client_b._closed = True

    def test_drain_on_idle_server_checkpoints_and_reports(self):
        server, _ = _serve()
        report = server.drain(timeout=1.0)
        assert report == {
            "drained": True,
            "waited_s": pytest.approx(report["waited_s"]),
            "inflight": 0,
            "checkpoint_bytes": 0,  # the scenario db is not durable
        }


class TestSeededFaultMatrix:
    """One compact sweep of every (point, mode) cell: the retrying
    client must deliver a policy-compliant answer through each, and the
    server must come out pin-clean.  (The full storm with DML and p99
    gates lives in ``benchmarks/chaos_smoke.py``.)"""

    @pytest.mark.parametrize(
        "spec",
        [
            # client.recv counts two hits per frame: occurrence 3 is the
            # first reply after the hello (see TestExactlyOnceDml).
            dataclasses.replace(spec, occurrence=3)
            if spec.point == "client.recv"
            else spec
            for spec in iter_network_fault_specs(seed=11, occurrence=2)
        ],
        ids=lambda spec: f"{spec.point}-{spec.mode}",
    )
    def test_cell_delivers_compliant_results_and_releases_pins(self, spec):
        injector = NetworkFaultInjector(spec)
        server_side = spec.point.startswith("server.")
        server, scenario = _serve(
            faults=injector if server_side else None
        )
        try:
            with _retrying(
                server, faults=None if server_side else injector
            ) as client:
                reply = client.ask(scenario.QUERY, fraction=0.0)
                assert reply["status"] == "satisfied"
                # The confidence policy holds on every delivered tuple.
                assert all(
                    conf > reply["threshold"]
                    for conf in reply["confidences"]
                )
                assert reply["released"] == len(reply["rows"])
            assert injector.tripped, f"{spec} never fired"
            assert _eventually(lambda: _pins_released(server))
        finally:
            server.stop()
