"""Integration tests: the instrumented pipeline explains itself.

Runs the paper's running example (§3.1) under a capturing tracer and a
fresh metrics registry and checks that stage spans, the ``profile=True``
breakdown, and the per-heuristic prune attribution all line up with what
the engine actually did.
"""

import pytest

from repro import PCQEngine, QueryRequest, QueryStatus
from repro.increment import HeuristicOptions, IncrementProblem, solve_heuristic
from repro.lineage import lineage_and, lineage_or, var
from repro.obs import (
    MetricsRegistry,
    get_metrics,
    get_tracer,
    set_metrics,
)
from repro.workload import WorkloadSpec, generate_problem


@pytest.fixture
def fresh_metrics():
    """Isolate each test's counters from the process-wide registry."""
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _running_example_problem(running_example) -> IncrementProblem:
    t02 = running_example.proposal_ids["02"]
    t03 = running_example.proposal_ids["03"]
    t13 = running_example.company_ids["13"]
    lineage = lineage_and(lineage_or(var(t02), var(t03)), var(t13))
    return IncrementProblem.from_results(
        [lineage], running_example.db, threshold=0.06, required_count=1
    )


class TestStageSpans:
    def test_improvement_flow_emits_every_stage(
        self, running_example, fresh_metrics
    ):
        engine = PCQEngine(
            running_example.db, running_example.policies, solver="heuristic"
        )
        with get_tracer().capture() as sink:
            result = engine.execute(
                QueryRequest(running_example.QUERY, "investment", 1.0),
                user="bob",
            )
        assert result.status is QueryStatus.IMPROVED

        (root,) = sink.find("pcqe.execute")
        assert root.parent_id is None
        assert root.attributes["user"] == "bob"
        assert root.attributes["status"] == "improved"

        # All five pipeline stages appear as direct children of the root.
        stages = [
            span for span in sink.spans if span.parent_id == root.span_id
        ]
        stage_names = [span.name for span in stages]
        for expected in (
            "pcqe.query_evaluation",
            "pcqe.policy_enforcement",
            "pcqe.strategy_finding",
            "pcqe.improvement",
            "pcqe.reevaluation",
        ):
            assert expected in stage_names

        # Confidence computation + filtering nest under policy enforcement.
        enforcement_ids = {
            span.span_id
            for span in stages
            if span.name in ("pcqe.policy_enforcement", "pcqe.reevaluation")
        }
        confidence_spans = sink.find("policy.confidence")
        filter_spans = sink.find("policy.filter")
        assert confidence_spans and filter_spans
        for span in confidence_spans + filter_spans:
            assert span.parent_id in enforcement_ids

        # The algebra executor traces one span per operator, nested under
        # query evaluation; the running example's query joins two scans.
        (evaluation,) = sink.find("pcqe.query_evaluation")
        executor_spans = [
            span for span in sink.spans if span.name.startswith("algebra.")
        ]
        assert len(sink.find("algebra.scan")) == 2
        roots_of_algebra = {
            span.parent_id
            for span in executor_spans
            if not any(
                other.span_id == span.parent_id for other in executor_spans
            )
        }
        assert roots_of_algebra == {evaluation.span_id}

        # The solver span sits under strategy finding with its stats.
        (strategy,) = sink.find("pcqe.strategy_finding")
        (solver_span,) = sink.find("solver.heuristic")
        assert solver_span.parent_id == strategy.span_id
        assert solver_span.attributes["nodes_explored"] > 0

    def test_satisfied_flow_skips_solver_stages(
        self, running_example, fresh_metrics
    ):
        engine = PCQEngine(running_example.db, running_example.policies)
        with get_tracer().capture() as sink:
            result = engine.execute(
                QueryRequest(running_example.QUERY, "analysis", 0.0),
                user="alice",
            )
        assert result.status is QueryStatus.SATISFIED
        assert sink.find("pcqe.strategy_finding") == []
        assert sink.find("pcqe.improvement") == []
        (root,) = sink.find("pcqe.execute")
        assert root.attributes["status"] == "satisfied"

    def test_executor_metrics_count_operator_rows(
        self, running_example, fresh_metrics
    ):
        from repro.sql import run_sql

        result = run_sql(running_example.db, running_example.QUERY)
        snapshot = fresh_metrics.snapshot()
        assert snapshot["executor.scan.calls"] == 2
        # The scans surface all Proposal + CompanyInfo rows.
        assert snapshot["executor.scan.rows_emitted"] >= len(result)
        assert snapshot["executor.scan.seconds"]["count"] == 2


class TestProfileReport:
    def test_profile_totals_cover_the_stages(
        self, running_example, fresh_metrics
    ):
        engine = PCQEngine(
            running_example.db, running_example.policies, solver="greedy"
        )
        result = engine.execute(
            QueryRequest(
                running_example.QUERY, "investment", 1.0, profile=True
            ),
            user="bob",
        )
        assert result.status is QueryStatus.IMPROVED
        report = result.profile
        assert report is not None
        for stage in (
            "pcqe.query_evaluation",
            "pcqe.policy_enforcement",
            "pcqe.strategy_finding",
            "pcqe.improvement",
            "pcqe.reevaluation",
        ):
            assert stage in report.stages
            assert report.stages[stage] > 0
        # Stage durations sum to (at most) the root total, and account for
        # the bulk of it — the breakdown is a real decomposition.
        total_staged = sum(report.stages.values())
        assert total_staged <= report.total_seconds + 1e-9
        assert report.unattributed_seconds < report.total_seconds
        # Metrics moved during the run are attributed to it.
        assert report.metrics["policy.rows_evaluated"] > 0
        assert report.metrics["solver.greedy.runs"] == 1
        assert "pcqe.execute" in report.format()

    def test_profile_off_attaches_nothing(self, running_example, fresh_metrics):
        engine = PCQEngine(running_example.db, running_example.policies)
        result = engine.execute(
            QueryRequest(running_example.QUERY, "analysis", 0.0), user="alice"
        )
        assert result.profile is None


class TestHeuristicAttribution:
    """Each of H1–H4 is individually visible in the metrics registry."""

    FIELDS = {
        "h1": "h1_applied",
        "h2": "nodes_pruned_h2",
        "h3": "nodes_pruned_h3",
        "h4": "nodes_pruned_h4",
    }

    def test_running_example_attributes_prunes_per_heuristic(
        self, running_example, fresh_metrics
    ):
        problem = _running_example_problem(running_example)
        for heuristic, field in self.FIELDS.items():
            registry = MetricsRegistry()
            set_metrics(registry)
            plan = solve_heuristic(problem, HeuristicOptions.only(heuristic))
            snapshot = registry.snapshot()
            stats_value = getattr(plan.stats, field)
            metric = snapshot.get(f"solver.heuristic.{field}", 0)
            # The metric equals the stats counter — the façade and the
            # registry never disagree.
            assert metric == stats_value
            # Only the enabled heuristic's counters may move.
            for other in set(self.FIELDS.values()) - {field}:
                assert snapshot.get(f"solver.heuristic.{other}", 0) == 0
            assert snapshot["solver.heuristic.runs"] == 1

    def test_each_heuristic_fires_on_the_fig11a_workload(self, fresh_metrics):
        spec = WorkloadSpec(
            data_size=10,
            tuples_per_result=5,
            theta=0.6,
            threshold=0.5,
            delta=0.15,
            or_bias=0.7,
        )
        problem = generate_problem(spec, seed=2).problem
        for heuristic, field in self.FIELDS.items():
            registry = MetricsRegistry()
            set_metrics(registry)
            plan = solve_heuristic(problem, HeuristicOptions.only(heuristic))
            value = registry.snapshot()[f"solver.heuristic.{field}"]
            assert value > 0
            assert value == getattr(plan.stats, field)


class TestSolverMetricsParity:
    """All four solvers publish their SolverStats through the registry."""

    def test_greedy_gain_evaluations(self, running_example, fresh_metrics):
        from repro.increment import solve_greedy

        problem = _running_example_problem(running_example)
        plan = solve_greedy(problem)
        snapshot = get_metrics().snapshot()
        assert (
            snapshot["solver.greedy.gain_evaluations"]
            == plan.stats.gain_evaluations
            > 0
        )
        assert snapshot["solver.greedy.elapsed_seconds"]["count"] == 1

    def test_dnc_partition_sizes(self, fresh_metrics):
        from repro.increment import solve_dnc

        spec = WorkloadSpec(data_size=60, tuples_per_result=3)
        problem = generate_problem(spec, seed=5).problem
        plan = solve_dnc(problem)
        snapshot = get_metrics().snapshot()
        assert snapshot["solver.dnc.groups"] == plan.stats.groups > 0
        histogram = snapshot["solver.dnc.partition_size"]
        assert histogram["count"] == plan.stats.groups

    def test_local_search_swap_moves(self, fresh_metrics):
        from repro.increment import LocalSearchOptions, solve_local_search

        spec = WorkloadSpec(data_size=40, tuples_per_result=3)
        problem = generate_problem(spec, seed=11).problem
        plan = solve_local_search(problem, LocalSearchOptions(restarts=2))
        snapshot = get_metrics().snapshot()
        assert snapshot["solver.local-search.runs"] == 1
        assert (
            snapshot.get("solver.local-search.swap_moves", 0)
            == plan.stats.swap_moves
        )
