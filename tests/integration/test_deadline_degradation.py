"""Integration tests: deadlines degrade gracefully instead of hanging.

The acceptance scenario for the deadline-aware runtime: a hostile
branch-and-bound instance under a 50 ms deadline must still produce a
feasible plan — via the greedy fallback — with spans recording the
exhausted budget and the fallback hop.
"""

import pytest

from repro import PCQEngine, QueryRequest, QueryStatus, make_solver
from repro.errors import ReproError, TimeBudgetExceeded
from repro.increment import DegradationChain, SolverAttempt
from repro.increment.runtime import budget_exceeded
from repro.obs import MetricsRegistry, get_tracer, set_metrics
from repro.workload import WorkloadSpec, generate_problem


@pytest.fixture
def fresh_metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _hostile_problem():
    """A workload whose un-pruned branch-and-bound search runs for far
    longer than any interactive deadline."""
    spec = WorkloadSpec(data_size=60, tuples_per_result=5)
    return generate_problem(spec, seed=7).problem


class TestHostileInstanceUnderDeadline:
    def test_naive_bnb_times_out_and_greedy_rescues(self, fresh_metrics):
        problem = _hostile_problem()
        chain = DegradationChain(
            [
                SolverAttempt(
                    "heuristic",
                    make_solver(
                        "heuristic",
                        use_h1=False,
                        use_h2=False,
                        use_h3=False,
                        use_h4=False,
                    ),
                ),
                SolverAttempt("greedy", make_solver("greedy")),
            ]
        )
        with get_tracer().capture() as sink:
            with get_tracer().span("pcqe.strategy_finding") as span:
                plan = chain.solve(problem, deadline_ms=50.0, span=span)

        # A feasible plan came back despite the hostile primary.
        assert plan.algorithm.startswith("greedy")
        assert len(plan.satisfied_results) >= problem.required_count

        attempts = sink.find("pcqe.solver_attempt")
        assert attempts[0].attributes["solver"] == "heuristic"
        assert attempts[0].attributes["budget.exhausted"] is True
        assert attempts[0].attributes["timed_out"] is True
        assert attempts[0].attributes["fallback_to"] == "greedy"
        assert attempts[1].attributes["solver"] == "greedy"

        (strategy,) = sink.find("pcqe.strategy_finding")
        assert strategy.attributes["solver"] == "greedy"
        assert strategy.attributes["fallback_hops"] == 1
        assert strategy.attributes["budget.deadline_ms"] == 50.0
        assert [event.name for event in strategy.events] == ["pcqe.fallback"]

        snapshot = fresh_metrics.snapshot()
        assert snapshot["pcqe.fallback_hops"] == 1
        assert snapshot["pcqe.fallback_successes"] == 1
        assert snapshot["solver.heuristic.budget_exhausted"] == 1

    def test_without_deadline_the_chain_waits_for_the_primary(self):
        """No deadline means no fallback: the primary gets to finish (a
        pruned, easy configuration here, so it does)."""
        spec = WorkloadSpec(data_size=8, tuples_per_result=4)
        problem = generate_problem(spec, seed=0).problem
        chain = DegradationChain(
            [
                SolverAttempt("heuristic", make_solver("heuristic")),
                SolverAttempt("greedy", make_solver("greedy")),
            ]
        )
        plan = chain.solve(problem)
        assert plan.algorithm == "heuristic"


class TestEngineDeadlines:
    """Request-level deadlines thread through the whole pipeline."""

    def _stalling_solver(self):
        def stall(problem, budget=None):
            if budget is None:
                raise ReproError("stall solver needs a budget to expire")
            while budget.charge():
                pass  # a hostile search making no progress
            raise budget_exceeded("stall", problem, None)

        stall.__name__ = "stall"
        return stall

    def test_deadline_request_falls_back_and_improves(
        self, running_example, fresh_metrics
    ):
        engine = PCQEngine(
            running_example.db,
            running_example.policies,
            solver=self._stalling_solver(),
            fallback=("greedy",),
        )
        with get_tracer().capture() as sink:
            result = engine.execute(
                QueryRequest(
                    running_example.QUERY,
                    "investment",
                    1.0,
                    deadline_ms=50.0,
                ),
                user="bob",
            )
        assert result.status is QueryStatus.IMPROVED
        assert result.released_fraction == 1.0

        attempts = sink.find("pcqe.solver_attempt")
        assert attempts[0].attributes["solver"] == "stall"
        assert attempts[0].attributes["timed_out"] is True
        assert attempts[1].attributes["solver"] == "greedy"
        (strategy,) = sink.find("pcqe.strategy_finding")
        assert strategy.attributes["fallback_hops"] == 1
        assert strategy.attributes["budget.deadline_ms"] == 50.0

    def test_no_deadline_keeps_the_legacy_span_tree(self, running_example):
        """Without a deadline and without fallback, the engine calls the
        solver directly: no pcqe.solver_attempt spans appear."""
        engine = PCQEngine(
            running_example.db, running_example.policies, solver="heuristic"
        )
        with get_tracer().capture() as sink:
            result = engine.execute(
                QueryRequest(running_example.QUERY, "investment", 1.0),
                user="bob",
            )
        assert result.status is QueryStatus.IMPROVED
        assert sink.find("pcqe.solver_attempt") == []

    def test_every_hop_timing_out_surfaces_the_structured_error(
        self, running_example
    ):
        engine = PCQEngine(
            running_example.db,
            running_example.policies,
            solver=self._stalling_solver(),
        )
        with pytest.raises(TimeBudgetExceeded) as excinfo:
            engine.execute(
                QueryRequest(
                    running_example.QUERY,
                    "investment",
                    1.0,
                    deadline_ms=30.0,
                ),
                user="bob",
            )
        assert excinfo.value.partial is not None

    def test_request_deadline_validation(self):
        with pytest.raises(ReproError):
            QueryRequest("SELECT 1 FROM t", "p", deadline_ms=0.0)
        with pytest.raises(ReproError):
            QueryRequest("SELECT 1 FROM t", "p", deadline_ms=-5.0)
