"""The seeded chaos failover drill (ISSUE 10 acceptance).

A primary and two durable replicas take a client write storm while the
replication links misbehave (duplicated frames, dropped pull sockets)
and one client reply is swallowed mid-read (the ambiguous-outcome
case).  The primary is then killed mid-storm; the most advanced replica
is promoted with a fenced epoch; the storm resumes through endpoint
rotation.  The drill proves:

* **zero acknowledged-commit loss** — an offline WAL replay of the dead
  primary truncated to the promoted position fingerprints identically
  to the promoted replica, and every acknowledged row is present
  exactly once at the end;
* **exactly-once writes** — the retried ambiguous write deduplicates via
  its idempotency key instead of applying twice;
* **epoch fencing** — the deposed primary, restarted from its own data
  directory, fences itself the moment a peer announces the new reign.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.obs import MetricsRegistry, get_metrics, set_metrics
from repro.policy import PolicyStore
from repro.server import (
    NetworkFaultInjector,
    NetworkFaultSpec,
    PCQEServer,
    Replica,
    RetryingClient,
    Scrubber,
    iter_replication_fault_specs,
    recv_frame,
    send_frame,
)
from repro.storage.database import Database
from repro.storage.durability import database_fingerprints
from repro.storage.durability.codec import decode_op
from repro.storage.durability.recovery import (
    SNAPSHOT_FILE,
    WAL_FILE,
    apply_op,
)
from repro.storage.durability.snapshot import load_snapshot
from repro.storage.durability.wal import scan_wal


@pytest.fixture(autouse=True)
def fresh_metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _policies() -> PolicyStore:
    policies = PolicyStore(default_threshold=0.0)
    policies.add_role("Manager")
    policies.add_purpose("ops")
    policies.add_user("bob", roles=["Manager"])
    policies.add_policy("Manager", "ops", 0.0)
    return policies


def _eventually(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def _replay_to(data_dir: str, seq_limit: int) -> Database:
    """Rebuild the durable state at *data_dir* truncated to *seq_limit*
    — the offline referee for the zero-acknowledged-loss proof."""
    snapshot_path = os.path.join(data_dir, SNAPSHOT_FILE)
    if os.path.exists(snapshot_path):
        db, base = load_snapshot(snapshot_path, name="replay")
        assert base <= seq_limit, "checkpoint ran past the promoted position"
    else:
        db, base = Database("replay"), 0
    wal_path = os.path.join(data_dir, WAL_FILE)
    if os.path.exists(wal_path):
        for payload in scan_wal(wal_path).payloads:
            record = json.loads(payload.decode("utf-8"))
            seq = record.pop("seq", None)
            if not isinstance(seq, int) or seq <= base or seq > seq_limit:
                continue
            apply_op(db, decode_op(record))
    return db


class TestReplicationFaultMatrix:
    """Every replication-link fault cell: the replica still converges."""

    @pytest.mark.parametrize(
        "spec",
        list(iter_replication_fault_specs(seed=7, occurrence=3)),
        ids=lambda spec: f"{spec.point}-{spec.mode}",
    )
    def test_replica_converges_through_the_fault(self, tmp_path, spec):
        policies = _policies()
        db = Database.open(str(tmp_path / "primary"))
        server = PCQEServer(db, policies, port=0).start()
        client = RetryingClient(
            endpoints=[f"127.0.0.1:{server.port}"],
            user="bob",
            purpose="ops",
            sleep=lambda _s: None,
        )
        try:
            client.sql("CREATE TABLE t (name TEXT)")
            for index in range(4):
                client.sql(
                    f"INSERT INTO t VALUES ('w{index}') WITH CONFIDENCE 0.9"
                )
            with Replica(
                [f"127.0.0.1:{server.port}"],
                policies,
                pull_interval=0.01,
                wait_ms=50,
                faults=NetworkFaultInjector(spec),
            ) as replica:
                assert replica.wait_for_position(
                    client.last_write_seq, 10.0
                ), f"replica stuck at {replica.position} under {spec}"
                # The pull loop keeps ticking; the armed occurrence
                # trips within a few polls.
                assert _eventually(
                    lambda: get_metrics()
                    .counter("repl.faults.injected")
                    .snapshot()
                    >= 1
                ), f"armed cell {spec} never tripped"
                # Convergence *through* the fault: more writes after it.
                for index in range(4):
                    client.sql(
                        f"INSERT INTO t VALUES ('post{index}') "
                        f"WITH CONFIDENCE 0.9"
                    )
                assert replica.wait_for_position(
                    client.last_write_seq, 10.0
                ), f"replica stuck at {replica.position} after {spec}"
                assert database_fingerprints(replica._db) == (
                    database_fingerprints(db)
                )
        finally:
            client.close()
            server.stop()
            db.close()


class TestFailoverDrill:
    def test_kill_the_primary_mid_storm_loses_nothing(self, tmp_path):
        policies = _policies()
        primary_dir = str(tmp_path / "primary")
        db = Database.open(primary_dir)
        primary = PCQEServer(
            db, policies, port=0, min_sync_replicas=1, sync_timeout=5.0
        ).start()
        replica_a = Replica(
            [f"127.0.0.1:{primary.port}"],
            policies,
            data_dir=str(tmp_path / "replica-a"),
            replica_id="replica-a",
            pull_interval=0.01,
            wait_ms=50,
            faults=NetworkFaultInjector(
                NetworkFaultSpec("repl.frame", "dup", occurrence=5, seed=7)
            ),
        ).start()
        replica_b = Replica(
            [f"127.0.0.1:{primary.port}"],
            policies,
            data_dir=str(tmp_path / "replica-b"),
            replica_id="replica-b",
            pull_interval=0.01,
            wait_ms=50,
            faults=NetworkFaultInjector(
                NetworkFaultSpec("repl.pull", "disconnect", occurrence=4, seed=7)
            ),
        ).start()
        # Cross-wire so each node can follow whichever peer survives.
        replica_a.endpoints.append(("127.0.0.1", replica_b.server.port))
        replica_b.endpoints.append(("127.0.0.1", replica_a.server.port))
        endpoints = [
            f"127.0.0.1:{primary.port}",
            f"127.0.0.1:{replica_a.server.port}",
            f"127.0.0.1:{replica_b.server.port}",
        ]
        # The 15th client-side recv dies mid-reply (inside the write
        # storm): the write lands on the server but its acknowledgement
        # never arrives, forcing an idempotent retry (the
        # ambiguous-outcome case).
        storm = RetryingClient(
            endpoints=endpoints,
            user="bob",
            purpose="ops",
            attempts=30,
            sleep=lambda _s: None,
            faults=NetworkFaultInjector(
                NetworkFaultSpec("client.recv", "disconnect", occurrence=15, seed=7)
            ),
        )
        acked: "list[tuple[int, str]]" = []
        try:
            storm.sql("CREATE TABLE t (name TEXT)")
            for index in range(12):
                value = f"pre-{index}"
                reply = storm.sql(
                    f"INSERT INTO t VALUES ('{value}') WITH CONFIDENCE 0.9"
                )
                acked.append((reply["seq"], value))
            assert storm.reconnects >= 1, "the ambiguous-reply fault never hit"

            # ---- kill the primary mid-storm -------------------------------
            primary.stop()
            db.close()
            leader, follower = (
                (replica_a, replica_b)
                if replica_a.position >= replica_b.position
                else (replica_b, replica_a)
            )
            last_acked_seq = max(seq for seq, _value in acked)
            # Semi-sync guaranteed at least one replica held every ack.
            assert leader.position >= last_acked_seq
            new_epoch = leader.promote()
            assert new_epoch == 2

            # ---- zero acknowledged-commit loss ----------------------------
            # Offline referee: the dead primary's own WAL, truncated to
            # the promoted position, must fingerprint identically to the
            # promoted replica's state.
            replayed = _replay_to(primary_dir, leader.position)
            assert database_fingerprints(replayed) == (
                database_fingerprints(leader._db)
            )

            # ---- the storm resumes through rotation -----------------------
            for index in range(6):
                value = f"post-{index}"
                reply = storm.sql(
                    f"INSERT INTO t VALUES ('{value}') WITH CONFIDENCE 0.9"
                )
                acked.append((reply["seq"], value))
            assert storm.server_role == "primary"
            assert storm.epoch == new_epoch

            # The surviving replica follows the new reign and converges.
            assert _eventually(
                lambda: follower.position >= max(s for s, _v in acked)
            ), f"follower stuck at {follower.position}"
            assert follower.epoch == new_epoch
            assert database_fingerprints(follower._db) == (
                database_fingerprints(leader._db)
            )

            # Every acknowledged row is present exactly once — including
            # the ambiguous write that was retried with the same key.
            reader = RetryingClient(
                endpoints=[f"127.0.0.1:{leader.server.port}"],
                user="bob",
                purpose="ops",
                sleep=lambda _s: None,
            )
            reader.last_write_seq = storm.last_write_seq
            rows = reader.sql("SELECT * FROM t")["rows"]
            names = [row[0] for row in rows]
            for _seq, value in acked:
                assert names.count(value) == 1, (value, names)
            assert len(names) == len(acked)
            reader.close()

            # A clean scrub across the new topology: no divergence.
            report = Scrubber(follower).run_once()
            assert report["divergent"] == []

            # ---- epoch fencing --------------------------------------------
            # The deposed primary comes back from its own data dir, still
            # at epoch 1, and fences itself when a peer announces the new
            # reign instead of serving a stale stream.
            stale_db = Database.open(primary_dir)
            deposed = PCQEServer(stale_db, policies, port=0).start()
            try:
                import socket as socket_module

                sock = socket_module.create_connection(
                    ("127.0.0.1", deposed.port), timeout=10.0
                )
                send_frame(
                    sock,
                    {
                        "op": "repl.handshake",
                        "replica": "replica-b",
                        "epoch": new_epoch,
                        "last_seq": follower.position,
                    },
                )
                reply = recv_frame(sock)
                assert not reply["ok"]
                assert reply["error"]["type"] == "StaleEpochError"
                assert get_metrics().counter("server.fenced").snapshot() >= 1
                sock.close()
            finally:
                deposed.stop()
                stale_db.close()
        finally:
            storm.close()
            replica_a.stop()
            replica_b.stop()


class TestDurableReplicaRestart:
    def test_replica_resumes_from_its_own_wal(self, tmp_path):
        """A restarted replica re-joins at its durable position — no
        re-bootstrap, no double-apply."""
        policies = _policies()
        db = Database.open(str(tmp_path / "primary"))
        server = PCQEServer(db, policies, port=0).start()
        client = RetryingClient(
            endpoints=[f"127.0.0.1:{server.port}"],
            user="bob",
            purpose="ops",
            sleep=lambda _s: None,
        )
        replica_dir = str(tmp_path / "replica")
        try:
            client.sql("CREATE TABLE t (name TEXT)")
            client.sql("INSERT INTO t VALUES ('one') WITH CONFIDENCE 0.9")
            with Replica(
                [f"127.0.0.1:{server.port}"],
                policies,
                data_dir=replica_dir,
                pull_interval=0.01,
                wait_ms=50,
            ) as replica:
                assert replica.wait_for_position(client.last_write_seq, 5.0)
                halted_at = replica.position
            client.sql("INSERT INTO t VALUES ('two') WITH CONFIDENCE 0.9")
            with Replica(
                [f"127.0.0.1:{server.port}"],
                policies,
                data_dir=replica_dir,
                pull_interval=0.01,
                wait_ms=50,
            ) as replica:
                # Restart began at the durable position, not zero.
                assert replica.position >= halted_at or replica.position == 0
                assert replica.wait_for_position(client.last_write_seq, 5.0)
                assert get_metrics().counter("repl.resyncs").snapshot() == 0
                assert database_fingerprints(replica._db) == (
                    database_fingerprints(db)
                )
        finally:
            client.close()
            server.stop()
            db.close()
