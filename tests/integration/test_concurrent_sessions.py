"""Concurrent sessions under live writers: the ISSUE-8 isolation contract.

Three layers of assurance:

* **torn-read invariants** — reader sessions scanning while a writer
  commits DML + confidence write-backs must always see internally
  consistent rows (value/derived-value/ordinal alignment) and stable
  row counts per pinned snapshot;
* **differential verification** — every `ask` a session ran *during* the
  storm is re-run serially afterwards on the same still-pinned session
  and must come back bit-identical (values and confidence floats);
* **hypothesis properties** — arbitrary snapshot/release/commit
  interleavings keep exactly {current} ∪ {pinned} generations retained,
  and every pinned view stays frozen at its own state.
"""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server import MVCCDatabase, PCQEServer, ServerClient, Session
from repro.storage import Database, INTEGER, Schema
from repro.workload import venture_capital_database

READERS = 8
STORM_SECONDS = 0.6


def _counted_db() -> Database:
    """A table whose rows satisfy v == k * 2 — torn reads break it."""
    db = Database("storm")
    table = db.create_table("t", Schema.of(("k", INTEGER), ("v", INTEGER)))
    for i in range(64):
        table.insert([i, i * 2], confidence=0.5)
    return db


class TestTornReadInvariants:
    def test_pinned_scans_stay_consistent_under_dml_storm(self):
        mvcc = MVCCDatabase(_counted_db())
        stop = threading.Event()
        failures: list[str] = []

        def writer():
            i = 64
            while not stop.is_set():
                k = i
                mvcc.commit(lambda db: db.table("t").insert([k, k * 2]))
                if i % 5 == 0:
                    mvcc.commit(
                        lambda db: db.apply_confidences(
                            {
                                row.tid: min(1.0, row.confidence + 0.001)
                                for row in list(db.table("t").scan())[:8]
                            }
                        )
                    )
                i += 1

        def reader():
            while not stop.is_set():
                snap = mvcc.snapshot()
                try:
                    rows = snap.db.table("t").rows()
                    count = len(snap.db.table("t"))
                    for k, v in rows:
                        if v != k * 2:
                            failures.append(f"torn row ({k}, {v})")
                            return
                    if len(rows) != count:
                        failures.append(
                            f"scan/len disagree: {len(rows)} vs {count}"
                        )
                        return
                    columns, tids = snap.db.table("t").column_data()
                    if list(columns[0]) != [r[0] for r in rows]:
                        failures.append("columnar view out of sync with scan")
                        return
                finally:
                    snap.release()

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(READERS)
        ]
        for thread in threads:
            thread.start()
        stop_timer = threading.Timer(STORM_SECONDS, stop.set)
        stop_timer.start()
        for thread in threads:
            thread.join()
        stop_timer.cancel()
        assert failures == []
        assert mvcc.generation_seqs() == [mvcc.current_seq]  # GC drained


class TestDifferentialAskVerification:
    def test_concurrent_asks_replay_bit_identical_serially(self):
        scenario = venture_capital_database()
        mvcc = MVCCDatabase(scenario.db)
        stop = threading.Event()
        sessions = [
            Session(mvcc, scenario.policies, "bob", "investment")
            for _ in range(READERS)
        ]
        concurrent: dict[int, tuple] = {}
        errors: list[BaseException] = []

        def writer():
            i = 0
            while not stop.is_set():
                name = f"Storm{i}"
                mvcc.commit(
                    lambda db: db.table("Proposal").insert(
                        [name, f"P{i}", 0.5 + (i % 5) / 10.0], confidence=0.4
                    )
                )
                i += 1

        def ask_concurrently(index: int, session: Session) -> None:
            try:
                # fraction 0.0 keeps the ask a pure read: no improvement
                # commit, so the session's pin must not move.
                result = session.ask(scenario.QUERY, required_fraction=0.0)
                concurrent[index] = (
                    session.seq,
                    [tuple(r.values) for r, _c in result.released],
                    [c for _r, c in result.released],
                )
            except BaseException as error:  # pragma: no cover - reporting
                errors.append(error)

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        try:
            askers = [
                threading.Thread(target=ask_concurrently, args=(i, s))
                for i, s in enumerate(sessions)
            ]
            for thread in askers:
                thread.start()
            for thread in askers:
                thread.join()
        finally:
            stop.set()
            writer_thread.join()
        assert errors == []
        assert len(concurrent) == READERS

        # Serial re-run on the same still-pinned sessions, one at a time,
        # with the writer silent: must be bit-identical to what each
        # session computed mid-storm.
        for index, session in enumerate(sessions):
            seq, rows, confidences = concurrent[index]
            assert session.seq == seq, "a pure-read ask moved the pin"
            replay = session.ask(scenario.QUERY, required_fraction=0.0)
            assert [tuple(r.values) for r, _c in replay.released] == rows
            assert [c for _r, c in replay.released] == confidences  # exact
        for session in sessions:
            session.close()

    def test_wire_level_sessions_are_isolated_and_differential(self):
        scenario = venture_capital_database()
        server = PCQEServer(scenario.db, scenario.policies, port=0).start()
        try:
            clients = [
                ServerClient(
                    server.host,
                    server.port,
                    user="bob",
                    purpose="investment",
                )
                for _ in range(READERS)
            ]
            baseline = [c.ask(scenario.QUERY, fraction=0.0) for c in clients]
            with ServerClient(
                server.host, server.port, user="alice", purpose="investment"
            ) as writer:
                for i in range(10):
                    writer.sql(
                        f"INSERT INTO Proposal VALUES ('W{i}', 'P{i}', 0.{i}1)"
                    )
            for client, before in zip(clients, baseline):
                after = client.ask(scenario.QUERY, fraction=0.0)
                assert after["rows"] == before["rows"]
                assert after["confidences"] == before["confidences"]
                assert after["seq"] == before["seq"]
                refreshed_seq = client.refresh()
                assert refreshed_seq > before["seq"]
            for client in clients:
                client.close()
        finally:
            server.stop()


# -- hypothesis: generation GC --------------------------------------------


@st.composite
def _op_sequences(draw):
    return draw(
        st.lists(
            st.sampled_from(["commit", "snapshot", "release", "refresh"]),
            min_size=1,
            max_size=40,
        )
    )


class TestGenerationGCProperties:
    @given(ops=_op_sequences())
    @settings(max_examples=60, deadline=None)
    def test_retained_generations_are_current_plus_pinned(self, ops):
        mvcc = MVCCDatabase(_counted_db())
        pins = []
        counter = 1000
        for op in ops:
            if op == "commit":
                value = counter
                counter += 1
                mvcc.commit(lambda db: db.table("t").insert([value, value * 2]))
            elif op == "snapshot":
                pins.append(mvcc.snapshot())
            elif op == "release" and pins:
                pins.pop(0).release()
            elif op == "refresh" and pins:
                pins[0] = mvcc.refresh(pins[0])
            expected = {mvcc.current_seq} | {pin.seq for pin in pins}
            assert set(mvcc.generation_seqs()) == expected
        for pin in pins:
            pin.release()
        assert mvcc.generation_seqs() == [mvcc.current_seq]

    @given(ops=_op_sequences())
    @settings(max_examples=40, deadline=None)
    def test_every_pinned_view_stays_frozen(self, ops):
        mvcc = MVCCDatabase(_counted_db())
        pins: list[tuple] = []  # (snapshot, expected row count)
        counter = 5000
        for op in ops:
            if op == "commit":
                value = counter
                counter += 1
                mvcc.commit(lambda db: db.table("t").insert([value, value * 2]))
            elif op == "snapshot":
                snap = mvcc.snapshot()
                pins.append((snap, len(snap.db.table("t"))))
            elif op == "release" and pins:
                snap, _count = pins.pop()
                snap.release()
            elif op == "refresh" and pins:
                snap, _count = pins.pop()
                snap = mvcc.refresh(snap)
                pins.append((snap, len(snap.db.table("t"))))
            for snap, count in pins:
                assert len(snap.db.table("t")) == count
        for snap, _count in pins:
            snap.release()
