"""Differential engine testing over the paper's workloads.

Every scenario query — the §3.1 venture-capital running example and the
healthcare registry — must produce identical rows, lineage formulas, and
bit-identical confidences on the native and columnar engines, and the full
PCQE pipeline (policy filter → strategy finding → improvement) must reach
identical strategies and receipt costs whichever engine evaluated the
query.
"""

from __future__ import annotations

import pytest

from repro import PCQEngine, QueryRequest
from repro.sql import run_sql
from repro.workload import healthcare_database, venture_capital_database

HEALTHCARE_QUERIES = [
    "SELECT p.PatientId, t.Treatment, t.ResponseRate "
    "FROM Patients p JOIN Treatments t ON p.PatientId = t.PatientId "
    "WHERE p.Diagnosis = 'breast'",
    "SELECT DISTINCT Diagnosis FROM Patients WHERE Source = 'registry'",
    "SELECT p.PatientId, t.Treatment FROM Patients p "
    "JOIN Treatments t ON p.PatientId = t.PatientId "
    "WHERE p.Stage = 'IV' AND t.ResponseRate > 0.4",
    "SELECT PatientId FROM Patients WHERE Diagnosis = 'lung' "
    "UNION SELECT PatientId FROM Treatments WHERE Treatment = 'surgery'",
    "SELECT PatientId FROM Patients WHERE PatientId IN "
    "(SELECT PatientId FROM Treatments WHERE ResponseRate > 0.6)",
]


def assert_engines_agree(db, sql):
    native = run_sql(db, sql, engine="native")
    columnar = run_sql(db, sql, engine="columnar")
    assert [row.values for row in native.rows] == [
        row.values for row in columnar.rows
    ]
    assert [row.lineage for row in native.rows] == [
        row.lineage for row in columnar.rows
    ]
    assert native.confidences(db) == columnar.confidences(db)
    return native, columnar


class TestRunningExampleDifferential:
    def test_candidate_query_identical_on_both_engines(self, running_example):
        native, columnar = assert_engines_agree(
            running_example.db, running_example.QUERY
        )
        values = {row.values[0] for row in columnar.rows}
        assert "BlueRiver" in values

    def test_blueriver_confidence_is_exact(self, running_example):
        result = run_sql(
            running_example.db, running_example.QUERY, engine="columnar"
        )
        by_company = dict(
            zip(
                [row.values[0] for row in result.rows],
                result.confidences(running_example.db),
            )
        )
        assert by_company["BlueRiver"] == pytest.approx(0.058)


class TestHealthcareDifferential:
    @pytest.mark.parametrize("sql", HEALTHCARE_QUERIES)
    def test_query_identical_on_both_engines(self, sql):
        scenario = healthcare_database(patients=120, seed=4)
        assert_engines_agree(scenario.db, sql)

    def test_auto_matches_native_on_larger_registry(self):
        scenario = healthcare_database(patients=300, seed=11)
        sql = HEALTHCARE_QUERIES[0]
        native = run_sql(scenario.db, sql, engine="native")
        auto = run_sql(scenario.db, sql, engine="auto")
        assert auto.engine in ("columnar", "native+columnar")
        assert [row.values for row in native.rows] == [
            row.values for row in auto.rows
        ]
        assert native.confidences(scenario.db) == auto.confidences(
            scenario.db
        )


class TestPipelineDifferential:
    """Identical strategies and receipt costs regardless of engine."""

    @pytest.mark.parametrize("solver", ["heuristic", "greedy", "dnc"])
    def test_ask_costs_identical_across_engines(self, solver):
        replies = {}
        for engine_mode in ("native", "columnar"):
            scenario = venture_capital_database()
            engine = PCQEngine(
                scenario.db,
                scenario.policies,
                solver=solver,
                engine=engine_mode,
            )
            replies[engine_mode] = engine.execute(
                QueryRequest(scenario.QUERY, "investment", 1.0),
                user="bob",
            )
        native, columnar = replies["native"], replies["columnar"]
        assert native.status == columnar.status
        assert native.threshold == columnar.threshold
        assert native.withheld_count == columnar.withheld_count
        assert [value for _, value in native.released] == [
            value for _, value in columnar.released
        ]
        if native.quote is None:
            assert columnar.quote is None
        else:
            assert columnar.quote is not None
            assert native.quote.cost == columnar.quote.cost
            assert native.quote.shortfall == columnar.quote.shortfall
        if native.receipt is None:
            assert columnar.receipt is None
        else:
            assert columnar.receipt is not None
            assert native.receipt.total_cost == columnar.receipt.total_cost
            assert (
                native.receipt.tuples_improved
                == columnar.receipt.tuples_improved
            )
