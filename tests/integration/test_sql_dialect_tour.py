"""One long end-to-end tour of the SQL dialect.

Builds a small warehouse entirely through SQL (DDL + DML with confidence
annotations), then exercises every major query feature against it,
checking values *and* confidences at each step — the closest thing to a
user session the test suite has.
"""

import pytest

from repro.sql import execute_sql, run_sql
from repro.storage import Database


@pytest.fixture
def warehouse() -> Database:
    db = Database("warehouse")
    ddl = [
        "CREATE TABLE products (sku TEXT NOT NULL, category TEXT, price REAL)",
        "CREATE TABLE orders (sku TEXT, qty INT, region TEXT)",
        "CREATE TABLE restricted (category TEXT)",
    ]
    dml = [
        "INSERT INTO products VALUES "
        "('P1','tools',10.0), ('P2','tools',25.0), ('P3','toys',8.0), "
        "('P4','toys',15.0), ('P5','garden',30.0) WITH CONFIDENCE 0.9",
        "INSERT INTO orders VALUES "
        "('P1',3,'east'), ('P1',1,'west'), ('P2',2,'east'), "
        "('P3',5,'west'), ('P4',2,'east'), ('P9',1,'east') WITH CONFIDENCE 0.7",
        "INSERT INTO restricted VALUES ('toys') WITH CONFIDENCE 0.6",
        "CREATE VIEW east_orders AS SELECT sku, qty FROM orders "
        "WHERE region = 'east'",
    ]
    for statement in ddl + dml:
        execute_sql(db, statement)
    return db


class TestDialectTour:
    def test_join_with_aggregation_and_having(self, warehouse):
        result = run_sql(
            warehouse,
            "SELECT p.category, SUM(o.qty * p.price) AS revenue "
            "FROM orders o JOIN products p ON o.sku = p.sku "
            "GROUP BY p.category HAVING SUM(o.qty) > 2 "
            "ORDER BY revenue DESC",
        )
        assert result.values() == [
            ("tools", pytest.approx(90.0)),
            ("toys", pytest.approx(70.0)),
        ]

    def test_view_join_confidence(self, warehouse):
        result = run_sql(
            warehouse,
            "SELECT e.sku, p.price FROM east_orders e "
            "JOIN products p ON e.sku = p.sku ORDER BY e.sku",
        )
        # order row (0.7) AND product row (0.9)
        for _row, confidence in result.with_confidences(warehouse):
            assert confidence == pytest.approx(0.63)

    def test_left_join_finds_unknown_sku(self, warehouse):
        result = run_sql(
            warehouse,
            "SELECT o.sku, p.category FROM orders o "
            "LEFT JOIN products p ON o.sku = p.sku "
            "WHERE p.category IS NULL",
        )
        # Probabilistic LEFT JOIN: the truly unmatched sku surfaces at full
        # confidence; matched skus also emit a low-confidence "the product
        # record might be wrong" row (0.7 × (1−0.9)).  A policy threshold
        # is what separates them in practice.
        by_sku = dict(
            (row.values[0], confidence)
            for row, confidence in result.with_confidences(warehouse)
        )
        assert by_sku["P9"] == pytest.approx(0.7)
        assert by_sku["P1"] == pytest.approx(0.7 * 0.1)
        confident = {
            sku for sku, confidence in by_sku.items() if confidence > 0.5
        }
        assert confident == {"P9"}

    def test_not_in_subquery_excludes_restricted(self, warehouse):
        result = run_sql(
            warehouse,
            "SELECT sku FROM products WHERE category NOT IN "
            "(SELECT category FROM restricted) ORDER BY sku",
        )
        skus = [row.values[0] for row in result]
        # Non-toys keep high confidence; toys survive with reduced
        # confidence (the restriction row is only 60% certain).
        assert skus == ["P1", "P2", "P3", "P4", "P5"]
        by_sku = dict(
            (row.values[0], confidence)
            for row, confidence in result.with_confidences(warehouse)
        )
        assert by_sku["P1"] == pytest.approx(0.9)
        assert by_sku["P3"] == pytest.approx(0.9 * 0.4)

    def test_case_bucketing_with_group(self, warehouse):
        result = run_sql(
            warehouse,
            "SELECT CASE WHEN price < 12 THEN 'cheap' ELSE 'pricey' END "
            "AS bucket, COUNT(*) FROM products "
            "GROUP BY CASE WHEN price < 12 THEN 'cheap' ELSE 'pricey' END "
            "ORDER BY bucket",
        )
        assert result.values() == [("cheap", 2), ("pricey", 3)]

    def test_union_of_views_and_tables(self, warehouse):
        result = run_sql(
            warehouse,
            "SELECT sku FROM east_orders UNION SELECT sku FROM products "
            "ORDER BY 1",
        )
        skus = [row.values[0] for row in result]
        assert skus == ["P1", "P2", "P3", "P4", "P5", "P9"]

    def test_update_propagates_through_views(self, warehouse):
        execute_sql(
            warehouse,
            "UPDATE orders SET qty = 10 WHERE sku = 'P1' AND region = 'east'",
        )
        result = run_sql(
            warehouse, "SELECT qty FROM east_orders WHERE sku = 'P1'"
        )
        assert result.values() == [(10,)]

    def test_delete_then_counts(self, warehouse):
        execute_sql(warehouse, "DELETE FROM orders WHERE sku = 'P9'")
        result = run_sql(warehouse, "SELECT COUNT(*) FROM orders")
        assert result.rows[0].values == (5,)

    def test_policy_pipeline_over_dialect(self, warehouse):
        from repro import PCQEngine, QueryRequest, QueryStatus
        from repro.policy import PolicyStore

        policies = PolicyStore(default_threshold=0.65)
        policies.add_role("buyer")
        policies.add_purpose("purchasing")
        policies.add_user("quinn", roles=["buyer"])
        engine = PCQEngine(warehouse, policies)
        reply = engine.execute(
            QueryRequest(
                "SELECT e.sku, p.price FROM east_orders e "
                "JOIN products p ON e.sku = p.sku",
                "purchasing",
                required_fraction=0.0,
            ),
            user="quinn",
        )
        # Joined confidence 0.63 < 0.65: everything withheld by policy.
        assert reply.status is QueryStatus.SATISFIED
        assert reply.rows == []
        assert reply.withheld_count == 3
