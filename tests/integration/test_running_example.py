"""Integration test reproducing the paper's §3.1 running example end-to-end.

Tables 1–2 → the Candidate query → lineage p38 = (p02 + p03 − p02·p03)·p13
= 0.058 → policy P1 admits it for a Secretary doing analysis, policy P2
blocks it for a Manager making an investment decision → strategy finding
proposes the cheap fix (tuple 03 or the equally-priced tuple 13, cost 10,
not the 100-cost tuple 02) → improvement releases the row.
"""

import pytest

from repro import PCQEngine, QueryRequest, QueryStatus
from repro.increment import IncrementProblem, solve_greedy, solve_heuristic
from repro.lineage import lineage_and, lineage_or, var
from repro.policy import PolicyEvaluator
from repro.sql import run_sql


class TestQueryAndLineage:
    def test_candidate_join_confidence(self, running_example):
        result = run_sql(running_example.db, running_example.QUERY)
        by_company = {
            row.values[0]: (row, confidence)
            for row, confidence in result.with_confidences(running_example.db)
        }
        row, confidence = by_company["BlueRiver"]
        assert confidence == pytest.approx(0.058)
        # Lineage is (02 OR 03) AND 13.
        t02 = running_example.proposal_ids["02"]
        t03 = running_example.proposal_ids["03"]
        t13 = running_example.company_ids["13"]
        assert row.lineage == lineage_and(
            lineage_or(var(t02), var(t03)), var(t13)
        )

    def test_alternative_bumps_match_paper(self, running_example):
        db = running_example.db
        t02 = running_example.proposal_ids["02"]
        t03 = running_example.proposal_ids["03"]
        t13 = running_example.company_ids["13"]
        lineage = lineage_and(lineage_or(var(t02), var(t03)), var(t13))
        base = db.confidences([t02, t03, t13])
        # Raising p02 to 0.4 gives 0.064; raising p03 to 0.5 gives 0.065.
        from repro.lineage import probability

        assert probability(lineage, {**base, t02: 0.4}) == pytest.approx(0.064)
        assert probability(lineage, {**base, t03: 0.5}) == pytest.approx(0.065)


class TestPolicyOutcomes:
    def test_secretary_sees_result(self, running_example):
        result = run_sql(running_example.db, running_example.QUERY)
        evaluator = PolicyEvaluator(running_example.policies)
        outcome = evaluator.evaluate(
            result, running_example.db, "alice", "analysis"
        )
        released_companies = {row.values[0] for row, _ in outcome.released}
        assert "BlueRiver" in released_companies  # 0.058 > 0.05

    def test_manager_blocked(self, running_example):
        result = run_sql(running_example.db, running_example.QUERY)
        evaluator = PolicyEvaluator(running_example.policies)
        outcome = evaluator.evaluate(
            result, running_example.db, "bob", "investment"
        )
        withheld_companies = {row.values[0] for row, _ in outcome.withheld}
        assert "BlueRiver" in withheld_companies  # 0.058 < 0.06


class TestStrategyChoosesCheapFix:
    def test_exact_solver_cost_10(self, running_example):
        db = running_example.db
        t02 = running_example.proposal_ids["02"]
        t03 = running_example.proposal_ids["03"]
        t13 = running_example.company_ids["13"]
        lineage = lineage_and(lineage_or(var(t02), var(t03)), var(t13))
        problem = IncrementProblem.from_results(
            [lineage], db, threshold=0.06, required_count=1
        )
        plan = solve_heuristic(problem)
        # The paper's analysis: the 0.1-step on tuple 03 costs 10 vs 100 on
        # tuple 02 (raising 13 also costs 10 here and is equally optimal).
        assert plan.total_cost == pytest.approx(10.0)
        assert t02 not in plan.targets

    def test_greedy_matches_optimal_here(self, running_example):
        db = running_example.db
        t02 = running_example.proposal_ids["02"]
        t03 = running_example.proposal_ids["03"]
        t13 = running_example.company_ids["13"]
        lineage = lineage_and(lineage_or(var(t02), var(t03)), var(t13))
        problem = IncrementProblem.from_results(
            [lineage], db, threshold=0.06, required_count=1
        )
        assert solve_greedy(problem).total_cost == pytest.approx(10.0)


class TestFullPipeline:
    def test_manager_flow_improves_and_releases(self, running_example):
        engine = PCQEngine(
            running_example.db, running_example.policies, solver="heuristic"
        )
        result = engine.execute(
            QueryRequest(running_example.QUERY, "investment", 1.0), user="bob"
        )
        assert result.status is QueryStatus.IMPROVED
        companies = {row[0] for row in result.rows}
        assert "BlueRiver" in companies
        # Everything released is above the manager's threshold now.
        for _row, confidence in result.released:
            assert confidence > 0.06

    def test_improvement_is_persistent(self, running_example):
        engine = PCQEngine(running_example.db, running_example.policies)
        engine.execute(
            QueryRequest(running_example.QUERY, "investment", 1.0), user="bob"
        )
        # Re-running now satisfies without further improvement.
        again = engine.execute(
            QueryRequest(running_example.QUERY, "investment", 1.0), user="bob"
        )
        assert again.status is QueryStatus.SATISFIED
