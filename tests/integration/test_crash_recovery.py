"""The crash-recovery acceptance matrix.

For every crash point and fault mode in
:data:`repro.storage.durability.CRASH_POINTS`, a scripted session is
killed mid-operation and recovered; the recovered state must be
bit-identical to the pre-op state or the post-op state — never a third —
or recovery must raise a structured corruption error.  A second suite
kills a full DML + increment-write-back session and checks the improved
confidences survive.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import PCQEngine, QueryRequest
from repro.cost import LinearCost
from repro.errors import DurabilityError
from repro.policy import PolicyStore
from repro.storage import (
    Database,
    FaultInjector,
    SimulatedCrash,
    recover,
)
from repro.storage.durability import iter_fault_specs
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType
from repro.sql import execute_sql


def _schema() -> Schema:
    return Schema(
        [
            Column("id", DataType.INTEGER),
            Column("name", DataType.TEXT, nullable=True),
        ]
    )


def _seed(data_dir: str) -> None:
    """The committed baseline every matrix cell starts from."""
    db = Database.open(data_dir)
    table = db.create_table("t", _schema())
    table.insert([1, "one"], confidence=0.4, cost_model=LinearCost(2.0))
    table.insert([2, None], confidence=0.9)
    db.close()


def _dump(db: Database) -> str:
    """A canonical, bit-exact textual form of the whole database."""
    return json.dumps(
        {
            "tables": {
                table.name: {
                    "next": table._next_ordinal,
                    "rows": [
                        [row.tid.ordinal, list(row.values), row.confidence]
                        for row in table.scan()
                    ],
                }
                for table in db.tables()
            },
            "views": sorted(
                (name, db.view_definition(name)) for name in db.view_names()
            ),
        },
        sort_keys=True,
    )


def _faulted_session(db: Database, checkpointing: bool) -> None:
    """The operation under test: one insert (plus a checkpoint for the
    snapshot-path cells, which only fire during checkpoints)."""
    db.table("t").insert([3, "three"], confidence=0.7)
    if checkpointing:
        db.checkpoint()


@pytest.mark.parametrize(
    "spec",
    list(iter_fault_specs(seed=1234)),
    ids=lambda spec: f"{spec.point}-{spec.mode}",
)
def test_recovery_lands_on_pre_or_post_state(tmp_path, spec):
    data_dir = str(tmp_path / "state")
    checkpointing = spec.point.startswith(("checkpoint", "snapshot"))
    _seed(data_dir)

    # Golden states, computed fault-free on a scratch copy of the log.
    golden_dir = str(tmp_path / "golden")
    _seed(golden_dir)
    golden, _ = recover(golden_dir)
    pre_state = _dump(golden)
    _faulted_session(Database.open(golden_dir), checkpointing=False)
    post_db, _ = recover(golden_dir)
    post_state = _dump(post_db)

    injector = FaultInjector(spec)
    db = Database.open(data_dir, faults=injector)
    crashed = False
    try:
        _faulted_session(db, checkpointing)
    except SimulatedCrash:
        crashed = True
    assert crashed or injector.tripped or spec.mode == "lost_fsync", (
        f"fault at {spec.point} never fired — dead matrix cell"
    )

    # Recovery always runs with *real* IO: the machine rebooted.
    try:
        recovered, report = recover(data_dir)
    except DurabilityError:
        # A structured corruption error is an accepted outcome (e.g. an
        # un-fsynced snapshot that got renamed into place) — the contract
        # is "no silent wrong answer", not "no error".
        return
    state = _dump(recovered)
    assert state in (pre_state, post_state), (
        f"recovery after {spec.point}/{spec.mode} produced a third state:\n"
        f"  pre : {pre_state}\n  post: {post_state}\n  got : {state}\n"
        f"  report: {report.format()}"
    )


def test_recovery_is_idempotent_after_torn_tail(tmp_path):
    data_dir = str(tmp_path / "state")
    _seed(data_dir)
    wal_path = os.path.join(data_dir, "wal.log")
    size = os.path.getsize(wal_path)
    with open(wal_path, "r+b") as handle:
        handle.truncate(size - 4)  # tear the last committed record

    first, report = recover(data_dir)
    assert report.torn_bytes_truncated > 0
    second, report2 = recover(data_dir)
    assert report2.torn_bytes_truncated == 0  # the tail is gone for good
    assert _dump(first) == _dump(second)


def test_full_pipeline_session_survives_kill_and_recover(tmp_path):
    """DML + policy-driven confidence write-back, killed, recovered."""
    data_dir = str(tmp_path / "state")
    db = Database.open(data_dir)
    execute_sql(
        db,
        "CREATE TABLE Proposal (Company TEXT, Funding REAL NOT NULL)",
    )
    execute_sql(
        db,
        "INSERT INTO Proposal VALUES ('AcmeCorp', 1.5), ('Globex', 0.8), "
        "('Initech', 2.2) WITH CONFIDENCE 0.5",
    )

    policies = PolicyStore(default_threshold=0.0)
    policies.add_role("Manager")
    policies.add_purpose("investment")
    policies.add_user("bob", roles=["Manager"])
    policies.add_policy("Manager", "investment", 0.8)

    engine = PCQEngine(db, policies, solver="greedy")
    reply = engine.execute(
        QueryRequest("SELECT Company FROM Proposal", "investment", 1.0),
        user="bob",
    )
    assert reply.receipt is not None and reply.receipt.tuples_improved > 0
    improved = {
        row.tid.ordinal: row.confidence for row in db.table("Proposal").scan()
    }
    assert all(value >= 0.8 for value in improved.values())
    # Kill the process without a clean close: no flush, no checkpoint.
    db._durability._wal.close()
    db._durability = None

    recovered, report = recover(data_dir)
    assert report.records_replayed > 0
    survived = {
        row.tid.ordinal: row.confidence
        for row in recovered.table("Proposal").scan()
    }
    assert survived == improved  # the write-back is durable, bit-exact
    assert recovered.table("Proposal").rows() == db.table("Proposal").rows()


def test_improvement_write_back_recovers_atomically(tmp_path):
    """Crash DURING the improvement write-back: all-or-nothing."""
    from repro.storage.durability import FaultSpec

    data_dir = str(tmp_path / "state")
    db = Database.open(data_dir)
    table = db.create_table(
        "t", Schema([Column("a", DataType.INTEGER)])
    )
    tids = [
        table.insert([value], confidence=0.3, cost_model=LinearCost(1.0))
        for value in range(4)
    ]
    db.close()

    # The write-back below is the 1st WAL append of this session; tear it.
    spec = FaultSpec("wal.write", mode="torn", occurrence=1, seed=5)
    injector = FaultInjector(spec)
    db = Database.open(data_dir, faults=injector)
    with pytest.raises(SimulatedCrash):
        db.apply_confidences({tid: 0.95 for tid in tids})

    recovered, _report = recover(data_dir)
    confidences = {
        row.confidence for row in recovered.table("t").scan()
    }
    # Never a mix: the strategy is one record, so recovery sees the whole
    # batch or none of it.
    assert confidences == {0.3} or confidences == {0.95}
    assert confidences == {0.3}  # a torn record can never replay
