"""Property tests for replication: log reconciliation and read-your-writes.

Two families of laws:

* **Log divergence** — for any shared history with forked tails, digest
  reconciliation finds exactly the fork point; truncating the replica to
  the common prefix and replaying the primary's frames always converges
  to a digest-identical log (the truncate-and-resync contract).
* **Read-your-writes** — a session that demands ``min_seq`` never
  observes a snapshot older than it, across arbitrary interleavings of
  commits, stale pins, and lag checks; a demand beyond the node's
  position raises instead of lying, leaving the pin untouched.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReplicaLagError
from repro.policy import PolicyStore
from repro.server.mvcc import MVCCDatabase
from repro.server.replication.reconcile import (
    common_prefix_seq,
    divergence_point,
    frame_digests,
)
from repro.server.session import Session
from repro.storage import Database
from repro.storage.schema import Schema
from repro.storage.types import TEXT

# -- log divergence ---------------------------------------------------------

# Tag the two suffixes so a fork, when present, really differs at its
# first frame (the tags never collide with each other or the prefix).
_prefix_frames = st.lists(
    st.binary(min_size=1, max_size=8).map(lambda b: b"S" + b),
    max_size=20,
)
_primary_suffix = st.lists(
    st.binary(min_size=1, max_size=8).map(lambda b: b"P" + b),
    max_size=10,
)
_fork_suffix = st.lists(
    st.binary(min_size=1, max_size=8).map(lambda b: b"F" + b),
    max_size=10,
)


def _log(payloads: "list[bytes]") -> "list[tuple[int, bytes]]":
    return [(seq, payload) for seq, payload in enumerate(payloads, start=1)]


class TestLogDivergence:
    @given(prefix=_prefix_frames, primary=_primary_suffix, fork=_fork_suffix)
    @settings(max_examples=100, deadline=None)
    def test_reconciliation_finds_exactly_the_fork(self, prefix, primary, fork):
        primary_log = _log(prefix + primary)
        replica_log = _log(prefix + fork)
        local = frame_digests(replica_log)
        remote = frame_digests(primary_log)
        assert common_prefix_seq(local, remote) == len(prefix)
        if fork and primary:
            # Both histories continue past the prefix, differently: the
            # first post-prefix frame is the divergence point.
            assert divergence_point(local, remote) == len(prefix) + 1
        else:
            # One side simply ends: behind, not diverged.
            assert divergence_point(local, remote) is None

    @given(prefix=_prefix_frames, primary=_primary_suffix, fork=_fork_suffix)
    @settings(max_examples=100, deadline=None)
    def test_truncate_and_resync_always_converges(self, prefix, primary, fork):
        primary_log = _log(prefix + primary)
        replica_log = _log(prefix + fork)
        common = common_prefix_seq(
            frame_digests(replica_log), frame_digests(primary_log)
        )
        # The resync contract: drop everything past the common prefix,
        # then replay the primary's frames from there.
        converged = [
            frame for frame in replica_log if frame[0] <= common
        ] + [frame for frame in primary_log if frame[0] > common]
        assert converged == primary_log
        local = frame_digests(converged)
        remote = frame_digests(primary_log)
        assert divergence_point(local, remote) is None
        assert common_prefix_seq(local, remote) == len(primary_log)

    @given(payloads=_prefix_frames)
    @settings(max_examples=50, deadline=None)
    def test_a_log_never_diverges_from_itself(self, payloads):
        digests = frame_digests(_log(payloads))
        assert divergence_point(digests, digests) is None
        assert common_prefix_seq(digests, digests) == len(payloads)


# -- read-your-writes -------------------------------------------------------


def _policies() -> PolicyStore:
    policies = PolicyStore(default_threshold=0.0)
    policies.add_role("Manager")
    policies.add_purpose("ops")
    policies.add_user("bob", roles=["Manager"])
    policies.add_policy("Manager", "ops", 0.0)
    return policies


# An interleaving: commits (True) and read-your-writes checks (a float
# in [0, 1] picking which past write the reading client demands).
_interleavings = st.lists(
    st.one_of(st.just(True), st.floats(min_value=0.0, max_value=1.0)),
    min_size=1,
    max_size=30,
)


class TestReadYourWrites:
    @given(actions=_interleavings)
    @settings(max_examples=100, deadline=None)
    def test_a_session_never_observes_a_snapshot_older_than_min_seq(
        self, actions
    ):
        db = Database("ryw")
        db.create_table("t", Schema.of(("name", TEXT)))
        mvcc = MVCCDatabase(db)
        policies = _policies()
        session = Session(mvcc, policies, "bob", "ops")
        base_seq = mvcc.current_seq  # no rows exist at or before this
        try:
            for action in actions:
                if action is True:

                    def mutate(state):
                        state.table("t").insert(["row"], confidence=0.5)

                    mvcc.commit(mutate)
                    continue
                # A client that wrote at some past seq demands it here.
                current = mvcc.current_seq
                min_seq = base_seq + round(action * (current - base_seq))
                observed = session.ensure_seq(min_seq)
                assert observed == session.seq
                assert session.seq >= min_seq
                # The snapshot really contains every row up to min_seq.
                visible = len(session._snapshot().db.table("t"))
                assert visible >= min_seq - base_seq
        finally:
            session.close()

    @given(commits=st.integers(min_value=0, max_value=5),
           beyond=st.integers(min_value=1, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_a_demand_beyond_the_position_raises_instead_of_lying(
        self, commits, beyond
    ):
        db = Database("lag")
        db.create_table("t", Schema.of(("name", TEXT)))
        mvcc = MVCCDatabase(db)
        session = Session(mvcc, _policies(), "bob", "ops")
        try:
            for _ in range(commits):
                mvcc.commit(
                    lambda state: state.table("t").insert(
                        ["row"], confidence=0.5
                    )
                )
            pinned = session.seq
            with pytest.raises(ReplicaLagError) as excinfo:
                session.ensure_seq(mvcc.current_seq + beyond)
            assert excinfo.value.position == mvcc.current_seq
            # The failed demand left the pin exactly where it was.
            assert session.seq == pinned
        finally:
            session.close()

    @given(commits=st.integers(min_value=1, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_waiting_for_a_seq_that_arrives_succeeds(self, commits):
        import threading

        db = Database("wait")
        db.create_table("t", Schema.of(("name", TEXT)))
        mvcc = MVCCDatabase(db)
        session = Session(mvcc, _policies(), "bob", "ops")
        target = mvcc.current_seq + commits
        try:
            def writer():
                for _ in range(commits):
                    mvcc.commit(
                        lambda state: state.table("t").insert(
                            ["row"], confidence=0.5
                        )
                    )

            thread = threading.Thread(target=writer)
            thread.start()
            assert session.ensure_seq(target, wait_s=5.0) >= target
            thread.join()
        finally:
            session.close()
