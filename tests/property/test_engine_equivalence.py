"""Property-based differential testing of the execution engines.

Random databases and random plan shapes (scan/filter/project/join/
semijoin/set-operation nests, with DISTINCT, LIMIT, and arithmetic
projections) must produce identical rows, structurally identical lineage
formulas, and bit-identical confidences on the native and columnar
engines.  The columnar engine is forced (``engine="columnar"``) so small
random inputs cannot silently fall back to native.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import run_sql
from repro.storage import Database, INTEGER, REAL, Schema, TEXT

KEYS = "abcd"

rows_t = st.lists(
    st.tuples(
        st.sampled_from(KEYS),
        st.one_of(st.none(), st.integers(min_value=-5, max_value=5)),
        st.floats(min_value=0.05, max_value=0.95),
    ),
    max_size=8,
)
rows_u = st.lists(
    st.tuples(
        st.sampled_from(KEYS),
        st.one_of(st.none(), st.integers(min_value=-5, max_value=5)),
        st.floats(min_value=0.05, max_value=0.95),
    ),
    max_size=8,
)


def make_db(data_t, data_u) -> Database:
    db = Database("prop")
    t = db.create_table("t", Schema.of(("k", TEXT), ("v", INTEGER)))
    for key, value, confidence in data_t:
        t.insert([key, value], confidence=round(confidence, 3))
    u = db.create_table("u", Schema.of(("k", TEXT), ("w", INTEGER)))
    for key, value, confidence in data_u:
        u.insert([key, value], confidence=round(confidence, 3))
    return db


# A recursive grammar of SELECTs whose output schema is always (k, n).
base_query = st.sampled_from(
    [
        "SELECT k, v AS n FROM t",
        "SELECT k, v AS n FROM t WHERE v > 0",
        "SELECT k, v AS n FROM t WHERE v IS NOT NULL",
        "SELECT DISTINCT k, v AS n FROM t",
        "SELECT k, v + 1 AS n FROM t WHERE v < 3",
        "SELECT k, w AS n FROM u WHERE w <> 2",
        "SELECT t.k, u.w AS n FROM t JOIN u ON t.k = u.k",
        "SELECT t.k, u.w AS n FROM t LEFT JOIN u ON t.k = u.k",
        "SELECT t.k, u.w AS n FROM t JOIN u ON t.v < u.w",
        "SELECT k, v AS n FROM t WHERE k IN (SELECT k FROM u)",
        "SELECT k, v AS n FROM t WHERE k NOT IN (SELECT k FROM u WHERE w > 0)",
    ]
)


def combine(left: str, right: str, op: str) -> str:
    return f"{left} {op} {right}"


query = st.one_of(
    base_query,
    st.builds(
        combine,
        base_query,
        base_query,
        st.sampled_from(["UNION", "UNION ALL", "INTERSECT", "EXCEPT"]),
    ),
    st.builds(lambda q: f"{q} LIMIT 3", base_query),
)


def assert_engines_agree(db: Database, sql: str) -> None:
    native = run_sql(db, sql, engine="native")
    columnar = run_sql(db, sql, engine="columnar")
    assert [row.values for row in native.rows] == [
        row.values for row in columnar.rows
    ]
    assert [row.lineage for row in native.rows] == [
        row.lineage for row in columnar.rows
    ]
    # Bit-identical, not approximately equal: same circuits, same sweeps.
    assert native.confidences(db) == columnar.confidences(db)


@settings(max_examples=120, deadline=None)
@given(rows_t, rows_u, query)
def test_random_plans_are_engine_equivalent(data_t, data_u, sql):
    assert_engines_agree(make_db(data_t, data_u), sql)


@settings(max_examples=40, deadline=None)
@given(rows_t, rows_u)
def test_nested_subquery_join_is_engine_equivalent(data_t, data_u):
    db = make_db(data_t, data_u)
    assert_engines_agree(
        db,
        "SELECT cand.k, u.w FROM "
        "(SELECT DISTINCT k FROM t WHERE v > 0) AS cand "
        "JOIN u ON cand.k = u.k",
    )


@settings(max_examples=40, deadline=None)
@given(rows_t, rows_u)
def test_auto_mode_matches_native(data_t, data_u):
    """Whatever auto picks, results equal the native reference."""
    db = make_db(data_t, data_u)
    sql = "SELECT t.k, u.w AS n FROM t JOIN u ON t.k = u.k WHERE u.w > 0"
    native = run_sql(db, sql, engine="native")
    auto = run_sql(db, sql, engine="auto")
    assert [row.values for row in native.rows] == [
        row.values for row in auto.rows
    ]
    assert native.confidences(db) == auto.confidences(db)
