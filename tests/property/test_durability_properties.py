"""Property tests for the durability formats.

Two round-trip laws and two corruption laws:

* any sequence of WAL payloads scans back bit-identical;
* any database state (arbitrary schemas, NULLs, booleans, confidences at
  the 0.0/1.0 boundaries, every cost-model family) survives snapshot
  save/load;
* truncating a WAL at any byte never raises — the scan yields a prefix
  of the records (the torn-tail contract);
* flipping any single bit of a complete WAL is always detected.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import (
    BinomialCost,
    ExponentialCost,
    FreeCost,
    LinearCost,
    LogarithmicCost,
    TabulatedCost,
)
from repro.errors import CorruptLogError
from repro.storage import Database
from repro.storage.durability import (
    WAL_MAGIC,
    WriteAheadLog,
    decode_cost_model,
    encode_cost_model,
    load_snapshot,
    scan_wal,
    write_snapshot,
)
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

# -- strategies ------------------------------------------------------------

_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=122),
    min_size=1,
    max_size=8,
)

_dtypes = st.sampled_from(list(DataType))


def _value_for(dtype: DataType, nullable: bool) -> st.SearchStrategy:
    if dtype is DataType.INTEGER:
        base = st.integers(min_value=-(2**40), max_value=2**40)
    elif dtype is DataType.REAL:
        base = st.floats(allow_nan=False, allow_infinity=False, width=32)
    elif dtype is DataType.BOOLEAN:
        base = st.booleans()
    else:
        base = st.text(max_size=12)
    return st.one_of(st.none(), base) if nullable else base


_confidences = st.one_of(
    st.just(0.0),
    st.just(1.0),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)

_rates = st.floats(min_value=0.001, max_value=100.0, allow_nan=False)

_cost_models = st.one_of(
    st.just(None),
    st.builds(FreeCost),
    st.builds(LinearCost, _rates),
    st.builds(BinomialCost, _rates, _rates),
    st.builds(ExponentialCost, _rates, _rates),
    st.builds(
        LogarithmicCost,
        _rates,
        st.floats(min_value=0.05, max_value=0.95),
    ),
)


@st.composite
def _databases(draw) -> Database:
    db = Database("prop")
    table_names = draw(
        st.lists(_names, min_size=1, max_size=3, unique_by=str.lower)
    )
    for table_name in table_names:
        column_names = draw(
            st.lists(_names, min_size=1, max_size=4, unique_by=str.lower)
        )
        columns = [
            Column(
                column_name,
                draw(_dtypes),
                nullable=draw(st.booleans()),
            )
            for column_name in column_names
        ]
        table = db.create_table(table_name, Schema(columns))
        for _ in range(draw(st.integers(min_value=0, max_value=5))):
            values = [
                draw(_value_for(column.dtype, column.nullable))
                for column in columns
            ]
            model = draw(_cost_models)
            confidence = draw(_confidences)
            if model is not None:
                confidence = min(confidence, model.max_confidence)
            table.insert(values, confidence=confidence, cost_model=model)
    return db


def _state(db: Database):
    return {
        table.name: [
            (
                row.tid.ordinal,
                row.values,
                row.confidence,
                encode_cost_model(row.cost_model),
            )
            for row in table.scan()
        ]
        for table in db.tables()
    }


# -- WAL record round-trip -------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.lists(st.binary(max_size=200), max_size=12))
def test_wal_payloads_roundtrip(tmp_path_factory, payloads):
    path = str(tmp_path_factory.mktemp("wal") / "wal.log")
    log = WriteAheadLog(path, sync=False)
    for payload in payloads:
        log.append(payload)
    log.close()
    scan = scan_wal(path)
    assert scan.payloads == payloads
    assert scan.torn_bytes == 0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=60), min_size=1, max_size=6),
    st.data(),
)
def test_wal_truncation_yields_record_prefix(tmp_path_factory, payloads, data):
    path = str(tmp_path_factory.mktemp("wal") / "wal.log")
    log = WriteAheadLog(path, sync=False)
    for payload in payloads:
        log.append(payload)
    log.close()
    raw = open(path, "rb").read()
    cut = data.draw(st.integers(min_value=0, max_value=len(raw)))
    with open(path, "wb") as handle:
        handle.write(raw[:cut])
    scan = scan_wal(path)  # must never raise: a prefix is a torn write
    assert scan.payloads == payloads[: len(scan.payloads)]
    assert scan.good_length <= cut


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=60), min_size=1, max_size=4),
    st.data(),
)
def test_wal_single_bitflip_always_detected(tmp_path_factory, payloads, data):
    path = str(tmp_path_factory.mktemp("wal") / "wal.log")
    log = WriteAheadLog(path, sync=False)
    for payload in payloads:
        log.append(payload)
    log.close()
    raw = bytearray(open(path, "rb").read())
    position = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    raw[position] ^= 1 << bit
    with open(path, "wb") as handle:
        handle.write(bytes(raw))
    if position < len(WAL_MAGIC):
        with pytest.raises(CorruptLogError):
            scan_wal(path)
        return
    # CRC32C detects every single-bit error in header and payload alike.
    with pytest.raises(CorruptLogError):
        scan_wal(path)


# -- snapshot round-trip ---------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(db=_databases(), wal_seq=st.integers(min_value=0, max_value=2**31))
def test_snapshot_roundtrip(tmp_path_factory, db, wal_seq):
    path = str(tmp_path_factory.mktemp("snap") / "snapshot.snap")
    write_snapshot(db, path, wal_seq=wal_seq)
    restored, restored_seq = load_snapshot(path)
    assert restored_seq == wal_seq
    assert restored.name == db.name
    assert _state(restored) == _state(db)
    for table in db.tables():
        assert restored.table(table.name)._next_ordinal == table._next_ordinal


# -- cost-model codec ------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(model=_cost_models.filter(lambda m: m is not None))
def test_cost_model_codec_roundtrip(model):
    decoded = decode_cost_model(encode_cost_model(model))
    assert type(decoded) is type(model)
    assert decoded.max_confidence == model.max_confidence
    for target in (0.1, 0.5, 0.9):
        if target <= model.max_confidence:
            assert decoded.increment_cost(0.05, target) == model.increment_cost(
                0.05, target
            )


@settings(max_examples=40, deadline=None)
@given(
    confidences=st.lists(
        st.floats(min_value=0.01, max_value=0.99),
        min_size=2,
        max_size=5,
        unique=True,
    ),
    costs=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=5, max_size=5
    ),
)
def test_tabulated_cost_codec_roundtrip(confidences, costs):
    # Tabulated points need strictly increasing confidences and
    # non-decreasing costs; sort both to satisfy the invariant.
    points = list(zip(sorted(confidences), sorted(costs)))
    model = TabulatedCost(points)
    decoded = decode_cost_model(encode_cost_model(model))
    assert isinstance(decoded, TabulatedCost)
    assert sorted(decoded._points) == sorted(model._points)
