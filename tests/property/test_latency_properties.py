"""Property-based tests for LPT lead-time estimation.

For any set of verification durations and any worker count, the LPT
schedule must respect the classic makespan bounds:

* ``makespan >= max(total_work / m, longest_duration)`` — no schedule can
  beat the work or the longest single task;
* ``makespan <= total_work / m + longest_duration`` — the list-scheduling
  guarantee (whoever finishes last started before the others were idle);
* with one worker the makespan is exactly the total work;
* the critical tuple is always one of the plan's tuples.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import LinearCost
from repro.increment import (
    BaseTupleState,
    IncrementPlan,
    IncrementProblem,
    SolverStats,
    VerificationLatencyModel,
    estimate_lead_time,
)
from repro.lineage import ConfidenceFunction, var
from repro.storage import TupleId

_EPS = 1e-6

# Confidence increments in (0, 1]; the model below maps each directly to
# a duration (per_confidence_unit=1, no overhead, no cost term).
_MODEL = VerificationLatencyModel(
    dispatch_overhead=0.0, per_confidence_unit=1.0, per_cost_unit=0.0
)

increments = st.lists(
    st.floats(
        min_value=0.01,
        max_value=1.0,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=12,
)


def _instance(deltas):
    tids = [TupleId("t", index) for index in range(len(deltas))]
    states = {tid: BaseTupleState(tid, 0.0, LinearCost(1.0)) for tid in tids}
    results = [ConfidenceFunction(var(tid)) for tid in tids]
    problem = IncrementProblem(results, states, 0.9, len(tids))
    plan = IncrementPlan(
        dict(zip(tids, deltas)), 0.0, (), "test", SolverStats()
    )
    return problem, plan


@settings(max_examples=200, deadline=None)
@given(deltas=increments, parallelism=st.integers(min_value=1, max_value=8))
def test_makespan_within_list_scheduling_bounds(deltas, parallelism):
    problem, plan = _instance(deltas)
    estimate = estimate_lead_time(plan, problem, _MODEL, parallelism)
    total_work = sum(deltas)
    longest = max(deltas)
    assert abs(estimate.total_work - total_work) <= _EPS
    assert estimate.actions == len(deltas)
    lower = max(total_work / parallelism, longest)
    upper = total_work / parallelism + longest
    assert estimate.makespan >= lower - _EPS
    assert estimate.makespan <= upper + _EPS
    assert estimate.makespan <= total_work + _EPS
    assert estimate.critical_tuple in plan.targets


@settings(max_examples=100, deadline=None)
@given(deltas=increments)
def test_single_worker_makespan_is_total_work(deltas):
    problem, plan = _instance(deltas)
    estimate = estimate_lead_time(plan, problem, _MODEL, parallelism=1)
    assert abs(estimate.makespan - sum(deltas)) <= _EPS
    assert abs(estimate.total_work - sum(deltas)) <= _EPS


@settings(max_examples=100, deadline=None)
@given(
    deltas=increments,
    parallelism=st.integers(min_value=1, max_value=8),
)
def test_more_workers_never_hurt(deltas, parallelism):
    problem, plan = _instance(deltas)
    fewer = estimate_lead_time(plan, problem, _MODEL, parallelism)
    more = estimate_lead_time(plan, problem, _MODEL, parallelism + 1)
    assert more.makespan <= fewer.makespan + _EPS
