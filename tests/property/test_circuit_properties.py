"""Differential properties of the arithmetic-circuit engine.

The circuit compiler mirrors the tree-walk evaluator operation for
operation, so its values must be *bit-identical* to
:func:`repro.lineage.probability.probability` and
:func:`repro.lineage.probability.compile_probability` on arbitrary SPJU
lineage — including formulas that share subcircuits through one pool and
formulas whose entangled clusters force Shannon expansion.  Monte-Carlo
estimation provides an engine-independent statistical cross-check.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lineage import (
    CircuitEvaluator,
    CircuitPool,
    lineage_and,
    lineage_not,
    lineage_or,
    probability,
    sensitivity,
    var,
)
from repro.lineage.montecarlo import estimate_probability
from repro.lineage.probability import compile_probability
from repro.storage import TupleId

POOL = [TupleId("t", i) for i in range(5)]


def formulas(max_depth=4, allow_not=True):
    """Random formula trees over POOL (same shape as the lineage suite).

    Repeated variables across branches routinely produce entangled
    clusters, so the Shannon-expansion compile path is exercised heavily.
    """
    leaves = st.sampled_from(POOL).map(var)

    def extend(children):
        options = [
            st.lists(children, min_size=2, max_size=3).map(
                lambda parts: lineage_and(*parts)
            ),
            st.lists(children, min_size=2, max_size=3).map(
                lambda parts: lineage_or(*parts)
            ),
        ]
        if allow_not:
            options.append(children.map(lineage_not))
        return st.one_of(*options)

    return st.recursive(leaves, extend, max_leaves=8)


def probability_maps():
    return st.fixed_dictionaries(
        {tid: st.floats(min_value=0.0, max_value=1.0) for tid in POOL}
    )


@settings(max_examples=150, deadline=None)
@given(formulas(), probability_maps())
def test_circuit_matches_probability_bitwise(formula, probs):
    circuit = CircuitPool().compile(formula)
    assert circuit.evaluate(probs) == probability(formula, probs)


@settings(max_examples=100, deadline=None)
@given(formulas(), probability_maps())
def test_circuit_matches_compiled_closure_bitwise(formula, probs):
    circuit = CircuitPool().compile(formula)
    assert circuit.evaluate(probs) == compile_probability(formula)(probs)


@settings(max_examples=100, deadline=None)
@given(formulas(), formulas(), probability_maps())
def test_sharing_one_pool_does_not_change_values(left, right, probs):
    """Interning across formulas never alters either formula's value."""
    pool = CircuitPool()
    first = pool.compile(left)
    second = pool.compile(right)
    assert first.evaluate(probs) == probability(left, probs)
    assert second.evaluate(probs) == probability(right, probs)
    # Compiling in one pool combining both (forcing shared subcircuits
    # through the conjunction) leaves the standalone values intact too.
    combined = pool.compile(lineage_and(left, right))
    assert first.evaluate(probs) == probability(left, probs)
    del combined


@settings(max_examples=75, deadline=None)
@given(formulas(allow_not=False), probability_maps())
def test_gradient_matches_sensitivity(formula, probs):
    circuit = CircuitPool().compile(formula)
    gradient = circuit.gradient(probs)
    # Variables the compiler eliminated (absorption during Shannon
    # restriction) have structurally zero partials and no gradient entry.
    for tid in formula.variables:
        assert (
            abs(gradient.get(tid, 0.0) - sensitivity(formula, probs, tid))
            < 1e-9
        )


@settings(max_examples=75, deadline=None)
@given(
    formulas(),
    probability_maps(),
    st.lists(
        st.tuples(
            st.sampled_from(POOL), st.floats(min_value=0.0, max_value=1.0)
        ),
        max_size=6,
    ),
)
def test_incremental_updates_match_fresh_evaluation(formula, probs, updates):
    """A chain of cone updates always equals evaluating from scratch."""
    pool = CircuitPool()
    circuit = pool.compile(formula)
    current = dict(probs)
    evaluator = CircuitEvaluator(pool, current, [circuit])
    for tid, value in updates:
        current[tid] = value
        evaluator.set_value(tid, value)
        assert evaluator.value(circuit.root) == probability(formula, current)


@settings(max_examples=50, deadline=None)
@given(
    formulas(),
    probability_maps(),
    st.sampled_from(POOL),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_probe_equals_patched_evaluation_without_commit(
    formula, probs, tid, value
):
    pool = CircuitPool()
    circuit = pool.compile(formula)
    evaluator = CircuitEvaluator(pool, probs, [circuit])
    before = evaluator.value(circuit.root)
    patched = dict(probs)
    patched[tid] = value
    [probed] = evaluator.probe(tid, value, [circuit.root])
    assert probed == probability(formula, patched)
    assert evaluator.value(circuit.root) == before


@settings(max_examples=20, deadline=None)
@given(formulas(), st.integers(min_value=0, max_value=2**16))
def test_circuit_within_montecarlo_interval(formula, seed):
    """Statistical cross-check against an engine that shares no code."""
    rng = random.Random(seed)
    probs = {tid: rng.uniform(0.0, 1.0) for tid in POOL}
    exact = CircuitPool().compile(formula).evaluate(probs)
    samples = 4000
    estimate = estimate_probability(
        formula, probs, samples=samples, rng=random.Random(seed + 1)
    )
    low, high = estimate.confidence_interval(z=4.0)
    # The normal-approximation interval degenerates when the true
    # probability is within ~1/samples of 0 or 1 (every sample agrees,
    # stderr 0) — widen by the resolution of the estimator so those
    # cases don't fail spuriously.
    slack = 10.0 / samples
    assert low - slack <= exact <= high + slack
