"""Property-based tests for the SQL engine.

Random relations are checked against a reference implementation built on
plain Python sets/lists, and SQL-level algebraic identities are verified
(e.g. UNION commutativity on values, WHERE/LIMIT interactions).
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import run_sql
from repro.storage import Database, INTEGER, Schema, TEXT


def make_db(rows_t, rows_u):
    db = Database()
    t = db.create_table("t", Schema.of(("k", TEXT), ("v", INTEGER)))
    for key, value in rows_t:
        t.insert([key, value])
    u = db.create_table("u", Schema.of(("k", TEXT), ("w", INTEGER)))
    for key, value in rows_u:
        u.insert([key, value])
    return db


rows = st.lists(
    st.tuples(st.sampled_from("abcd"), st.integers(min_value=-5, max_value=5)),
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(rows, st.integers(min_value=-5, max_value=5))
def test_where_matches_python_filter(data, bound):
    db = make_db(data, [])
    result = run_sql(db, f"SELECT k, v FROM t WHERE v > {bound}")
    expected = Counter(row for row in data if row[1] > bound)
    assert Counter(result.values()) == expected


@settings(max_examples=60, deadline=None)
@given(rows)
def test_distinct_matches_python_set(data):
    db = make_db(data, [])
    result = run_sql(db, "SELECT DISTINCT k FROM t")
    assert {row[0] for row in result.values()} == {key for key, _ in data}
    assert len(result) == len({key for key, _ in data})


@settings(max_examples=60, deadline=None)
@given(rows, rows)
def test_inner_join_matches_nested_loop(data_t, data_u):
    db = make_db(data_t, data_u)
    result = run_sql(db, "SELECT t.k, v, w FROM t JOIN u ON t.k = u.k")
    expected = Counter(
        (tk, tv, uw)
        for tk, tv in data_t
        for uk, uw in data_u
        if tk == uk
    )
    assert Counter(result.values()) == expected


@settings(max_examples=60, deadline=None)
@given(rows, rows)
def test_union_values_commutative(data_t, data_u):
    db = make_db(data_t, data_u)
    forward = run_sql(db, "SELECT k FROM t UNION SELECT k FROM u")
    backward = run_sql(db, "SELECT k FROM u UNION SELECT k FROM t")
    assert sorted(forward.values()) == sorted(backward.values())
    assert {row[0] for row in forward.values()} == (
        {key for key, _ in data_t} | {key for key, _ in data_u}
    )


@settings(max_examples=60, deadline=None)
@given(rows)
def test_group_count_matches_counter(data):
    db = make_db(data, [])
    result = run_sql(db, "SELECT k, COUNT(*) FROM t GROUP BY k")
    expected = Counter(key for key, _ in data)
    assert {row[0]: row[1] for row in result.values()} == dict(expected)


@settings(max_examples=60, deadline=None)
@given(rows)
def test_aggregates_match_python(data):
    db = make_db(data, [])
    result = run_sql(db, "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t")
    count, total, low, high = result.rows[0].values
    assert count == len(data)
    if data:
        values = [value for _, value in data]
        assert total == sum(values)
        assert low == min(values)
        assert high == max(values)
    else:
        assert (total, low, high) == (None, None, None)


@settings(max_examples=60, deadline=None)
@given(rows, st.integers(min_value=0, max_value=10))
def test_limit_is_prefix_of_sorted(data, limit):
    db = make_db(data, [])
    full = run_sql(db, "SELECT k, v FROM t ORDER BY v, k")
    limited = run_sql(db, f"SELECT k, v FROM t ORDER BY v, k LIMIT {limit}")
    assert limited.values() == full.values()[:limit]


@settings(max_examples=60, deadline=None)
@given(rows)
def test_optimizer_never_changes_results(data):
    db = make_db(data, data[:4])
    sql = (
        "SELECT t.k, v FROM t JOIN u ON t.k = u.k "
        "WHERE v > -3 AND w < 5"
    )
    optimized = run_sql(db, sql, optimized=True)
    raw = run_sql(db, sql, optimized=False)
    assert Counter(optimized.values()) == Counter(raw.values())


@settings(max_examples=40, deadline=None)
@given(rows)
def test_union_confidence_never_below_operands(data):
    """Merging duplicates with OR can only raise confidence."""
    db = Database()
    t = db.create_table("t", Schema.of(("k", TEXT)))
    for index, (key, _value) in enumerate(data):
        t.insert([key], confidence=0.1 + 0.8 * (index % 7) / 7)
    plain = run_sql(db, "SELECT k FROM t")
    merged = run_sql(db, "SELECT DISTINCT k FROM t")
    plain_best: dict[str, float] = {}
    for row, confidence in plain.with_confidences(db):
        key = row.values[0]
        plain_best[key] = max(plain_best.get(key, 0.0), confidence)
    for row, confidence in merged.with_confidences(db):
        assert confidence >= plain_best[row.values[0]] - 1e-9
