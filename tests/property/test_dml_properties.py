"""Property-based tests for SQL DML: random rows round-trip losslessly."""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import execute_sql, run_sql
from repro.storage import Database

names = st.text(
    alphabet="abcdefg", min_size=1, max_size=6
)
quantities = st.one_of(st.none(), st.integers(min_value=-100, max_value=100))
confidences = st.floats(min_value=0.01, max_value=1.0).map(
    lambda x: round(x, 3)
)


def fresh_db() -> Database:
    db = Database()
    execute_sql(db, "CREATE TABLE t (name TEXT, qty INT)")
    return db


def sql_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(names, quantities), min_size=1, max_size=10), confidences)
def test_insert_select_roundtrip(rows, confidence):
    db = fresh_db()
    values = ", ".join(
        f"({sql_literal(name)}, {sql_literal(qty)})" for name, qty in rows
    )
    execute_sql(
        db, f"INSERT INTO t VALUES {values} WITH CONFIDENCE {confidence}"
    )
    result = run_sql(db, "SELECT name, qty FROM t")
    assert Counter(result.values()) == Counter(rows)
    assert all(
        c == confidence for c in result.confidences(db)
    )


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.tuples(names, quantities), min_size=1, max_size=10),
    st.integers(min_value=-100, max_value=100),
)
def test_delete_complements_select(rows, bound):
    db = fresh_db()
    values = ", ".join(
        f"({sql_literal(name)}, {sql_literal(qty)})" for name, qty in rows
    )
    execute_sql(db, f"INSERT INTO t VALUES {values}")
    kept_expected = [
        row for row in rows if not (row[1] is not None and row[1] > bound)
    ]
    execute_sql(db, f"DELETE FROM t WHERE qty > {bound}")
    result = run_sql(db, "SELECT name, qty FROM t")
    assert Counter(result.values()) == Counter(kept_expected)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(names, quantities), min_size=1, max_size=10))
def test_update_is_python_map(rows):
    db = fresh_db()
    values = ", ".join(
        f"({sql_literal(name)}, {sql_literal(qty)})" for name, qty in rows
    )
    execute_sql(db, f"INSERT INTO t VALUES {values}")
    execute_sql(db, "UPDATE t SET qty = qty + 1")
    expected = Counter(
        (name, None if qty is None else qty + 1) for name, qty in rows
    )
    assert Counter(run_sql(db, "SELECT name, qty FROM t").values()) == expected


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(names, quantities), min_size=1, max_size=8))
def test_insert_string_escaping(rows):
    db = fresh_db()
    tricky = [(name + "'s", qty) for name, qty in rows]
    values = ", ".join(
        f"({sql_literal(name)}, {sql_literal(qty)})" for name, qty in tricky
    )
    execute_sql(db, f"INSERT INTO t VALUES {values}")
    assert Counter(run_sql(db, "SELECT name, qty FROM t").values()) == Counter(
        tricky
    )
