"""Property-based tests for the D&C partitioner and workload generator."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.increment import PartitionOptions, partition_results
from repro.workload import WorkloadSpec, generate_problem


def problems():
    @st.composite
    def build(draw):
        spec = WorkloadSpec(
            data_size=draw(st.integers(min_value=5, max_value=80)),
            tuples_per_result=draw(st.integers(min_value=2, max_value=5)),
            threshold=0.5,
            locality=draw(st.sampled_from([0.0, 2.0, 5.0])),
        )
        seed = draw(st.integers(min_value=0, max_value=5000))
        return generate_problem(spec, seed=seed).problem

    return build()


@settings(max_examples=60, deadline=None)
@given(problems(), st.floats(min_value=0.5, max_value=5.0))
def test_partition_is_a_partition(problem, gamma):
    groups = partition_results(problem, PartitionOptions(gamma=gamma))
    flattened = sorted(index for group in groups for index in group)
    assert flattened == list(range(len(problem.results)))


@settings(max_examples=40, deadline=None)
@given(problems())
def test_higher_gamma_never_merges_more(problem):
    coarse = partition_results(problem, PartitionOptions(gamma=1.0))
    fine = partition_results(problem, PartitionOptions(gamma=3.0))
    assert len(fine) >= len(coarse)


@settings(max_examples=40, deadline=None)
@given(problems())
def test_gamma_one_groups_are_connected_components(problem):
    """At γ=1 every pair of results sharing a tuple lands together."""
    groups = partition_results(problem, PartitionOptions(gamma=1.0))
    group_of = {}
    for group_id, group in enumerate(groups):
        for index in group:
            group_of[index] = group_id
    for indexes in problem.results_by_tuple.values():
        first = indexes[0] if indexes else None
        for index in indexes[1:]:
            assert group_of[index] == group_of[first]


@settings(max_examples=40, deadline=None)
@given(problems(), st.integers(min_value=3, max_value=30))
def test_group_tuple_cap_respected(problem, cap):
    groups = partition_results(
        problem, PartitionOptions(gamma=1.0, max_group_tuples=cap)
    )
    for group in groups:
        if len(group) == 1:
            continue  # singleton groups may exceed the cap on their own
        tuples = set()
        for index in group:
            tuples |= set(problem.results[index].variables)
        assert len(tuples) <= cap


@settings(max_examples=40, deadline=None)
@given(problems())
def test_generated_requirement_is_always_achievable(problem):
    flags = [
        problem.satisfied(result.evaluate(problem.maximal_assignment()))
        for result in problem.results
    ]
    assert problem.requirements_met(flags)
