"""Property-based tests for the strategy-finding solvers.

Random small instances from the workload generator, checked for the
invariants that define a correct solver:

* every returned plan actually satisfies the requirement;
* targets never exceed per-tuple maxima and never go below current values;
* the exact solver's cost lower-bounds both approximations;
* reported costs equal the cost recomputed from the targets.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.increment import (
    solve_dnc,
    solve_greedy,
    solve_heuristic,
)
from repro.workload import WorkloadSpec, generate_problem

_EPS = 1e-6


def small_problems(max_size=10, delta=0.1):
    """Exact-solver-sized instances (≤ 10 base tuples).

    *delta* controls the per-tuple grid; weakly-pruned configurations
    (e.g. only-H2) explore O(levels^tuples) nodes, so tests that solve
    them should pass a coarse delta.
    """

    @st.composite
    def build(draw):
        data_size = draw(st.integers(min_value=4, max_value=max_size))
        per_result = draw(
            st.integers(min_value=2, max_value=min(4, data_size))
        )
        seed = draw(st.integers(min_value=0, max_value=10_000))
        or_bias = draw(st.sampled_from([0.3, 0.5, 0.8]))
        spec = WorkloadSpec(
            data_size=data_size,
            tuples_per_result=per_result,
            threshold=0.5,
            theta=0.5,
            or_bias=or_bias,
            delta=delta,
        )
        return generate_problem(spec, seed=seed).problem

    return build()


def medium_problems():
    @st.composite
    def build(draw):
        seed = draw(st.integers(min_value=0, max_value=10_000))
        spec = WorkloadSpec(
            data_size=draw(st.integers(min_value=20, max_value=60)),
            tuples_per_result=draw(st.integers(min_value=2, max_value=5)),
            threshold=0.5,
        )
        return generate_problem(spec, seed=seed).problem

    return build()


def check_plan_valid(problem, plan):
    assignment = problem.initial_assignment()
    for tid, target in plan.targets.items():
        state = problem.tuples[tid]
        assert target <= state.maximum + _EPS
        assert target >= state.initial - _EPS
        assignment[tid] = target
    assert problem.satisfied_count(assignment) >= problem.required_count
    recomputed = sum(
        problem.tuples[tid].cost_to(target)
        for tid, target in plan.targets.items()
    )
    assert abs(plan.total_cost - recomputed) < _EPS * max(1.0, recomputed)


@settings(max_examples=30, deadline=None)
@given(small_problems())
def test_heuristic_plan_valid(problem):
    check_plan_valid(problem, solve_heuristic(problem))


@settings(max_examples=40, deadline=None)
@given(medium_problems())
def test_greedy_plan_valid(problem):
    check_plan_valid(problem, solve_greedy(problem))


@settings(max_examples=40, deadline=None)
@given(medium_problems())
def test_dnc_plan_valid(problem):
    check_plan_valid(problem, solve_dnc(problem))


@settings(max_examples=20, deadline=None)
@given(small_problems(max_size=8))
def test_exact_lower_bounds_approximations(problem):
    exact = solve_heuristic(problem)
    assert exact.total_cost <= solve_greedy(problem).total_cost + _EPS
    assert exact.total_cost <= solve_dnc(problem).total_cost + _EPS


@settings(max_examples=15, deadline=None)
@given(small_problems(max_size=7, delta=0.25))
def test_heuristic_configurations_agree_on_optimum(problem):
    from repro.increment import HeuristicOptions

    reference = solve_heuristic(problem).total_cost
    for name in ("h1", "h2", "h3", "h4"):
        plan = solve_heuristic(problem, HeuristicOptions.only(name))
        assert abs(plan.total_cost - reference) < _EPS * max(1.0, reference)
