"""Property-based tests for EWMA admission under adversarial arrivals.

The admission controller projects queue wait as ``inflight * ewma /
workers`` and rejects when the projection alone blows the deadline.
Three properties pin its behavior under hostile traffic:

* the EWMA is always bounded by the observed service-time range — no
  sequence of completions can push the estimate outside what was seen;
* a burst of arrivals is monotone: once one request is rejected, every
  later arrival of the burst (at equal or greater depth) is rejected
  too — no lucky late admissions behind a queue that already failed;
* a single pathological slow request skews the estimate enough to shed
  tight-deadline work, and a run of fast completions *recovers* it —
  the controller never wedges open after one outlier.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import AdmissionError
from repro.policy import PolicyStore
from repro.server import PCQEServer
from repro.storage import Database

_EPS = 1e-9

service_times = st.lists(
    st.floats(min_value=1e-4, max_value=10.0, allow_nan=False),
    min_size=1,
    max_size=32,
)


def _server(**kwargs) -> PCQEServer:
    # Never started: _admit/_finish need no socket or event loop.
    return PCQEServer(
        Database("t"), PolicyStore(default_threshold=0.0), **kwargs
    )


def _complete(server: PCQEServer, elapsed: float) -> None:
    """One request finishing: _finish pairs with an earlier admit."""
    server._inflight += 1
    server._finish(elapsed)


def _try_admit(server: PCQEServer, deadline_ms: float) -> bool:
    try:
        server._admit("ask", deadline_ms)
    except AdmissionError:
        return False
    server._inflight -= 1  # undo the admit's slot for the next probe
    return True


class TestEwmaBounds:
    @given(samples=service_times)
    @settings(max_examples=60, deadline=None)
    def test_estimate_stays_within_the_observed_range(self, samples):
        server = _server()
        for elapsed in samples:
            _complete(server, elapsed)
            assert (
                min(samples) - _EPS
                <= server._service_ewma
                <= max(samples) + _EPS
            )

    @given(samples=service_times)
    @settings(max_examples=60, deadline=None)
    def test_order_of_magnitude_follows_the_recent_past(self, samples):
        # After the first completion the estimate is exactly that sample
        # (the EWMA self-seeds rather than averaging against zero).
        server = _server()
        _complete(server, samples[0])
        assert server._service_ewma == samples[0]


class TestBurstyArrivals:
    @given(
        ewma=st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
        deadline_ms=st.floats(min_value=10.0, max_value=2000.0),
        burst=st.integers(min_value=1, max_value=48),
    )
    @settings(max_examples=60, deadline=None)
    def test_rejections_are_monotone_across_a_burst(
        self, ewma, deadline_ms, burst
    ):
        server = _server(shed_multipliers={})  # isolate the deadline gate
        server._service_ewma = ewma
        # Keep every arrival off the decision boundary (within 2 ms the
        # admit-time clock read could flip it either way).
        for depth in range(burst):
            projected_ms = depth * ewma / server.workers * 1000.0
            assume(abs(projected_ms - deadline_ms) > 2.0)
        admitted_after_rejection = False
        rejected = False
        for _ in range(burst):
            try:
                server._admit("ask", deadline_ms)  # admits hold their slot
                if rejected:
                    admitted_after_rejection = True
            except AdmissionError:
                rejected = True
        assert not admitted_after_rejection

    @given(
        ewma=st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
        deadline_ms=st.floats(min_value=10.0, max_value=2000.0),
        depth=st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=80, deadline=None)
    def test_gate_matches_the_analytic_projection(
        self, ewma, deadline_ms, depth
    ):
        server = _server(shed_multipliers={})
        server._service_ewma = ewma
        server._inflight = depth
        projected_ms = depth * ewma / server.workers * 1000.0
        admitted = _try_admit(server, deadline_ms)
        if projected_ms > deadline_ms:
            assert not admitted
        elif projected_ms < deadline_ms - 50.0:
            # Far from the boundary the µs-scale admit overhead cannot
            # flip the verdict; in between, either outcome is legal.
            assert admitted


class TestSkewAndRecovery:
    @given(
        fast=st.floats(min_value=0.001, max_value=0.05, allow_nan=False),
        slow=st.floats(min_value=5.0, max_value=50.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_one_slow_request_sheds_then_fast_traffic_recovers(
        self, fast, slow
    ):
        server = _server()
        _complete(server, fast)  # healthy steady state
        deadline_ms = 8.0 * fast * 1000.0

        # With a full pool ahead, the healthy estimate admits easily.
        server._inflight = server.workers
        assert _try_admit(server, deadline_ms)

        # One pathological request skews the EWMA far above the deadline.
        server._inflight = 0
        _complete(server, slow)
        assert server._service_ewma >= 0.2 * slow * (1 - 1e-9)
        server._inflight = server.workers
        assert not _try_admit(server, deadline_ms)

        # Fast completions decay the skew geometrically; the gate reopens.
        server._inflight = 0
        recovered = False
        for _ in range(300):
            _complete(server, fast)
            server._inflight = server.workers
            if _try_admit(server, deadline_ms):
                recovered = True
                break
            server._inflight = 0
        assert recovered
