"""Property-based tests for lineage formulas and probability computation.

Strategy: generate random monotone-or-negated formulas over a small variable
pool, then check algebraic invariants against brute-force world enumeration.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lineage import (
    lineage_and,
    lineage_not,
    lineage_or,
    probability,
    restrict,
    sensitivity,
    var,
)
from repro.lineage.probability import compile_probability
from repro.storage import TupleId

POOL = [TupleId("t", i) for i in range(5)]


def formulas(max_depth=4, allow_not=True):
    """Random formula trees over POOL."""
    leaves = st.sampled_from(POOL).map(var)

    def extend(children):
        options = [
            st.lists(children, min_size=2, max_size=3).map(
                lambda parts: lineage_and(*parts)
            ),
            st.lists(children, min_size=2, max_size=3).map(
                lambda parts: lineage_or(*parts)
            ),
        ]
        if allow_not:
            options.append(children.map(lineage_not))
        return st.one_of(*options)

    return st.recursive(leaves, extend, max_leaves=8)


def probability_maps():
    return st.fixed_dictionaries(
        {tid: st.floats(min_value=0.0, max_value=1.0) for tid in POOL}
    )


def brute_force(formula, probs):
    variables = sorted(formula.variables)
    total = 0.0
    for bits in itertools.product([False, True], repeat=len(variables)):
        world = dict(zip(variables, bits))
        weight = 1.0
        for tid, bit in world.items():
            weight *= probs[tid] if bit else 1.0 - probs[tid]
        if formula.evaluate(world):
            total += weight
    return total


@settings(max_examples=150, deadline=None)
@given(formulas(), probability_maps())
def test_probability_matches_brute_force(formula, probs):
    assert abs(probability(formula, probs) - brute_force(formula, probs)) < 1e-9


@settings(max_examples=100, deadline=None)
@given(formulas(), probability_maps())
def test_compiled_matches_interpreter(formula, probs):
    compiled = compile_probability(formula)
    assert abs(compiled(probs) - probability(formula, probs)) < 1e-12


@settings(max_examples=100, deadline=None)
@given(formulas(), probability_maps())
def test_probability_in_unit_interval(formula, probs):
    value = probability(formula, probs)
    assert 0.0 <= value <= 1.0


@settings(max_examples=100, deadline=None)
@given(formulas(), probability_maps())
def test_negation_complements(formula, probs):
    direct = probability(formula, probs)
    complement = probability(lineage_not(formula), probs)
    assert abs(direct + complement - 1.0) < 1e-9


@settings(max_examples=100, deadline=None)
@given(formulas(), probability_maps(), st.sampled_from(POOL))
def test_shannon_identity(formula, probs, tid):
    """P(f) = p·P(f|v=1) + (1−p)·P(f|v=0) for every variable."""
    p = probs[tid]
    high = probability(restrict(formula, tid, True), probs)
    low = probability(restrict(formula, tid, False), probs)
    assert abs(probability(formula, probs) - (p * high + (1 - p) * low)) < 1e-9


@settings(max_examples=100, deadline=None)
@given(formulas(allow_not=False), probability_maps(), st.sampled_from(POOL))
def test_monotone_formulas_have_nonnegative_sensitivity(formula, probs, tid):
    assert sensitivity(formula, probs, tid) >= -1e-12


@settings(max_examples=100, deadline=None)
@given(
    formulas(allow_not=False),
    probability_maps(),
    st.sampled_from(POOL),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_monotone_formulas_increase_with_probability(formula, probs, tid, bump):
    base = probability(formula, probs)
    raised = dict(probs)
    raised[tid] = max(raised[tid], bump)
    assert probability(formula, raised) >= base - 1e-9


@settings(max_examples=100, deadline=None)
@given(formulas(), formulas(), probability_maps())
def test_de_morgan(left, right, probs):
    lhs = probability(lineage_not(lineage_and(left, right)), probs)
    rhs = probability(
        lineage_or(lineage_not(left), lineage_not(right)), probs
    )
    assert abs(lhs - rhs) < 1e-9


@settings(max_examples=100, deadline=None)
@given(formulas())
def test_smart_constructor_idempotence(formula):
    assert lineage_and(formula, formula) == formula
    assert lineage_or(formula, formula) == formula
    assert lineage_not(lineage_not(formula)) == formula


@settings(max_examples=100, deadline=None)
@given(formulas(), st.sampled_from(POOL), st.booleans())
def test_restrict_removes_variable(formula, tid, value):
    restricted = restrict(formula, tid, value)
    assert tid not in restricted.variables
