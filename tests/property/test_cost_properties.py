"""Property-based tests for cost models: monotonicity and additivity."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import (
    BinomialCost,
    CostModelSampler,
    ExponentialCost,
    LinearCost,
    LogarithmicCost,
)

MODELS = st.one_of(
    st.builds(
        LinearCost,
        rate=st.floats(min_value=0.1, max_value=500.0),
    ),
    st.builds(
        BinomialCost,
        linear=st.floats(min_value=0.1, max_value=100.0),
        quadratic=st.floats(min_value=0.1, max_value=200.0),
    ),
    st.builds(
        ExponentialCost,
        scale=st.floats(min_value=0.1, max_value=50.0),
        shape=st.floats(min_value=0.5, max_value=5.0),
    ),
    st.builds(
        LogarithmicCost,
        scale=st.floats(min_value=0.1, max_value=100.0),
        saturation=st.floats(min_value=0.5, max_value=0.98),
    ),
)


def confidences():
    return st.floats(min_value=0.0, max_value=1.0)


@settings(max_examples=200, deadline=None)
@given(MODELS, confidences(), confidences())
def test_increment_cost_non_negative(model, a, b):
    low, high = sorted((a, b))
    assert model.increment_cost(low, high) >= 0.0


@settings(max_examples=200, deadline=None)
@given(MODELS, confidences(), confidences(), confidences())
def test_increment_cost_additive(model, a, b, c):
    """cost(a→c) = cost(a→b) + cost(b→c) for a ≤ b ≤ c."""
    low, mid, high = sorted((a, b, c))
    direct = model.increment_cost(low, high)
    split = model.increment_cost(low, mid) + model.increment_cost(mid, high)
    assert abs(direct - split) < 1e-6 * max(1.0, direct)


@settings(max_examples=200, deadline=None)
@given(MODELS, confidences(), confidences(), confidences())
def test_increment_cost_monotone_in_target(model, start, a, b):
    lo_target, hi_target = sorted((a, b))
    start = min(start, lo_target)
    assert model.increment_cost(start, hi_target) >= model.increment_cost(
        start, lo_target
    ) - 1e-12


@settings(max_examples=200, deadline=None)
@given(MODELS, confidences())
def test_zero_increment_costs_nothing(model, p):
    assert model.increment_cost(p, p) == 0.0


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_sampler_produces_valid_models(seed):
    model = CostModelSampler().sample(random.Random(seed))
    assert 0.0 < model.max_confidence <= 1.0
    cap = model.max_confidence
    assert model.increment_cost(0.0, cap) > 0.0
    # Cumulative is non-decreasing on a coarse grid.
    grid = [cap * i / 10 for i in range(11)]
    values = [model.cumulative(p) for p in grid]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
