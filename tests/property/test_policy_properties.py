"""Property-based tests for the policy store and enforcement."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.rows import AnnotatedTuple, ResultSet
from repro.lineage import var
from repro.policy import PolicyEvaluator, PolicyStore
from repro.storage import Schema, TEXT, TupleId

ROLES = ["intern", "analyst", "manager", "director"]
PURPOSES = ["ops", "ops.reporting", "ops.reporting.daily", "audit"]


def stores():
    @st.composite
    def build(draw):
        store = PolicyStore(default_threshold=0.0)
        # Linear role chain: each role inherits the previous one.
        for index, role in enumerate(ROLES):
            store.add_role(role, inherits=ROLES[index - 1 : index] if index else [])
        parents = {"ops.reporting": "ops", "ops.reporting.daily": "ops.reporting"}
        for purpose in PURPOSES:
            store.add_purpose(purpose, parent=parents.get(purpose))
        store.add_user("u", roles=[draw(st.sampled_from(ROLES))])
        policy_count = draw(st.integers(min_value=0, max_value=6))
        for _ in range(policy_count):
            store.add_policy(
                draw(st.sampled_from(ROLES)),
                draw(st.sampled_from(PURPOSES)),
                draw(
                    st.floats(min_value=0.0, max_value=1.0).map(
                        lambda x: round(x, 3)
                    )
                ),
            )
        return store

    return build()


@settings(max_examples=80, deadline=None)
@given(stores(), st.sampled_from(PURPOSES))
def test_threshold_is_max_of_applicable(store, purpose):
    applicable = store.applicable_policies("u", purpose)
    threshold = store.threshold_for("u", purpose)
    if applicable:
        assert threshold == max(policy.threshold for policy in applicable)
    else:
        assert threshold == 0.0


@settings(max_examples=80, deadline=None)
@given(stores(), st.sampled_from(PURPOSES))
def test_senior_roles_are_at_least_as_restricted(store, purpose):
    """Granting a senior role can only add applicable policies."""
    store.add_user("junior", roles=["intern"])
    store.add_user("senior", roles=["director"])
    junior = store.threshold_for("junior", purpose)
    senior = store.threshold_for("senior", purpose)
    assert senior >= junior  # director inherits everything intern has


@settings(max_examples=80, deadline=None)
@given(stores(), st.sampled_from(["ops.reporting.daily"]))
def test_child_purpose_at_least_as_restricted_as_parent(store, purpose):
    parent_threshold = store.threshold_for("u", "ops.reporting")
    child_threshold = store.threshold_for("u", purpose)
    assert child_threshold >= parent_threshold


def result_sets():
    @st.composite
    def build(draw):
        confidences = draw(
            st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=12)
        )
        rows = []
        probabilities = {}
        for index, confidence in enumerate(confidences):
            tid = TupleId("t", index)
            rows.append(AnnotatedTuple((f"r{index}",), var(tid)))
            probabilities[tid] = confidence
        return ResultSet(Schema.of(("label", TEXT)), rows), probabilities

    return build()


@settings(max_examples=80, deadline=None)
@given(result_sets(), st.floats(min_value=0.0, max_value=1.0))
def test_partition_is_exact(result_and_probs, threshold):
    result, probabilities = result_and_probs
    outcome = PolicyEvaluator.apply_threshold(result, probabilities, threshold)
    assert len(outcome.released) + len(outcome.withheld) == len(result)
    for _row, confidence in outcome.released:
        assert confidence > threshold
    for _row, confidence in outcome.withheld:
        assert confidence <= threshold


@settings(max_examples=80, deadline=None)
@given(
    result_sets(),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_release_fraction_antitone_in_threshold(result_and_probs, a, b):
    result, probabilities = result_and_probs
    low, high = sorted((a, b))
    lax = PolicyEvaluator.apply_threshold(result, probabilities, low)
    strict = PolicyEvaluator.apply_threshold(result, probabilities, high)
    assert len(strict.released) <= len(lax.released)


@settings(max_examples=80, deadline=None)
@given(result_sets(), st.floats(min_value=0.0, max_value=1.0))
def test_shortfall_consistent_with_satisfies(result_and_probs, threshold):
    result, probabilities = result_and_probs
    outcome = PolicyEvaluator.apply_threshold(result, probabilities, threshold)
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        if outcome.satisfies(fraction):
            assert outcome.shortfall(fraction) == 0
        else:
            assert outcome.shortfall(fraction) > 0
