"""Shared fixtures: small databases, increment problems, chaos tooling."""

from __future__ import annotations

import pytest

from repro.cost import LinearCost
from repro.increment import IncrementProblem
from repro.lineage import lineage_and, lineage_or, var
from repro.server.faults import NetworkFaultInjector, NetworkFaultSpec
from repro.storage import Database, REAL, Schema, TEXT
from repro.workload import venture_capital_database


@pytest.fixture
def empty_db() -> Database:
    return Database("test")


@pytest.fixture
def network_fault():
    """Factory for armed, seeded network fault injectors (chaos tests).

    Usage: ``injector = network_fault("server.write", "torn_frame",
    occurrence=2, seed=7)``.  Occurrence 1 is the hello exchange; chaos
    tests usually target occurrence 2+ so the handshake survives.
    """

    def arm(
        point: str, mode: str, occurrence: int = 1, seed: int = 0, **kwargs
    ) -> NetworkFaultInjector:
        return NetworkFaultInjector(
            NetworkFaultSpec(
                point=point, mode=mode, occurrence=occurrence, seed=seed, **kwargs
            )
        )

    return arm


@pytest.fixture
def proposal_db() -> Database:
    """Two tables mirroring the paper's schemas, with mixed confidences."""
    db = Database("test")
    proposal = db.create_table(
        "Proposal",
        Schema.of(("Company", TEXT), ("Proposal", TEXT), ("Funding", REAL)),
    )
    rows = [
        ("A", "p1", 1.5, 0.2),
        ("B", "p2", 0.8, 0.3),
        ("B", "p3", 0.9, 0.4),
        ("C", "p4", 1.2, 0.5),
        ("D", "p5", 0.6, 0.6),
    ]
    for company, text, funding, confidence in rows:
        proposal.insert(
            [company, text, funding],
            confidence=confidence,
            cost_model=LinearCost(100.0),
        )
    info = db.create_table(
        "CompanyInfo", Schema.of(("Company", TEXT), ("Income", REAL))
    )
    for company, income, confidence in [
        ("A", 1.0, 0.05),
        ("B", 2.0, 0.10),
        ("C", 3.0, 0.15),
        ("E", 4.0, 0.20),
    ]:
        info.insert(
            [company, income],
            confidence=confidence,
            cost_model=LinearCost(100.0),
        )
    return db


@pytest.fixture
def running_example():
    """The paper's §3.1 scenario (database + policies + notable tuples)."""
    return venture_capital_database()


@pytest.fixture
def paper_increment_problem() -> tuple[IncrementProblem, dict]:
    """The §3.1 increment instance: F = (p02 + p03 − p02·p03)·p13, β=0.06.

    Cost structure: +0.1 on tuple "02" costs 100, on "03" costs 10, and on
    "13" costs 10.
    """
    db = Database("paper")
    proposal = db.create_table(
        "Proposal",
        Schema.of(("Company", TEXT), ("Proposal", TEXT), ("Funding", REAL)),
    )
    t02 = proposal.insert(
        ["B", "p2", 0.8], confidence=0.3, cost_model=LinearCost(1000.0)
    )
    t03 = proposal.insert(
        ["B", "p3", 0.9], confidence=0.4, cost_model=LinearCost(100.0)
    )
    info = db.create_table(
        "CompanyInfo", Schema.of(("Company", TEXT), ("Income", REAL))
    )
    t13 = info.insert(
        ["B", 2.0], confidence=0.1, cost_model=LinearCost(100.0)
    )
    lineage = lineage_and(lineage_or(var(t02), var(t03)), var(t13))
    problem = IncrementProblem.from_results(
        [lineage], db, threshold=0.06, required_count=1, delta=0.1
    )
    return problem, {"db": db, "t02": t02, "t03": t03, "t13": t13}
