"""Unit tests for IN/NOT IN subqueries (lineage-aware semi-/anti-joins)."""

import pytest

from repro.errors import PlanError
from repro.lineage import And, Not, Var
from repro.sql import execute_sql, plan_sql, run_sql
from repro.storage import Database


@pytest.fixture
def db() -> Database:
    database = Database()
    execute_sql(database, "CREATE TABLE emp (name TEXT, dept TEXT)")
    execute_sql(
        database,
        "INSERT INTO emp VALUES ('ann','eng'), ('bob','ops'), ('cat','eng') "
        "WITH CONFIDENCE 0.8",
    )
    execute_sql(database, "CREATE TABLE good (dept TEXT)")
    execute_sql(
        database, "INSERT INTO good VALUES ('eng') WITH CONFIDENCE 0.5"
    )
    return database


class TestSemiJoinSemantics:
    def test_in_filters_and_conjoins_lineage(self, db):
        result = run_sql(
            db, "SELECT name FROM emp WHERE dept IN (SELECT dept FROM good)"
        )
        assert sorted(row.values[0] for row in result) == ["ann", "cat"]
        for row, confidence in result.with_confidences(db):
            assert isinstance(row.lineage, And)
            assert confidence == pytest.approx(0.8 * 0.5)

    def test_not_in_keeps_all_candidates_with_negated_lineage(self, db):
        result = run_sql(
            db,
            "SELECT name FROM emp WHERE dept NOT IN (SELECT dept FROM good)",
        )
        by_name = {
            row.values[0]: (row, confidence)
            for row, confidence in result.with_confidences(db)
        }
        # bob never matches: plain lineage, full confidence.
        assert isinstance(by_name["bob"][0].lineage, Var)
        assert by_name["bob"][1] == pytest.approx(0.8)
        # ann matches an uncertain subquery row: retained with AND NOT.
        assert by_name["ann"][1] == pytest.approx(0.8 * 0.5)
        assert any(
            isinstance(child, Not) for child in by_name["ann"][0].lineage.children
        )

    def test_not_in_with_certain_match_gives_zero_confidence(self, db):
        execute_sql(db, "UPDATE good SET dept = 'eng' WITH CONFIDENCE 1.0")
        result = run_sql(
            db,
            "SELECT name FROM emp WHERE dept NOT IN (SELECT dept FROM good)",
        )
        by_name = dict(
            (row.values[0], confidence)
            for row, confidence in result.with_confidences(db)
        )
        assert by_name["ann"] == pytest.approx(0.0)
        assert by_name["bob"] == pytest.approx(0.8)

    def test_duplicate_subquery_rows_merge_with_or(self, db):
        execute_sql(db, "INSERT INTO good VALUES ('eng') WITH CONFIDENCE 0.5")
        result = run_sql(
            db, "SELECT name FROM emp WHERE dept IN (SELECT dept FROM good)"
        )
        # P(match) = 0.8 * (1 - 0.5*0.5) = 0.8 * 0.75
        for _row, confidence in result.with_confidences(db):
            assert confidence == pytest.approx(0.8 * 0.75)

    def test_null_probe_never_matches(self, db):
        execute_sql(db, "INSERT INTO emp (name) VALUES ('ghost')")
        inn = run_sql(
            db, "SELECT name FROM emp WHERE dept IN (SELECT dept FROM good)"
        )
        assert all(row.values[0] != "ghost" for row in inn)
        notin = run_sql(
            db, "SELECT name FROM emp WHERE dept NOT IN (SELECT dept FROM good)"
        )
        assert all(row.values[0] != "ghost" for row in notin)

    def test_null_in_subquery_poisons_not_in(self, db):
        execute_sql(db, "INSERT INTO good VALUES (NULL)")
        result = run_sql(
            db,
            "SELECT name FROM emp WHERE dept NOT IN (SELECT dept FROM good)",
        )
        assert len(result) == 0  # SQL three-valued semantics

    def test_empty_subquery(self, db):
        execute_sql(db, "DELETE FROM good")
        inn = run_sql(
            db, "SELECT name FROM emp WHERE dept IN (SELECT dept FROM good)"
        )
        assert len(inn) == 0
        notin = run_sql(
            db, "SELECT name FROM emp WHERE dept NOT IN (SELECT dept FROM good)"
        )
        assert len(notin) == 3

    def test_combines_with_other_conjuncts(self, db):
        result = run_sql(
            db,
            "SELECT name FROM emp WHERE dept IN (SELECT dept FROM good) "
            "AND name = 'ann'",
        )
        assert result.values() == [("ann",)]

    def test_subquery_with_where(self, db):
        result = run_sql(
            db,
            "SELECT name FROM emp WHERE dept IN "
            "(SELECT dept FROM good WHERE dept <> 'eng')",
        )
        assert len(result) == 0


class TestSemiJoinValidation:
    def test_multi_column_subquery_rejected(self, db):
        with pytest.raises(PlanError):
            plan_sql(
                db,
                "SELECT name FROM emp WHERE dept IN "
                "(SELECT dept, 1 AS extra FROM good)",
            )

    def test_type_mismatch_rejected(self, db):
        execute_sql(db, "CREATE TABLE nums (v REAL)")
        with pytest.raises(PlanError):
            plan_sql(db, "SELECT name FROM emp WHERE dept IN (SELECT v FROM nums)")

    def test_nested_under_or_rejected(self, db):
        with pytest.raises(PlanError):
            plan_sql(
                db,
                "SELECT name FROM emp WHERE name = 'x' OR "
                "dept IN (SELECT dept FROM good)",
            )

    def test_in_select_list_rejected(self, db):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_sql(
                db,
                "SELECT dept IN (SELECT dept FROM good) FROM emp",
            )

    def test_optimizer_preserves_results(self, db):
        sql = (
            "SELECT name FROM emp WHERE dept IN (SELECT dept FROM good) "
            "AND name <> 'cat'"
        )
        assert run_sql(db, sql).values() == run_sql(db, sql, optimized=False).values()

    def test_explain_shows_semi_join(self, db):
        text = plan_sql(
            db, "SELECT name FROM emp WHERE dept IN (SELECT dept FROM good)"
        ).explain()
        assert "SemiJoin" in text
