"""Unit tests for the observability toolkit (repro.obs)."""

import io
import json
import logging

import pytest

from repro.obs import (
    InMemorySink,
    JsonLinesSink,
    LoggingSink,
    MetricsRegistry,
    ProfileReport,
    TIMING_BUCKETS,
    Tracer,
    configure_logging,
    get_tracer,
    metrics_diff,
    solver_run,
)
from repro.obs.tracer import _NOOP_SPAN


class TestTracer:
    def test_disabled_tracer_returns_shared_noop(self):
        tracer = Tracer()
        assert not tracer.enabled
        first = tracer.span("anything", key="value")
        second = tracer.span("other")
        assert first is second is _NOOP_SPAN
        # The no-op supports the full span surface without side effects.
        with first as span:
            span.set_attribute("x", 1)
            span.add_event("e", detail=2)

    def test_span_nesting_records_parent_ids(self):
        tracer = Tracer()
        sink = tracer.add_sink(InMemorySink())
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert inner.parent_id == middle.span_id
        assert middle.parent_id == outer.span_id
        assert outer.parent_id is None
        # One trace id across the tree.
        assert {span.trace_id for span in sink.spans} == {outer.trace_id}

    def test_sink_receives_children_before_parents(self):
        tracer = Tracer()
        sink = tracer.add_sink(InMemorySink())
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        assert [span.name for span in sink.spans] == ["child", "parent"]
        # start_index preserves start order for reordering consumers.
        child, parent = sink.spans
        assert parent.start_index < child.start_index

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        sink = tracer.add_sink(InMemorySink())
        with tracer.span("root") as root:
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        first, second = sink.find("first")[0], sink.find("second")[0]
        assert first.parent_id == second.parent_id == root.span_id

    def test_current_span_tracks_innermost(self):
        tracer = Tracer(sinks=[InMemorySink()])
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None

    def test_exception_marks_span_error_and_still_exports(self):
        tracer = Tracer()
        sink = tracer.add_sink(InMemorySink())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = sink.spans
        assert span.status == "error"
        assert span.duration_seconds is not None

    def test_attributes_and_events(self):
        tracer = Tracer(sinks=[InMemorySink()])
        with tracer.span("op", preset=1) as span:
            span.set_attribute("later", 2)
            span.add_event("checkpoint", progress=0.5)
        assert span.attributes == {"preset": 1, "later": 2}
        (event,) = span.events
        assert event.name == "checkpoint"
        assert event.attributes == {"progress": 0.5}
        record = span.to_dict()
        assert record["attributes"]["preset"] == 1
        assert record["events"][0]["name"] == "checkpoint"

    def test_capture_attaches_and_detaches(self):
        tracer = Tracer()
        with tracer.capture() as sink:
            assert tracer.enabled
            with tracer.span("seen"):
                pass
        assert not tracer.enabled
        with tracer.span("unseen"):
            pass
        assert [span.name for span in sink.spans] == ["seen"]

    def test_remove_sink(self):
        tracer = Tracer()
        sink = tracer.add_sink(InMemorySink())
        tracer.remove_sink(sink)
        assert not tracer.enabled
        tracer.remove_sink(sink)  # idempotent

    def test_global_tracer_exists(self):
        assert isinstance(get_tracer(), Tracer)

    def test_duration_uses_the_monotonic_clock(self, monkeypatch):
        """A wall-clock step backwards mid-span (NTP adjustment) must not
        produce a negative duration — durations come from monotonic_ns."""
        import time as time_module

        tracer = Tracer(sinks=[InMemorySink()])
        wall = iter([1_000_000.0, 999_000.0])  # time.time jumps backwards
        monkeypatch.setattr(time_module, "time", lambda: next(wall, 999_000.0))
        with tracer.span("adjusted") as span:
            pass
        assert span.duration_seconds is not None
        assert span.duration_seconds >= 0.0

    def test_span_records_wall_start_but_monotonic_duration(self):
        tracer = Tracer(sinks=[InMemorySink()])
        with tracer.span("timed") as span:
            pass
        # start_time is a wall-clock timestamp for log correlation...
        assert span.start_time == pytest.approx(__import__("time").time(), abs=60)
        # ...while the duration was measured in nanoseconds internally.
        assert isinstance(span._started_ns, int)


class TestSinks:
    def test_in_memory_ring_buffer_evicts_oldest(self):
        tracer = Tracer()
        sink = tracer.add_sink(InMemorySink(capacity=2))
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [span.name for span in sink.spans] == ["b", "c"]
        assert len(sink) == 2
        sink.clear()
        assert len(sink) == 0

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        sink = tracer.add_sink(JsonLinesSink(str(path)))
        with tracer.span("parent", user="alice"):
            with tracer.span("child") as child:
                child.add_event("tick", n=1)
        sink.close()
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [record["name"] for record in records] == ["child", "parent"]
        child_rec, parent_rec = records
        assert child_rec["parent_id"] == parent_rec["span_id"]
        assert parent_rec["attributes"] == {"user": "alice"}
        assert child_rec["events"][0]["name"] == "tick"
        assert all(record["duration_seconds"] >= 0 for record in records)

    def test_jsonl_accepts_open_handle(self):
        buffer = io.StringIO()
        tracer = Tracer(sinks=[JsonLinesSink(buffer)])
        with tracer.span("op"):
            pass
        assert json.loads(buffer.getvalue())["name"] == "op"

    def test_logging_sink_bridges_to_stdlib(self, caplog):
        tracer = Tracer(sinks=[LoggingSink("repro.trace.test", logging.INFO)])
        with caplog.at_level(logging.INFO, logger="repro.trace.test"):
            with tracer.span("bridged"):
                pass
        assert any("bridged" in record.message for record in caplog.records)


class TestMetrics:
    def test_counter_semantics(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        # get-or-create returns the same instrument.
        assert registry.counter("c") is counter

    def test_gauge_semantics(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.snapshot() == 7

    def test_histogram_buckets_and_summary(self):
        histogram = MetricsRegistry().histogram("h", buckets=[1.0, 10.0])
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(55.5)
        assert snap["min"] == 0.5
        assert snap["max"] == 50.0
        assert snap["mean"] == pytest.approx(18.5)
        assert snap["buckets"] == {"le_1": 1, "le_10": 1, "overflow": 1}

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(TypeError):
            registry.gauge("name")

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("b").observe(1.0)
        snap = registry.snapshot()
        assert snap["a"] == 1
        assert snap["b"]["count"] == 1
        assert registry.names() == ["a", "b"]
        registry.reset()
        assert registry.names() == []

    def test_percentile_empty_histogram_is_none(self):
        histogram = MetricsRegistry().histogram("empty")
        assert histogram.percentile(50.0) is None

    def test_percentile_range_validation(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(-1.0)
        with pytest.raises(ValueError):
            histogram.percentile(101.0)

    def test_percentile_exact_on_bucket_boundary(self):
        """The estimate is exact when the rank lands on a bucket edge."""
        histogram = MetricsRegistry().histogram("h", buckets=[10.0, 20.0])
        for value in (10.0, 10.0, 20.0, 20.0):
            histogram.observe(value)
        # Rank 2 of 4 exhausts the first bucket exactly -> its upper bound.
        assert histogram.percentile(50.0) == pytest.approx(10.0)
        assert histogram.percentile(100.0) == pytest.approx(20.0)

    def test_percentile_error_bounded_by_bucket_width(self):
        """Interpolated estimates stay within the containing bucket, so
        the error against exact quantiles is at most one bucket width."""
        import statistics as stats

        histogram = MetricsRegistry().histogram(
            "h", buckets=[5.0, 10.0, 15.0, 20.0, 25.0]
        )
        values = [0.5 + (i % 25) for i in range(500)]  # uniform over (0, 25)
        for value in values:
            histogram.observe(value)
        exact = stats.quantiles(values, n=100)
        for p in (50.0, 95.0, 99.0):
            estimate = histogram.percentile(p)
            assert abs(estimate - exact[int(p) - 1]) <= 5.0  # bucket width

    def test_percentile_clamps_to_observed_min_and_max(self):
        histogram = MetricsRegistry().histogram("h", buckets=[100.0])
        histogram.observe(40.0)
        histogram.observe(60.0)
        # All mass in one wide bucket: interpolation cannot escape [40, 60].
        assert 40.0 <= histogram.percentile(1.0) <= 60.0
        assert 40.0 <= histogram.percentile(99.0) <= 60.0

    def test_percentile_overflow_bucket_interpolates_toward_max(self):
        histogram = MetricsRegistry().histogram("h", buckets=[1.0])
        for value in (0.5, 5.0, 9.0):
            histogram.observe(value)
        estimate = histogram.percentile(99.0)
        assert 1.0 <= estimate <= 9.0

    def test_summary_carries_quantiles(self):
        histogram = MetricsRegistry().histogram("h", buckets=[1.0, 10.0])
        for value in (0.5, 2.0, 8.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["p50"] is not None
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_metrics_diff(self):
        registry = MetricsRegistry()
        registry.counter("moved").inc(3)
        registry.counter("still")
        registry.histogram("timing").observe(1.0)
        before = registry.snapshot()
        registry.counter("moved").inc(2)
        registry.histogram("timing").observe(3.0)
        registry.counter("fresh").inc()
        delta = metrics_diff(before, registry.snapshot())
        assert delta["moved"] == 2
        assert delta["fresh"] == 1
        assert "still" not in delta
        assert delta["timing"] == {"count": 1, "sum": 3.0, "mean": 3.0}


class TestSolverRun:
    class _Stats:
        def __init__(self):
            self.elapsed_seconds = 0.0
            self.completed = True
            self.nodes_explored = 0

    def test_sets_elapsed_and_emits_metrics(self):
        from repro.obs import get_metrics, set_metrics

        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            stats = self._Stats()
            with solver_run("testalg", stats):
                stats.nodes_explored = 7
            assert stats.elapsed_seconds > 0
            snap = registry.snapshot()
            assert snap["solver.testalg.runs"] == 1
            assert snap["solver.testalg.nodes_explored"] == 7
            assert snap["solver.testalg.elapsed_seconds"]["count"] == 1
        finally:
            set_metrics(previous)

    def test_incomplete_run_counter(self):
        from repro.obs import set_metrics

        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            stats = self._Stats()
            with pytest.raises(ValueError):
                with solver_run("failing", stats):
                    stats.completed = False
                    raise ValueError("search exhausted")
            assert stats.elapsed_seconds > 0  # stamped despite the raise
            assert registry.snapshot()["solver.failing.incomplete_runs"] == 1
        finally:
            set_metrics(previous)

    def test_timing_buckets_are_sorted(self):
        assert list(TIMING_BUCKETS) == sorted(TIMING_BUCKETS)


class TestProfileReport:
    def _capture(self):
        tracer = Tracer()
        sink = tracer.add_sink(InMemorySink())
        with tracer.span("root"):
            with tracer.span("stage_a"):
                pass
            with tracer.span("stage_b"):
                with tracer.span("nested"):
                    pass
            with tracer.span("stage_a"):
                pass
        return sink.spans

    def test_stages_aggregate_direct_children(self):
        report = ProfileReport.from_spans(self._capture(), root="root")
        assert list(report.stages) == ["stage_a", "stage_b"]
        assert report.total_seconds > 0
        # Two stage_a spans summed; nested span not counted as a stage.
        assert "nested" not in report.stages
        assert report.unattributed_seconds >= 0
        assert sum(report.stages.values()) <= report.total_seconds + 1e-9

    def test_missing_root_yields_empty_report(self):
        report = ProfileReport.from_spans(self._capture(), root="absent")
        assert report.total_seconds == 0.0
        assert report.stages == {}

    def test_format_mentions_stages_and_metrics(self):
        report = ProfileReport.from_spans(
            self._capture(), root="root", metrics={"solver.greedy.runs": 1}
        )
        text = report.format()
        assert "stage_a" in text
        assert "(unattributed)" in text
        assert "solver.greedy.runs" in text


class TestConfigureLogging:
    def test_idempotent_handler(self):
        stream = io.StringIO()
        logger = configure_logging("DEBUG", stream=stream, logger_name="repro.t1")
        again = configure_logging("INFO", stream=stream, logger_name="repro.t1")
        assert logger is again
        marked = [
            handler
            for handler in logger.handlers
            if getattr(handler, "_repro_obs_handler", False)
        ]
        assert len(marked) == 1
        assert logger.level == logging.INFO

    def test_string_level_and_output(self):
        stream = io.StringIO()
        logger = configure_logging("warning", stream=stream, logger_name="repro.t2")
        logger.warning("observable")
        assert "observable" in stream.getvalue()

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("noisy", logger_name="repro.t3")
