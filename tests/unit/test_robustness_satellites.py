"""Regression tests for the robustness satellites: hardened CSV ingest,
atomic policy-store/CSV persistence, non-fatal trace sinks, and the CLI's
``--data-dir`` / ``recover`` / ``checkpoint`` surface."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import CommandError, CommandShell
from repro.errors import SchemaError
from repro.obs import JsonLinesSink, Tracer, get_metrics
from repro.policy import PolicyStore, load_store, save_store
from repro.storage import Database, RetryPolicy, dump_csv, load_csv
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType


def _table(db: Database | None = None):
    db = db or Database()
    return db.create_table(
        "items",
        Schema(
            [
                Column("name", DataType.TEXT),
                Column("price", DataType.REAL),
                Column("qty", DataType.INTEGER),
            ]
        ),
    )


# -- CSV ingest hardening --------------------------------------------------


class TestCsvIngest:
    def test_bad_integer_names_file_row_and_column(self, tmp_path):
        path = tmp_path / "items.csv"
        path.write_text("name,price,qty\nапельсин,1.0,две\n")
        with pytest.raises(SchemaError) as excinfo:
            load_csv(_table(), path)
        message = str(excinfo.value)
        assert "items.csv" in message
        assert "row 2" in message
        assert "'qty'" in message
        assert "две" in message

    def test_bad_real_is_schema_error(self, tmp_path):
        path = tmp_path / "items.csv"
        path.write_text("name,price,qty\napple,cheap,1\n")
        with pytest.raises(SchemaError) as excinfo:
            load_csv(_table(), path)
        assert "row 2" in str(excinfo.value)
        assert "'price'" in str(excinfo.value)

    def test_row_number_counts_from_header(self, tmp_path):
        path = tmp_path / "items.csv"
        path.write_text("name,price,qty\na,1.0,1\nb,2.0,oops\n")
        with pytest.raises(SchemaError) as excinfo:
            load_csv(_table(), path)
        assert "row 3" in str(excinfo.value)

    def test_unparseable_confidence_is_schema_error(self, tmp_path):
        path = tmp_path / "items.csv"
        path.write_text("name,price,qty,__confidence__\na,1.0,1,high\n")
        with pytest.raises(SchemaError) as excinfo:
            load_csv(_table(), path)
        assert "__confidence__" in str(excinfo.value)

    @pytest.mark.parametrize("bad", ["1.5", "-0.1", "2", "1e3"])
    def test_out_of_range_confidence_rejected_at_load(self, tmp_path, bad):
        path = tmp_path / "items.csv"
        path.write_text(f"name,price,qty,__confidence__\na,1.0,1,{bad}\n")
        with pytest.raises(SchemaError) as excinfo:
            load_csv(_table(), path)
        assert "outside [0, 1]" in str(excinfo.value)

    def test_boundary_confidences_still_load(self, tmp_path):
        path = tmp_path / "items.csv"
        path.write_text(
            "name,price,qty,__confidence__\na,1.0,1,0.0\nb,2.0,2,1.0\n"
        )
        table = _table()
        assert load_csv(table, path) == 2
        assert [row.confidence for row in table.scan()] == [0.0, 1.0]

    def test_stream_sources_report_generic_name(self):
        stream = io.StringIO("name,price,qty\na,1.0,nope\n")
        with pytest.raises(SchemaError) as excinfo:
            load_csv(_table(), stream)
        assert "<csv>" in str(excinfo.value)


# -- atomic CSV export -----------------------------------------------------


class TestCsvExport:
    def test_dump_leaves_no_temp_files(self, tmp_path):
        table = _table()
        table.insert(["a", 1.0, 1], confidence=0.5)
        target = tmp_path / "out.csv"
        assert dump_csv(table, target) == 1
        assert [p.name for p in tmp_path.iterdir()] == ["out.csv"]
        assert "__confidence__" in target.read_text()

    def test_failed_dump_preserves_previous_export(self, tmp_path):
        table = _table()
        table.insert(["a", 1.0, 1])
        target = tmp_path / "out.csv"
        dump_csv(table, target)
        before = target.read_text()

        class Boom:
            """A value whose str() raises mid-serialization."""

            def __str__(self) -> str:
                raise RuntimeError("unserializable")

        table._rows[0].values = ("x", Boom(), 1)  # sabotage row storage
        with pytest.raises(RuntimeError):
            dump_csv(table, target)
        assert target.read_text() == before  # old file intact, not torn
        assert [p.name for p in tmp_path.iterdir()] == ["out.csv"]


# -- atomic policy-store persistence ---------------------------------------


class TestPolicyStorePersistence:
    def _store(self) -> PolicyStore:
        store = PolicyStore(default_threshold=0.1)
        store.add_role("Manager")
        store.add_purpose("investment")
        store.add_user("bob", roles=["Manager"])
        store.add_policy("Manager", "investment", 0.06)
        return store

    def test_save_roundtrip_and_no_temp_files(self, tmp_path):
        target = tmp_path / "policies.json"
        save_store(self._store(), target)
        assert [p.name for p in tmp_path.iterdir()] == ["policies.json"]
        restored = load_store(target)
        assert restored.policies()[0].threshold == 0.06

    def test_failed_save_preserves_previous_snapshot(self, tmp_path, monkeypatch):
        target = tmp_path / "policies.json"
        save_store(self._store(), target)
        before = target.read_text()
        monkeypatch.setattr(
            "repro.policy.serialization.store_to_dict",
            lambda _store: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(RuntimeError):
            save_store(self._store(), target)
        assert target.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["policies.json"]


# -- non-fatal trace sinks -------------------------------------------------


class _FailingHandle:
    """A text handle whose writes start failing on demand."""

    def __init__(self) -> None:
        self.failing = False
        self.lines: list[str] = []

    def write(self, text: str) -> None:
        if self.failing:
            raise OSError(28, "No space left on device")
        self.lines.append(text)

    def flush(self) -> None:
        if self.failing:
            raise OSError(28, "No space left on device")


class TestNonFatalSinks:
    def test_sink_errors_do_not_abort_evaluation(self):
        handle = _FailingHandle()
        sink = JsonLinesSink(handle)
        tracer = Tracer()
        tracer.add_sink(sink)
        errors_before = get_metrics().counter("trace.sink_errors").value

        with tracer.span("works"):
            pass
        handle.failing = True
        with tracer.span("dropped"):  # must not raise
            pass
        handle.failing = False
        with tracer.span("works-again"):
            pass

        assert sink.dropped == 1
        assert (
            get_metrics().counter("trace.sink_errors").value
            == errors_before + 1
        )
        names = [json.loads(line)["name"] for line in handle.lines]
        assert names == ["works", "works-again"]

    def test_flush_and_close_swallow_oserror(self):
        handle = _FailingHandle()
        handle.failing = True
        sink = JsonLinesSink(handle)
        sink.flush()  # must not raise
        sink.close()
        assert sink.dropped >= 1

    def test_retry_policy_recovers_transient_sink_failures(self):
        handle = _FailingHandle()
        attempts = {"n": 0}
        original_write = handle.write

        def flaky_write(text: str) -> None:
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise OSError("transient")
            original_write(text)

        handle.write = flaky_write  # type: ignore[method-assign]
        sink = JsonLinesSink(
            handle,
            retry=RetryPolicy(
                attempts=3, base_delay=0.0, sleep=lambda _s: None
            ),
        )
        tracer = Tracer()
        tracer.add_sink(sink)
        with tracer.span("retried"):
            pass
        assert sink.dropped == 0
        assert len(handle.lines) == 1


# -- CLI durability surface ------------------------------------------------


class TestCliDurability:
    def test_data_dir_persists_across_shells(self, tmp_path):
        data_dir = str(tmp_path / "state")
        shell = CommandShell(data_dir=data_dir)
        shell.execute_line("create items name:text, price:real")
        shell.execute_line("sql INSERT INTO items VALUES ('apple', 1.5)")
        shell.close()

        reopened = CommandShell(data_dir=data_dir)
        output = reopened.execute_line("sql SELECT name FROM items")
        assert "apple" in output
        reopened.close()

    def test_recover_command_reports(self, tmp_path):
        data_dir = str(tmp_path / "state")
        shell = CommandShell(data_dir=data_dir)
        shell.execute_line("create items name:text, price:real")
        shell.execute_line("sql INSERT INTO items VALUES ('apple', 1.5)")
        shell.close()

        inspector = CommandShell()
        report = inspector.execute_line(f"recover {data_dir}")
        assert "wal records replayed: 2" in report
        assert "snapshot: none" in report
        inspector.close()

    def test_checkpoint_command(self, tmp_path):
        data_dir = str(tmp_path / "state")
        shell = CommandShell(data_dir=data_dir)
        shell.execute_line("create items name:text, price:real")
        output = shell.execute_line("checkpoint")
        assert "checkpoint written" in output
        report = shell.execute_line("recover")
        assert "snapshot: loaded" in report
        shell.close()

    def test_checkpoint_requires_data_dir(self):
        shell = CommandShell()
        with pytest.raises(CommandError):
            shell.execute_line("checkpoint")

    def test_recover_requires_target(self):
        shell = CommandShell()
        with pytest.raises(CommandError):
            shell.execute_line("recover")

    def test_main_accepts_data_dir_flag(self, tmp_path, capsys):
        from repro.cli import main

        data_dir = str(tmp_path / "state")
        status = main(
            [
                "--data-dir",
                data_dir,
                "-c",
                "create items name:text, price:real",
                "sql INSERT INTO items VALUES ('pear', 2.0)",
            ]
        )
        assert status == 0
        status = main(
            ["--data-dir", data_dir, "-c", "sql SELECT name FROM items"]
        )
        assert status == 0
        assert "pear" in capsys.readouterr().out
