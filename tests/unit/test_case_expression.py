"""Unit tests for CASE WHEN expressions (algebra + SQL)."""

import pytest

from repro.algebra import CaseExpression, col, lit
from repro.errors import BindError, SqlSyntaxError
from repro.sql import parse, run_sql
from repro.storage import Database, REAL, Schema, TEXT


@pytest.fixture
def db() -> Database:
    database = Database()
    table = database.create_table(
        "t", Schema.of(("name", TEXT), ("score", REAL))
    )
    for name, score in [("a", 95.0), ("b", 72.0), ("c", 45.0), ("d", None)]:
        table.insert([name, score])
    return database


SCHEMA = Schema.of(("name", TEXT), ("score", REAL))


class TestCaseExpressionDirect:
    def test_first_true_branch_wins(self):
        case = CaseExpression(
            [
                (col("score") >= lit(90.0), lit("A")),
                (col("score") >= lit(60.0), lit("B")),
            ],
            lit("C"),
        )
        bound = case.bind(SCHEMA)
        assert bound.evaluate(("x", 95.0)) == "A"
        assert bound.evaluate(("x", 72.0)) == "B"
        assert bound.evaluate(("x", 10.0)) == "C"

    def test_null_condition_skips_branch(self):
        case = CaseExpression(
            [(col("score") >= lit(90.0), lit("A"))], lit("other")
        )
        bound = case.bind(SCHEMA)
        # NULL comparison is not TRUE: falls through to ELSE.
        assert bound.evaluate(("x", None)) == "other"

    def test_missing_else_yields_null(self):
        case = CaseExpression([(col("score") > lit(90.0), lit("A"))])
        assert case.bind(SCHEMA).evaluate(("x", 10.0)) is None

    def test_numeric_branches_widen(self):
        case = CaseExpression(
            [(col("score") > lit(50.0), lit(1))], lit(0.5)
        )
        bound = case.bind(SCHEMA)
        assert bound.dtype.value == "REAL"
        assert bound.evaluate(("x", 60.0)) == 1.0

    def test_mixed_branch_types_rejected(self):
        case = CaseExpression(
            [(col("score") > lit(50.0), lit("text"))], lit(1)
        )
        with pytest.raises(BindError):
            case.bind(SCHEMA)

    def test_null_branches_are_polymorphic(self):
        case = CaseExpression(
            [(col("score") > lit(50.0), lit(None))], lit(3)
        )
        bound = case.bind(SCHEMA)
        assert bound.evaluate(("x", 60.0)) is None
        assert bound.evaluate(("x", 10.0)) == 3

    def test_non_boolean_condition_rejected(self):
        case = CaseExpression([(col("score"), lit(1))])
        with pytest.raises(BindError):
            case.bind(SCHEMA)

    def test_empty_whens_rejected(self):
        with pytest.raises(BindError):
            CaseExpression([])

    def test_references_cover_all_branches(self):
        case = CaseExpression(
            [(col("score") > lit(1.0), col("name"))], col("t.other")
        )
        assert case.references() == {
            (None, "score"),
            (None, "name"),
            ("t", "other"),
        }


class TestCaseInSql:
    def test_projection(self, db):
        result = run_sql(
            db,
            "SELECT name, CASE WHEN score >= 90 THEN 'A' "
            "WHEN score >= 60 THEN 'B' ELSE 'C' END AS grade "
            "FROM t ORDER BY name",
        )
        assert result.values() == [
            ("a", "A"),
            ("b", "B"),
            ("c", "C"),
            ("d", "C"),
        ]

    def test_in_where_clause(self, db):
        result = run_sql(
            db,
            "SELECT name FROM t WHERE "
            "CASE WHEN score IS NULL THEN 0.0 ELSE score END > 50",
        )
        assert sorted(row.values[0] for row in result) == ["a", "b"]

    def test_group_by_case_expression(self, db):
        result = run_sql(
            db,
            "SELECT CASE WHEN score > 50 THEN 1 ELSE 0 END AS hit, COUNT(*) "
            "FROM t GROUP BY CASE WHEN score > 50 THEN 1 ELSE 0 END",
        )
        assert sorted(result.values()) == [(0, 2), (1, 2)]

    def test_case_inside_aggregate(self, db):
        result = run_sql(
            db,
            "SELECT SUM(CASE WHEN score > 50 THEN 1 ELSE 0 END) FROM t",
        )
        assert result.rows[0].values == (2,)

    def test_aggregate_inside_case(self, db):
        result = run_sql(
            db,
            "SELECT CASE WHEN COUNT(*) > 3 THEN 'many' ELSE 'few' END FROM t",
        )
        assert result.rows[0].values == ("many",)

    def test_nested_case(self, db):
        result = run_sql(
            db,
            "SELECT CASE WHEN score IS NULL THEN 'none' ELSE "
            "CASE WHEN score > 50 THEN 'high' ELSE 'low' END END "
            "FROM t ORDER BY name",
        )
        assert [row.values[0] for row in result] == [
            "high",
            "high",
            "low",
            "none",
        ]

    def test_case_without_when_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT CASE ELSE 1 END FROM t")

    def test_case_missing_end_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT CASE WHEN a = 1 THEN 2 FROM t")
