"""Batch expression kernels: `evaluate_batch` matches row-at-a-time
`evaluate` element-wise, including NULL handling, error behaviour, and the
generic fallback for expressions without a dedicated kernel."""

from __future__ import annotations

import pytest

from repro.algebra import col, lit
from repro.algebra.expressions import (
    Arithmetic,
    Between,
    CaseExpression,
    Comparison,
    FunctionCall,
    InList,
    IsNull,
    Like,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Negate,
)
from repro.errors import ExecutionError
from repro.storage import Schema
from repro.storage.types import BOOLEAN, INTEGER, REAL, TEXT

SCHEMA = Schema.of(
    ("name", TEXT), ("qty", INTEGER), ("price", REAL), ("active", BOOLEAN),
    table="items",
)

# Column-major data with NULLs sprinkled through every column.
COLUMNS = (
    ["widget", "gadget", None, "gizmo", "widget"],
    [3, None, 7, 0, -2],
    [2.5, 0.0, None, 4.0, 1.5],
    [True, False, None, True, False],
)
COUNT = 5
ROWS = list(zip(*COLUMNS))


def batch_equals_scalar(expression):
    bound = expression.bind(SCHEMA)
    batch = bound.evaluate_batch(COLUMNS, COUNT)
    scalar = [bound.evaluate(row) for row in ROWS]
    assert batch == scalar
    return bound


@pytest.mark.parametrize(
    "expression",
    [
        lit(42),
        lit(None),
        lit("x"),
        col("name"),
        col("qty"),
        Arithmetic("+", col("qty"), lit(1)),
        Arithmetic("*", col("price"), col("qty")),
        Arithmetic("-", col("qty"), col("price")),
        Arithmetic("+", col("name"), lit("!")),  # TEXT concat
        Arithmetic("+", col("qty"), lit(None)),  # NULL literal operand
        Negate(col("qty")),
        Comparison("<", col("qty"), lit(5)),
        Comparison("=", col("name"), lit("widget")),
        Comparison("<>", col("price"), lit(2.5)),
        Comparison(">=", col("qty"), col("price")),
        LogicalAnd(
            Comparison(">", col("qty"), lit(0)), col("active")
        ),
        LogicalOr(
            Comparison("<", col("qty"), lit(0)), col("active")
        ),
        LogicalNot(col("active")),
        IsNull(col("price")),
        IsNull(col("price"), negated=True),
        Like(col("name"), "w%"),
        Like(col("name"), "%dge%", negated=True),
        InList(col("name"), [lit("widget"), lit("gizmo")]),
        InList(col("qty"), [lit(3), lit(None)], negated=True),
        Between(col("qty"), lit(0), lit(5)),
        Between(col("price"), col("qty"), lit(10.0), negated=True),
    ],
    ids=lambda e: e.bind(SCHEMA).display,
)
def test_batch_matches_scalar(expression):
    batch_equals_scalar(expression)


def test_empty_batch():
    bound = Comparison("<", col("qty"), lit(5)).bind(SCHEMA)
    assert bound.evaluate_batch(tuple([] for _ in SCHEMA), 0) == []


def test_fallback_expressions_have_no_kernel_but_still_batch():
    case = CaseExpression(
        [(Comparison(">", col("qty"), lit(0)), lit("pos"))], lit("neg")
    )
    function = FunctionCall("ABS", [col("qty")])
    for expression in (case, function):
        bound = expression.bind(SCHEMA)
        assert not bound.has_batch_kernel
        batch = bound.evaluate_batch(COLUMNS, COUNT)
        assert batch == [bound.evaluate(row) for row in ROWS]


def test_kernel_flag_set_for_vectorized_expressions():
    assert Comparison("<", col("qty"), lit(5)).bind(SCHEMA).has_batch_kernel
    assert col("name").bind(SCHEMA).has_batch_kernel
    assert lit(1).bind(SCHEMA).has_batch_kernel


def test_division_by_zero_raises_same_error():
    bound = Arithmetic("/", lit(10), col("qty")).bind(SCHEMA)
    with pytest.raises(ExecutionError) as batch_error:
        bound.evaluate_batch(COLUMNS, COUNT)
    with pytest.raises(ExecutionError) as scalar_error:
        for row in ROWS:
            bound.evaluate(row)
    assert str(batch_error.value) == str(scalar_error.value)


def test_logical_and_masks_guarded_division():
    """`qty <> 0 AND 10/qty > 1` must not divide where the guard failed."""
    guarded = LogicalAnd(
        Comparison("<>", col("qty"), lit(0)),
        Comparison(">", Arithmetic("/", lit(10), col("qty")), lit(1)),
    )
    bound = guarded.bind(SCHEMA)
    batch = bound.evaluate_batch(COLUMNS, COUNT)
    assert batch == [bound.evaluate(row) for row in ROWS]


def test_logical_or_masks_guarded_division():
    guarded = LogicalOr(
        Comparison("=", col("qty"), lit(0)),
        Comparison(">", Arithmetic("/", lit(10), col("qty")), lit(1)),
    )
    bound = guarded.bind(SCHEMA)
    batch = bound.evaluate_batch(COLUMNS, COUNT)
    assert batch == [bound.evaluate(row) for row in ROWS]


def test_columnref_batch_aliases_input_column():
    """ColumnRef returns the input list itself — callers must not mutate."""
    bound = col("qty").bind(SCHEMA)
    assert bound.evaluate_batch(COLUMNS, COUNT) is COLUMNS[1]
