"""Unit tests for SQL views."""

import pytest

from repro.errors import (
    DuplicateTableError,
    PlanError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.sql import execute_sql, run_sql
from repro.storage import Database


@pytest.fixture
def db() -> Database:
    database = Database()
    execute_sql(database, "CREATE TABLE sales (region TEXT, amt REAL)")
    execute_sql(
        database,
        "INSERT INTO sales VALUES ('east', 10.0), ('east', 20.0), "
        "('west', 5.0) WITH CONFIDENCE 0.8",
    )
    execute_sql(
        database,
        "CREATE VIEW east_sales AS SELECT region, amt FROM sales "
        "WHERE region = 'east'",
    )
    return database


class TestViewBasics:
    def test_select_through_view(self, db):
        result = run_sql(db, "SELECT amt FROM east_sales ORDER BY amt")
        assert result.values() == [(10.0,), (20.0,)]

    def test_view_preserves_lineage_confidence(self, db):
        result = run_sql(db, "SELECT amt FROM east_sales")
        assert result.confidences(db) == [0.8, 0.8]

    def test_view_columns_qualified_by_view_name(self, db):
        result = run_sql(db, "SELECT east_sales.amt FROM east_sales")
        assert len(result) == 2

    def test_view_with_alias(self, db):
        result = run_sql(db, "SELECT e.amt FROM east_sales e WHERE e.amt > 15")
        assert result.values() == [(20.0,)]

    def test_view_reflects_base_table_changes(self, db):
        execute_sql(db, "INSERT INTO sales VALUES ('east', 99.0)")
        result = run_sql(db, "SELECT COUNT(*) FROM east_sales")
        assert result.rows[0].values == (3,)

    def test_view_over_view(self, db):
        execute_sql(
            db, "CREATE VIEW big_east AS SELECT amt FROM east_sales WHERE amt > 15"
        )
        assert run_sql(db, "SELECT amt FROM big_east").values() == [(20.0,)]

    def test_join_view_with_table(self, db):
        result = run_sql(
            db,
            "SELECT v.amt FROM east_sales v JOIN sales s ON v.amt = s.amt",
        )
        assert sorted(result.values()) == [(10.0,), (20.0,)]

    def test_aggregate_over_view(self, db):
        result = run_sql(db, "SELECT SUM(amt) FROM east_sales")
        assert result.rows[0].values == (30.0,)


class TestViewCatalog:
    def test_duplicate_name_rejected(self, db):
        with pytest.raises(DuplicateTableError):
            execute_sql(db, "CREATE VIEW sales AS SELECT 1 FROM sales")
        with pytest.raises(DuplicateTableError):
            execute_sql(
                db, "CREATE VIEW east_sales AS SELECT region FROM sales"
            )

    def test_invalid_definition_not_registered(self, db):
        with pytest.raises(UnknownColumnError):
            execute_sql(db, "CREATE VIEW bad AS SELECT nope FROM sales")
        assert db.view_definition("bad") is None

    def test_drop_view(self, db):
        execute_sql(db, "DROP VIEW east_sales")
        with pytest.raises(UnknownTableError):
            run_sql(db, "SELECT * FROM east_sales")

    def test_drop_unknown_view(self, db):
        with pytest.raises(UnknownTableError):
            execute_sql(db, "DROP VIEW missing")

    def test_drop_table_does_not_drop_view(self, db):
        with pytest.raises(UnknownTableError):
            execute_sql(db, "DROP TABLE east_sales")

    def test_view_names_listed(self, db):
        assert db.view_names() == ["east_sales"]

    def test_definition_text_stored(self, db):
        definition = db.view_definition("East_Sales")
        assert definition is not None
        assert definition.startswith("SELECT region, amt FROM sales")


class TestViewCycles:
    def test_mutual_recursion_detected(self, db):
        # Create a valid view, then re-point its target to form a cycle via
        # direct catalog manipulation (SQL validation would block this).
        db.create_view("v1", "SELECT amt FROM v2")
        db.create_view("v2", "SELECT amt FROM v1")
        with pytest.raises(PlanError) as excinfo:
            run_sql(db, "SELECT * FROM v1")
        assert "cycle" in str(excinfo.value)

    def test_self_reference_detected(self, db):
        db.create_view("loop", "SELECT amt FROM loop")
        with pytest.raises(PlanError):
            run_sql(db, "SELECT * FROM loop")
