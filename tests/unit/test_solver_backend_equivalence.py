"""All four solvers must be engine-agnostic: circuit == tree-walk.

The circuit engine mirrors the closure evaluator's arithmetic operation
for operation, so every probe and every confidence a solver observes is
bit-identical on either backend — and therefore every decision, target,
cost, and satisfied set must match exactly (not approximately).
"""

import pytest

from repro.increment import (
    DncOptions,
    GreedyOptions,
    HeuristicOptions,
    IncrementProblem,
    LocalSearchOptions,
    solve_dnc,
    solve_greedy,
    solve_heuristic,
    solve_local_search,
)
from repro.lineage import CircuitPool, ConfidenceFunction
from repro.workload import WorkloadSpec, generate_problem


def _both_backends(problem: IncrementProblem):
    """The instance rebuilt on the circuit and the tree-walk engines."""
    pool = CircuitPool()
    circuit = IncrementProblem(
        [
            ConfidenceFunction(result.formula, result.label, pool=pool)
            for result in problem.results
        ],
        problem.tuples,
        problem.threshold,
        problem.required_count,
        problem.delta,
    )
    treewalk = IncrementProblem(
        [
            ConfidenceFunction(result.formula, result.label, backend="treewalk")
            for result in problem.results
        ],
        problem.tuples,
        problem.threshold,
        problem.required_count,
        problem.delta,
    )
    assert circuit.circuits is not None
    assert treewalk.circuits is None
    return circuit, treewalk


def _workload(data_size: int, seed: int) -> IncrementProblem:
    spec = WorkloadSpec(
        data_size=data_size,
        tuples_per_result=4,
        threshold=0.5,
        theta=0.5,
        delta=0.15,
    )
    return generate_problem(spec, seed=seed).problem


def _assert_identical(circuit_plan, treewalk_plan):
    assert circuit_plan.targets == treewalk_plan.targets
    assert circuit_plan.total_cost == treewalk_plan.total_cost
    assert circuit_plan.satisfied_results == treewalk_plan.satisfied_results


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_greedy_identical_across_backends(seed):
    circuit, treewalk = _both_backends(_workload(40, seed))
    for options in (
        GreedyOptions(),
        GreedyOptions(two_phase=False, gain_scope="all"),
        GreedyOptions(recompute="full"),
    ):
        _assert_identical(
            solve_greedy(circuit, options), solve_greedy(treewalk, options)
        )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_heuristic_identical_across_backends(seed):
    circuit, treewalk = _both_backends(_workload(8, seed))
    for options in (HeuristicOptions(), HeuristicOptions.naive()):
        _assert_identical(
            solve_heuristic(circuit, options),
            solve_heuristic(treewalk, options),
        )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_dnc_identical_across_backends(seed):
    circuit, treewalk = _both_backends(_workload(60, seed))
    for options in (DncOptions(), DncOptions(allocation="paper")):
        _assert_identical(
            solve_dnc(circuit, options), solve_dnc(treewalk, options)
        )


@pytest.mark.parametrize("seed", [0, 1])
def test_local_search_identical_across_backends(seed):
    circuit, treewalk = _both_backends(_workload(30, seed))
    options = LocalSearchOptions(seed=11, restarts=2, swap_attempts=50)
    _assert_identical(
        solve_local_search(circuit, options),
        solve_local_search(treewalk, options),
    )


def test_search_state_probe_identical_across_backends():
    from repro.increment.problem import SearchState

    circuit, treewalk = _both_backends(_workload(25, 5))
    state_c = SearchState(circuit)
    state_t = SearchState(treewalk)
    assert state_c.confidences == state_t.confidences
    tid = next(iter(circuit.tuples))
    indexes = list(circuit.results_by_tuple[tid])
    target = min(1.0, state_c.value_of(tid) + circuit.delta)
    assert state_c.probe(tid, target, indexes) == state_t.probe(
        tid, target, indexes
    )
    # Probes never commit on either engine.
    assert state_c.confidences == state_t.confidences
    state_c.set_value(tid, target)
    state_t.set_value(tid, target)
    assert state_c.confidences == state_t.confidences
    assert state_c.cost == state_t.cost


class TestUnlimitedBudgetEquivalence:
    """An unexpired budget must not perturb the search.

    Budget checks piggyback on the historical branch-and-bound cadence
    (one counter increment per node), so passing an unlimited
    :class:`Budget` has to reproduce the unbudgeted solver bit for bit —
    same targets, same cost, same satisfied set, same node counts.
    """

    def _assert_same_search(self, unbudgeted, budgeted):
        assert budgeted.targets == unbudgeted.targets
        assert budgeted.total_cost == unbudgeted.total_cost
        assert budgeted.satisfied_results == unbudgeted.satisfied_results
        assert budgeted.algorithm == unbudgeted.algorithm
        assert (
            budgeted.stats.nodes_explored == unbudgeted.stats.nodes_explored
        )
        assert not budgeted.stats.budget_exhausted

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_greedy(self, seed):
        from repro.increment import Budget

        problem = _workload(40, seed)
        for options in (GreedyOptions(), GreedyOptions(recompute="full")):
            self._assert_same_search(
                solve_greedy(problem, options),
                solve_greedy(problem, options, Budget()),
            )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_heuristic(self, seed):
        from repro.increment import Budget

        problem = _workload(8, seed)
        self._assert_same_search(
            solve_heuristic(problem, HeuristicOptions()),
            solve_heuristic(problem, HeuristicOptions(), Budget()),
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_dnc(self, seed):
        from repro.increment import Budget

        problem = _workload(60, seed)
        self._assert_same_search(
            solve_dnc(problem, DncOptions()),
            solve_dnc(problem, DncOptions(), Budget()),
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_local_search(self, seed):
        from repro.increment import Budget

        problem = _workload(30, seed)
        options = LocalSearchOptions(seed=11, restarts=2, swap_attempts=50)
        self._assert_same_search(
            solve_local_search(problem, options),
            solve_local_search(problem, options, Budget()),
        )


def test_mixed_backends_disable_circuit_path():
    base = _workload(10, 0)
    pool = CircuitPool()
    mixed = [
        ConfidenceFunction(result.formula, result.label, pool=pool)
        if index % 2 == 0
        else ConfidenceFunction(result.formula, result.label, backend="treewalk")
        for index, result in enumerate(base.results)
    ]
    problem = IncrementProblem(
        mixed, base.tuples, base.threshold, base.required_count, base.delta
    )
    assert problem.circuits is None  # falls back to the treewalk path


def test_distinct_pools_are_recompiled_into_one():
    base = _workload(10, 1)
    results = [
        ConfidenceFunction(result.formula, result.label)  # private pools
        for result in base.results
    ]
    problem = IncrementProblem(
        results, base.tuples, base.threshold, base.required_count, base.delta
    )
    assert problem.circuits is not None
    assert len({id(problem.pool)}) == 1
    plan = solve_greedy(problem)
    reference = solve_greedy(base)
    assert plan.targets == reference.targets
    assert plan.total_cost == reference.total_cost
