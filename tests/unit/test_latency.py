"""Unit tests for improvement-latency estimation (future-work extension)."""

import pytest

from repro.cost import LinearCost
from repro.errors import IncrementError
from repro.increment import (
    BaseTupleState,
    IncrementPlan,
    IncrementProblem,
    SolverStats,
    VerificationLatencyModel,
    estimate_lead_time,
    solve_heuristic,
)
from repro.lineage import ConfidenceFunction, var
from repro.storage import Database, Schema, TEXT, TupleId

A, B = TupleId("t", 0), TupleId("t", 1)


def plan_for(targets):
    return IncrementPlan(dict(targets), 0.0, (), "test", SolverStats())


def problem_with(initial_a=0.2, initial_b=0.2, rate=100.0):
    states = {
        A: BaseTupleState(A, initial_a, LinearCost(rate)),
        B: BaseTupleState(B, initial_b, LinearCost(rate)),
    }
    results = [ConfidenceFunction(var(A)), ConfidenceFunction(var(B))]
    return IncrementProblem(results, states, 0.9, 2)


class TestLatencyModel:
    def test_duration_components(self):
        model = VerificationLatencyModel(
            dispatch_overhead=2.0, per_confidence_unit=10.0, per_cost_unit=0.1
        )
        # 0.2 -> 0.6 at cost 40: 2 + 10*0.4 + 0.1*40 = 10.0
        assert model.duration(0.2, 0.6, 40.0) == pytest.approx(10.0)

    def test_noop_is_free(self):
        model = VerificationLatencyModel()
        assert model.duration(0.5, 0.5, 0.0) == 0.0
        assert model.duration(0.6, 0.5, 0.0) == 0.0

    def test_negative_coefficients_rejected(self):
        with pytest.raises(IncrementError):
            VerificationLatencyModel(dispatch_overhead=-1.0)


class TestEstimateLeadTime:
    def test_empty_plan(self):
        problem = problem_with()
        estimate = estimate_lead_time(plan_for({}), problem)
        assert estimate.makespan == 0.0
        assert estimate.actions == 0
        assert estimate.critical_tuple is None

    def test_serial_makespan_is_total_work(self):
        problem = problem_with()
        plan = plan_for({A: 0.6, B: 0.4})
        estimate = estimate_lead_time(plan, problem, parallelism=1)
        assert estimate.makespan == pytest.approx(estimate.total_work)
        assert estimate.actions == 2

    def test_parallel_workers_shrink_makespan(self):
        problem = problem_with()
        plan = plan_for({A: 0.6, B: 0.6})
        serial = estimate_lead_time(plan, problem, parallelism=1)
        parallel = estimate_lead_time(plan, problem, parallelism=2)
        assert parallel.makespan < serial.makespan
        assert parallel.makespan >= serial.makespan / 2 - 1e-9

    def test_parallelism_beyond_actions_caps_at_longest(self):
        model = VerificationLatencyModel(
            dispatch_overhead=0.0, per_confidence_unit=10.0, per_cost_unit=0.0
        )
        problem = problem_with()
        plan = plan_for({A: 0.7, B: 0.4})  # durations 5 and 2
        estimate = estimate_lead_time(plan, problem, model, parallelism=8)
        assert estimate.makespan == pytest.approx(5.0)
        assert estimate.critical_tuple == A

    def test_source_can_be_database(self):
        db = Database()
        table = db.create_table("t", Schema.of(("x", TEXT)))
        tid = table.insert(["a"], confidence=0.3, cost_model=LinearCost(100.0))
        estimate = estimate_lead_time(plan_for({tid: 0.5}), db)
        assert estimate.actions == 1
        assert estimate.makespan > 0

    def test_unknown_tuple_rejected(self):
        problem = problem_with()
        stranger = TupleId("other", 9)
        with pytest.raises(IncrementError):
            estimate_lead_time(plan_for({stranger: 0.9}), problem)

    def test_invalid_parallelism(self):
        problem = problem_with()
        with pytest.raises(IncrementError):
            estimate_lead_time(plan_for({}), problem, parallelism=0)

    def test_integrates_with_solver_plan(self):
        problem = problem_with()
        plan = solve_heuristic(problem)
        estimate = estimate_lead_time(plan, problem, parallelism=2)
        assert estimate.actions == 2  # both tuples must rise to 0.9
        assert estimate.makespan > 0


class TestCriticalTuple:
    """The critical tuple is the one whose verification finishes last."""

    def _states(self, count, rate=100.0):
        tids = [TupleId("t", index) for index in range(count)]
        return tids, {
            tid: BaseTupleState(tid, 0.0, LinearCost(rate)) for tid in tids
        }

    def _problem(self, states):
        results = [ConfidenceFunction(var(tid)) for tid in states]
        return IncrementProblem(results, states, 0.9, len(states))

    def _estimate(self, targets, parallelism):
        tids, states = self._states(len(targets))
        model = VerificationLatencyModel(
            dispatch_overhead=0.0, per_confidence_unit=10.0, per_cost_unit=0.0
        )
        plan = plan_for(dict(zip(tids, targets)))
        return (
            tids,
            estimate_lead_time(
                plan, self._problem(states), model, parallelism=parallelism
            ),
        )

    def test_more_workers_than_actions(self):
        # Only as many workers as actions are ever used; the critical
        # tuple is the single longest verification, not an idle worker.
        tids, estimate = self._estimate([0.8, 0.3], parallelism=16)
        assert estimate.makespan == pytest.approx(8.0)
        assert estimate.critical_tuple == tids[0]

    def test_tied_final_loads_name_a_truly_critical_tuple(self):
        # Durations (5, 5, 2) on 2 workers: one worker ends at 7, the
        # other at 5.  The critical tuple must be the duration-2 task
        # stacked onto a length-5 worker — not whichever worker a
        # max-by-(load, index) tie-break happens to select.
        tids, estimate = self._estimate([0.5, 0.5, 0.2], parallelism=2)
        assert estimate.makespan == pytest.approx(7.0)
        assert estimate.critical_tuple == tids[2]

    def test_all_equal_durations_still_pick_a_makespan_finisher(self):
        tids, estimate = self._estimate([0.4, 0.4, 0.4, 0.4], parallelism=2)
        assert estimate.makespan == pytest.approx(8.0)
        assert estimate.critical_tuple in tids

    def test_serial_critical_tuple_is_the_last_to_finish(self):
        tids, estimate = self._estimate([0.6, 0.1], parallelism=1)
        # LPT order: the 0.6 task runs first, then 0.1 finishes last.
        assert estimate.makespan == pytest.approx(7.0)
        assert estimate.critical_tuple == tids[1]
