"""Unit tests for policy-store persistence."""

import io

import pytest

from repro.errors import PolicyError
from repro.policy import (
    PolicyStore,
    load_store,
    save_store,
    store_from_dict,
    store_to_dict,
)


@pytest.fixture
def store() -> PolicyStore:
    s = PolicyStore(default_threshold=0.1, combination="most_specific")
    s.add_role("junior")
    s.add_role("senior", inherits=["junior"])
    s.add_role("chief", inherits=["senior"])
    s.add_purpose("ops", description="operations")
    s.add_purpose("reporting", parent="ops")
    s.add_user("uma", roles=["senior"])
    s.add_user("vik")
    s.add_policy("junior", "ops", 0.3)
    s.add_policy("senior", "reporting", 0.7)
    return s


def equivalent(a: PolicyStore, b: PolicyStore) -> bool:
    return store_to_dict(a) == store_to_dict(b)


class TestRoundTrip:
    def test_dict_roundtrip(self, store):
        rebuilt = store_from_dict(store_to_dict(store))
        assert equivalent(store, rebuilt)

    def test_behaviour_survives_roundtrip(self, store):
        rebuilt = store_from_dict(store_to_dict(store))
        assert rebuilt.threshold_for("uma", "reporting") == store.threshold_for(
            "uma", "reporting"
        )
        assert rebuilt.role_closure("chief") == {"chief", "senior", "junior"}
        assert rebuilt.purpose_ancestry("reporting") == ["reporting", "ops"]
        assert rebuilt.default_threshold == 0.1
        assert rebuilt.combination == "most_specific"

    def test_file_roundtrip(self, store, tmp_path):
        path = tmp_path / "policies.json"
        save_store(store, path)
        assert equivalent(store, load_store(path))

    def test_stream_roundtrip(self, store):
        buffer = io.StringIO()
        save_store(store, buffer)
        buffer.seek(0)
        assert equivalent(store, load_store(buffer))

    def test_order_independent_rebuild(self, store):
        data = store_to_dict(store)
        data["roles"].reverse()  # chief (depends on senior) now first
        data["purposes"].reverse()
        rebuilt = store_from_dict(data)
        assert equivalent(store, rebuilt)

    def test_empty_store(self):
        empty = PolicyStore()
        assert equivalent(empty, store_from_dict(store_to_dict(empty)))
        assert store_from_dict(store_to_dict(empty)).default_threshold is None


class TestValidation:
    def test_unknown_version_rejected(self, store):
        data = store_to_dict(store)
        data["version"] = 99
        with pytest.raises(PolicyError):
            store_from_dict(data)

    def test_role_cycle_rejected(self, store):
        data = store_to_dict(store)
        for role in data["roles"]:
            if role["name"] == "junior":
                role["inherits"] = ["chief"]
        with pytest.raises(PolicyError):
            store_from_dict(data)

    def test_purpose_cycle_rejected(self, store):
        data = store_to_dict(store)
        for purpose in data["purposes"]:
            if purpose["name"] == "ops":
                purpose["parent"] = "reporting"
        with pytest.raises(PolicyError):
            store_from_dict(data)


class TestCliPersistence:
    def test_save_and_load_through_shell(self, tmp_path):
        from repro.cli import CommandShell

        shell = CommandShell()
        shell.execute_line("role add analyst")
        shell.execute_line("purpose add reporting")
        shell.execute_line("user add mira analyst")
        shell.execute_line("policy add analyst reporting 0.5")
        path = tmp_path / "p.json"
        assert "saved" in shell.execute_line(f"policy save {path}")

        fresh = CommandShell()
        assert "loaded" in fresh.execute_line(f"policy load {path}")
        assert fresh.policies.threshold_for("mira", "reporting") == 0.5
