"""Unit tests for the increment problem formalization and search state."""

import pytest

from repro.cost import LinearCost
from repro.errors import IncrementError, InfeasibleIncrementError
from repro.increment import (
    BaseTupleState,
    IncrementProblem,
    SearchState,
    ceil_required,
)
from repro.lineage import ConfidenceFunction, lineage_and, lineage_not, lineage_or, var
from repro.storage import TupleId

A, B, C = (TupleId("t", i) for i in range(3))


def make_states(**confidences):
    mapping = {"A": A, "B": B, "C": C}
    return {
        mapping[name]: BaseTupleState(mapping[name], value, LinearCost(100.0))
        for name, value in confidences.items()
    }


class TestBaseTupleState:
    def test_cost_to(self):
        state = BaseTupleState(A, 0.3, LinearCost(100.0))
        assert state.cost_to(0.5) == pytest.approx(20.0)
        assert state.cost_to(0.3) == 0.0
        assert state.cost_to(0.2) == 0.0  # below current is free (no-op)

    def test_levels_include_max(self):
        state = BaseTupleState(A, 0.25, LinearCost(1.0, max_confidence=0.9))
        levels = state.levels(0.2)
        assert levels[0] == 0.25
        assert levels[-1] == pytest.approx(0.9)
        assert all(b > a for a, b in zip(levels, levels[1:]))

    def test_levels_exact_grid(self):
        state = BaseTupleState(A, 0.5, LinearCost(1.0))
        assert state.levels(0.25) == pytest.approx([0.5, 0.75, 1.0])

    def test_levels_invalid_delta(self):
        state = BaseTupleState(A, 0.5, LinearCost(1.0))
        with pytest.raises(IncrementError):
            state.levels(0.0)

    def test_maximum_never_below_initial(self):
        state = BaseTupleState(A, 0.95, LinearCost(1.0, max_confidence=0.9))
        assert state.maximum == 0.95


class TestProblemConstruction:
    def test_negated_lineage_rejected(self):
        results = [ConfidenceFunction(lineage_not(var(A)))]
        with pytest.raises(IncrementError):
            IncrementProblem(results, make_states(A=0.5), 0.6, 1)

    def test_missing_tuple_state_rejected(self):
        results = [ConfidenceFunction(lineage_and(var(A), var(B)))]
        with pytest.raises(IncrementError):
            IncrementProblem(results, make_states(A=0.5), 0.6, 1)

    def test_required_above_result_count_rejected(self):
        results = [ConfidenceFunction(var(A))]
        with pytest.raises(InfeasibleIncrementError):
            IncrementProblem(results, make_states(A=0.5), 0.6, 2)

    def test_invalid_threshold_and_delta(self):
        results = [ConfidenceFunction(var(A))]
        states = make_states(A=0.5)
        with pytest.raises(IncrementError):
            IncrementProblem(results, states, 1.5, 1)
        with pytest.raises(IncrementError):
            IncrementProblem(results, states, 0.6, 1, delta=0.0)

    def test_results_by_tuple_index(self):
        results = [
            ConfidenceFunction(var(A)),
            ConfidenceFunction(lineage_or(var(A), var(B))),
        ]
        problem = IncrementProblem(results, make_states(A=0.1, B=0.1), 0.6, 1)
        assert problem.results_by_tuple[A] == [0, 1]
        assert problem.results_by_tuple[B] == [1]

    def test_only_needed_tuples_kept(self):
        results = [ConfidenceFunction(var(A))]
        problem = IncrementProblem(results, make_states(A=0.1, B=0.1), 0.6, 1)
        assert set(problem.tuples) == {A}


class TestProblemQueries:
    def test_trivial_detection(self):
        results = [ConfidenceFunction(var(A))]
        problem = IncrementProblem(results, make_states(A=0.7), 0.6, 1)
        assert problem.is_trivial()

    def test_feasibility_check(self):
        states = {
            A: BaseTupleState(A, 0.1, LinearCost(1.0, max_confidence=0.5))
        }
        results = [ConfidenceFunction(var(A))]
        problem = IncrementProblem(results, states, 0.6, 1)
        with pytest.raises(InfeasibleIncrementError):
            problem.check_feasible()

    def test_cost_of_assignment(self):
        results = [ConfidenceFunction(lineage_and(var(A), var(B)))]
        problem = IncrementProblem(results, make_states(A=0.2, B=0.3), 0.6, 1)
        assignment = {A: 0.4, B: 0.3}
        assert problem.cost_of(assignment) == pytest.approx(20.0)

    def test_satisfied_count(self):
        results = [
            ConfidenceFunction(var(A)),
            ConfidenceFunction(var(B)),
        ]
        problem = IncrementProblem(results, make_states(A=0.7, B=0.1), 0.6, 1)
        assert problem.satisfied_count(problem.initial_assignment()) == 1
        assert problem.satisfied_count(problem.maximal_assignment()) == 2

    def test_subproblem(self):
        results = [
            ConfidenceFunction(var(A)),
            ConfidenceFunction(var(B)),
        ]
        problem = IncrementProblem(results, make_states(A=0.1, B=0.1), 0.6, 2)
        sub = problem.subproblem([1], 1)
        assert len(sub.results) == 1
        assert set(sub.tuples) == {B}

    def test_from_results_reads_database(self, paper_increment_problem):
        problem, refs = paper_increment_problem
        assert problem.tuples[refs["t02"]].initial == 0.3
        assert problem.tuples[refs["t03"]].initial == 0.4
        assert problem.threshold == 0.06

    def test_ceil_required(self):
        assert ceil_required(100, 0.5, 0.0) == 50
        assert ceil_required(100, 0.5, 0.2) == 30
        assert ceil_required(3, 0.5, 0.0) == 2
        assert ceil_required(10, 0.3, 0.5) == 0


class TestSearchState:
    @pytest.fixture
    def problem(self):
        results = [
            ConfidenceFunction(lineage_or(var(A), var(B)), "r0"),
            ConfidenceFunction(lineage_and(var(B), var(C)), "r1"),
        ]
        return IncrementProblem(
            results, make_states(A=0.1, B=0.2, C=0.3), 0.5, 1
        )

    def test_initial_state(self, problem):
        state = SearchState(problem)
        assert state.cost == 0.0
        assert state.satisfied_count == 0
        assert not state.is_satisfied()

    def test_set_value_updates_affected_results(self, problem):
        state = SearchState(problem)
        state.set_value(A, 0.6)
        assert state.confidences[0] == pytest.approx(0.6 + 0.2 - 0.12)
        assert state.confidences[1] == pytest.approx(0.2 * 0.3)  # untouched
        assert state.satisfied_count == 1
        assert state.cost == pytest.approx(50.0)

    def test_undo_restores_everything(self, problem):
        state = SearchState(problem)
        before = (list(state.confidences), state.cost, state.satisfied_count)
        old = state.value_of(B)
        undo = state.set_value(B, 0.9)
        state.undo(B, old, undo)
        assert (list(state.confidences), state.cost, state.satisfied_count) == before

    def test_noop_set(self, problem):
        state = SearchState(problem)
        assert state.set_value(A, 0.1) == ([], None)
        assert state.cost == 0.0

    def test_snapshot_targets_only_changed(self, problem):
        state = SearchState(problem)
        state.set_value(A, 0.5)
        assert state.snapshot_targets() == {A: 0.5}

    def test_satisfied_indexes(self, problem):
        state = SearchState(problem)
        state.set_value(B, 1.0)
        state.set_value(C, 0.6)
        assert 1 in state.satisfied_indexes()
