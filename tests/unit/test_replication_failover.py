"""Failover: semi-sync acks, promotion, epoch fencing, durable replay."""

from __future__ import annotations

import socket
import time

import pytest

from repro.errors import ServerError, StaleEpochError
from repro.obs import MetricsRegistry, get_metrics, set_metrics
from repro.policy import PolicyStore
from repro.server import (
    PCQEServer,
    Replica,
    RetryingClient,
    ServerClient,
    ServerReplyError,
    recv_frame,
    send_frame,
)
from repro.storage.database import Database


@pytest.fixture(autouse=True)
def fresh_metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _policies() -> PolicyStore:
    policies = PolicyStore(default_threshold=0.0)
    policies.add_role("Manager")
    policies.add_purpose("ops")
    policies.add_user("bob", roles=["Manager"])
    policies.add_policy("Manager", "ops", 0.0)
    return policies


def _client(port: int, **kwargs) -> RetryingClient:
    kwargs.setdefault("user", "bob")
    kwargs.setdefault("purpose", "ops")
    kwargs.setdefault("sleep", lambda _s: None)
    return RetryingClient(endpoints=[f"127.0.0.1:{port}"], **kwargs)


def _raw_session(port: int, client_id: str) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
    send_frame(
        sock,
        {
            "op": "hello",
            "user": "bob",
            "purpose": "ops",
            "client_id": client_id,
        },
    )
    reply = recv_frame(sock)
    assert reply["ok"], reply
    return sock


def _rpc(sock: socket.socket, **message) -> dict:
    send_frame(sock, message)
    return recv_frame(sock)


def _eventually(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


@pytest.fixture
def primary(tmp_path):
    policies = _policies()
    db = Database.open(str(tmp_path / "primary"))
    server = PCQEServer(db, policies, port=0).start()
    try:
        yield server, policies, db
    finally:
        server.stop()
        db.close()


class TestSemiSync:
    def test_acknowledged_commit_waits_for_a_replica(self, primary):
        server, policies, _db = primary
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            pull_interval=0.01,
            wait_ms=50,
        ) as replica:
            server.min_sync_replicas = 1
            client = _client(server.port)
            client.sql("CREATE TABLE t (name TEXT)")
            reply = client.sql(
                "INSERT INTO t VALUES ('synced') WITH CONFIDENCE 0.9"
            )
            # The ack implies the replica durably applied this seq.
            assert replica.position >= reply["seq"]
            client.close()

    def test_sync_timeout_is_retryable_and_keeps_the_commit(self, primary):
        server, _policies_, _db = primary
        client = ServerClient(
            "127.0.0.1", server.port, user="bob", purpose="ops"
        )
        client.sql("CREATE TABLE t (name TEXT)")
        server.min_sync_replicas = 1
        server.sync_timeout = 0.05
        with pytest.raises(ServerReplyError) as excinfo:
            client.sql("INSERT INTO t VALUES ('slow') WITH CONFIDENCE 0.9")
        error = excinfo.value.error
        assert error["type"] == "ReplicationTimeoutError"
        assert error["retryable"] is True
        assert error["required"] == 1
        assert error["acked"] == 0
        assert get_metrics().counter("server.sync_timeouts").snapshot() >= 1
        # The write is durable on the primary — only the ack is missing.
        server.min_sync_replicas = 0
        assert client.sql("SELECT * FROM t")["count"] == 1
        client.close()

    def test_retry_after_sync_timeout_deduplicates(self, primary):
        server, policies, _db = primary
        raw = _raw_session(server.port, "client-a")
        assert _rpc(raw, op="sql", sql="CREATE TABLE t (name TEXT)")["ok"]
        server.min_sync_replicas = 1
        server.sync_timeout = 0.05
        reply = _rpc(
            raw,
            op="sql",
            sql="INSERT INTO t VALUES ('once') WITH CONFIDENCE 0.9",
            idempotency_key="k1",
        )
        assert reply["error"]["type"] == "ReplicationTimeoutError"
        # A replica shows up; the retried write re-waits for the ack and
        # reports success without applying a second time.
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            pull_interval=0.01,
            wait_ms=50,
        ):
            retried = _rpc(
                raw,
                op="sql",
                sql="INSERT INTO t VALUES ('once') WITH CONFIDENCE 0.9",
                idempotency_key="k1",
            )
            assert retried["ok"], retried
            assert _rpc(raw, op="sql", sql="SELECT * FROM t")["count"] == 1
        raw.close()


class TestPromotion:
    def test_promotion_makes_the_replica_writable(self, primary):
        server, policies, _db = primary
        client = _client(server.port)
        client.sql("CREATE TABLE t (name TEXT)")
        client.sql("INSERT INTO t VALUES ('pre') WITH CONFIDENCE 0.9")
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            pull_interval=0.01,
            wait_ms=50,
        ) as replica:
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            server.stop()
            assert replica.promote() == 2
            assert replica.server.role == "primary"
            assert replica.server.epoch == 2
            promoted = _client(replica.server.port)
            assert promoted.sql("SELECT * FROM t")["count"] == 1
            reply = promoted.sql(
                "INSERT INTO t VALUES ('post') WITH CONFIDENCE 0.9"
            )
            assert reply["seq"] > client.last_write_seq
            promoted.close()
        client.close()

    def test_promotion_is_idempotent_and_epochs_are_monotonic(self, primary):
        server, policies, _db = primary
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            pull_interval=0.01,
            wait_ms=50,
        ) as replica:
            with pytest.raises(ServerError):
                replica.promote(epoch=1)  # not an advance
            assert not replica.promoted  # failed promotion left no mark
            assert replica.promote(epoch=7) == 7
            assert replica.promote() == 7  # second call is a no-op
            assert replica.epoch == 7

    def test_auto_promotion_after_primary_silence(self, primary):
        server, policies, _db = primary
        client = _client(server.port)
        client.sql("CREATE TABLE t (name TEXT)")
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            pull_interval=0.02,
            wait_ms=20,
            auto_promote_after=0.2,
        ) as replica:
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            server.stop()
            assert _eventually(lambda: replica.promoted, timeout=10.0)
            assert replica.epoch == 2
            assert (
                get_metrics().counter("repl.auto_promotions").snapshot() >= 1
            )
        client.close()


class TestEpochFencing:
    def test_deposed_primary_fences_on_a_higher_epoch(self, primary):
        server, _policies_, _db = primary
        sock = socket.create_connection(
            ("127.0.0.1", server.port), timeout=10.0
        )
        reply = _rpc(
            sock,
            **{
                "op": "repl.handshake",
                "replica": "new-reign",
                "epoch": 99,
                "last_seq": 0,
            },
        )
        assert not reply["ok"]
        assert reply["error"]["type"] == "StaleEpochError"
        # The *server* is the stale party: it reports its own epoch as
        # stale and the peer's as current.
        assert reply["error"]["stale_epoch"] == 1
        assert reply["error"]["current_epoch"] == 99
        assert get_metrics().counter("server.fenced").snapshot() >= 1
        sock.close()

    def test_replica_rejects_a_lower_epoch_peer(self, primary):
        server, policies, _db = primary
        replica = Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            pull_interval=0.01,
            wait_ms=50,
        )
        replica.server.start()
        try:
            # As if this node already served under a newer reign: the
            # handshake announces epoch 5, so the epoch-1 primary fences
            # itself rather than feeding a stale stream.
            replica.epoch = 5
            with pytest.raises(ServerReplyError) as excinfo:
                replica._sync_once()
            assert excinfo.value.error["type"] == "StaleEpochError"
            assert replica.epoch == 5  # never regressed to the peer's
            # Second layer, for a peer that answers ok with an older
            # epoch anyway: the replica refuses to adopt it.
            with pytest.raises(StaleEpochError):
                replica._adopt_epoch(1)
            assert (
                get_metrics()
                .counter("repl.stale_frames_rejected")
                .snapshot()
                >= 1
            )
        finally:
            replica.server.stop()
            replica._db.close()


class TestDurableReplay:
    def test_idempotent_replay_across_failover(self, tmp_path, primary):
        server, policies, _db = primary
        setup = _raw_session(server.port, "client-a")
        assert _rpc(setup, op="sql", sql="CREATE TABLE t (name TEXT)")["ok"]
        written = _rpc(
            setup,
            op="sql",
            sql="INSERT INTO t VALUES ('x') WITH CONFIDENCE 0.9",
            idempotency_key="k1",
        )
        assert written["ok"], written
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            data_dir=str(tmp_path / "replica"),
            pull_interval=0.01,
            wait_ms=50,
        ) as replica:
            assert replica.wait_for_position(written["seq"], 5.0)
            setup.close()
            server.stop()
            replica.promote()
            # The retried write carries the same (client, key); the
            # promoted replica learned it from the replicated WAL and
            # answers from the log instead of applying twice.
            retry = _raw_session(replica.server.port, "client-a")
            replayed = _rpc(
                retry,
                op="sql",
                sql="INSERT INTO t VALUES ('x') WITH CONFIDENCE 0.9",
                idempotency_key="k1",
            )
            assert replayed["ok"], replayed
            assert replayed.get("idempotent_replay") is True
            assert replayed["seq"] == written["seq"]
            assert _rpc(retry, op="sql", sql="SELECT * FROM t")["count"] == 1
            retry.close()


class TestClientFailover:
    def test_client_follows_the_promotion(self, primary):
        server, policies, _db = primary
        client = _client(server.port)
        client.sql("CREATE TABLE t (name TEXT)")
        client.sql("INSERT INTO t VALUES ('pre') WITH CONFIDENCE 0.9")
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            pull_interval=0.01,
            wait_ms=50,
        ) as replica:
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            survivor = RetryingClient(
                endpoints=[
                    f"127.0.0.1:{server.port}",
                    f"127.0.0.1:{replica.server.port}",
                ],
                user="bob",
                purpose="ops",
                sleep=lambda _s: None,
            )
            assert survivor.sql("SELECT * FROM t")["count"] == 1
            server.stop()
            replica.promote()
            reply = survivor.sql(
                "INSERT INTO t VALUES ('post') WITH CONFIDENCE 0.9"
            )
            assert reply["ok"] is True
            assert survivor.server_role == "primary"
            assert survivor.epoch == 2
            assert survivor.sql("SELECT * FROM t")["count"] == 2
            survivor.close()
        client.close()
