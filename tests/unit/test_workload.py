"""Unit tests for the synthetic workload generator and scenarios."""

import pytest

from repro.errors import WorkloadError
from repro.workload import (
    WorkloadSpec,
    generate_problem,
    healthcare_database,
    venture_capital_database,
)


class TestWorkloadSpec:
    def test_defaults_match_table4(self):
        spec = WorkloadSpec()
        assert spec.data_size == 10_000
        assert spec.tuples_per_result == 5
        assert spec.delta == 0.1
        assert spec.theta == 0.5
        assert spec.threshold == 0.6

    def test_result_count_derived(self):
        assert WorkloadSpec(data_size=100, tuples_per_result=5).result_count == 20

    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(data_size=0)
        with pytest.raises(WorkloadError):
            WorkloadSpec(tuples_per_result=0)
        with pytest.raises(WorkloadError):
            WorkloadSpec(data_size=3, tuples_per_result=5)
        with pytest.raises(WorkloadError):
            WorkloadSpec(theta=0.0)
        with pytest.raises(WorkloadError):
            WorkloadSpec(threshold=1.5)
        with pytest.raises(WorkloadError):
            WorkloadSpec(or_bias=2.0)
        with pytest.raises(WorkloadError):
            WorkloadSpec(locality=-1.0)


class TestGeneration:
    def test_deterministic_for_seed(self):
        spec = WorkloadSpec(data_size=50, tuples_per_result=5)
        first = generate_problem(spec, seed=5)
        second = generate_problem(spec, seed=5)
        assert first.problem.required_count == second.problem.required_count
        first_assignment = first.problem.initial_assignment()
        second_assignment = second.problem.initial_assignment()
        assert first_assignment == second_assignment

    def test_different_seeds_differ(self):
        spec = WorkloadSpec(data_size=50, tuples_per_result=5)
        a = generate_problem(spec, seed=1).problem.initial_assignment()
        b = generate_problem(spec, seed=2).problem.initial_assignment()
        assert a != b

    def test_confidences_around_center(self):
        spec = WorkloadSpec(
            data_size=100, tuples_per_result=5,
            confidence_center=0.1, confidence_spread=0.05,
        )
        problem = generate_problem(spec, seed=0).problem
        for state in problem.tuples.values():
            assert 0.05 <= state.initial <= 0.15

    def test_result_arity(self):
        spec = WorkloadSpec(data_size=100, tuples_per_result=5)
        problem = generate_problem(spec, seed=0).problem
        for result in problem.results:
            assert result.arity() <= 5

    def test_requirement_clamped_to_achievable(self):
        workload = generate_problem(
            WorkloadSpec(data_size=30, tuples_per_result=5, or_bias=0.0),
            seed=0,
        )
        assert workload.problem.required_count <= workload.achievable_count
        assert workload.clamped == (
            workload.requested_count > workload.achievable_count
        )

    def test_problem_is_solvable(self):
        from repro.increment import solve_greedy

        workload = generate_problem(
            WorkloadSpec(data_size=60, tuples_per_result=4), seed=8
        )
        plan = solve_greedy(workload.problem)
        assert len(plan.satisfied_results) >= workload.problem.required_count

    def test_locality_zero_samples_globally(self):
        spec = WorkloadSpec(data_size=100, tuples_per_result=5, locality=0.0)
        problem = generate_problem(spec, seed=0).problem
        assert len(problem.tuples) > 5


class TestScenarios:
    def test_venture_capital_reproduces_paper_confidence(self):
        from repro.sql import run_sql

        scenario = venture_capital_database()
        result = run_sql(scenario.db, scenario.QUERY)
        confidences = {
            row.values[0]: confidence
            for row, confidence in result.with_confidences(scenario.db)
        }
        assert confidences["BlueRiver"] == pytest.approx(0.058)

    def test_venture_capital_policies(self):
        scenario = venture_capital_database()
        assert scenario.policies.threshold_for("alice", "analysis") == 0.05
        assert scenario.policies.threshold_for("bob", "investment") == 0.06

    def test_venture_capital_cost_asymmetry(self):
        scenario = venture_capital_database()
        t02 = scenario.db.resolve(scenario.proposal_ids["02"])
        t03 = scenario.db.resolve(scenario.proposal_ids["03"])
        cost02 = t02.cost_model.increment_cost(0.3, 0.4)
        cost03 = t03.cost_model.increment_cost(0.4, 0.5)
        assert cost02 == pytest.approx(100.0)
        assert cost03 == pytest.approx(10.0)

    def test_healthcare_database_shape(self):
        scenario = healthcare_database(patients=50, seed=1)
        assert len(scenario.db.table("Patients")) == 50
        assert len(scenario.db.table("Treatments")) >= 50
        assert scenario.policies.threshold_for("omar", "treatment-evaluation") == 0.75

    def test_healthcare_tier_confidences(self):
        scenario = healthcare_database(patients=100, seed=2)
        by_tier = {}
        for row in scenario.db.table("Patients").scan():
            by_tier.setdefault(row.values[3], []).append(row.confidence)
        if "registry" in by_tier and "chart" in by_tier:
            mean = lambda xs: sum(xs) / len(xs)
            assert mean(by_tier["chart"]) > mean(by_tier["registry"])

    def test_healthcare_deterministic(self):
        a = healthcare_database(patients=20, seed=3)
        b = healthcare_database(patients=20, seed=3)
        assert a.db.table("Patients").rows() == b.db.table("Patients").rows()
