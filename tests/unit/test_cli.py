"""Unit tests for the PCQE command shell."""

import pytest

from repro.cli import CommandError, CommandShell
from repro.errors import ReproError, UnknownTableError


@pytest.fixture
def shell() -> CommandShell:
    return CommandShell()


def bootstrap(shell: CommandShell) -> None:
    shell.execute_line("create items name:text, price:real")
    shell.execute_line("role add analyst")
    shell.execute_line("purpose add reporting")
    shell.execute_line("user add mira analyst")
    shell.execute_line("policy add analyst reporting 0.5")


class TestSchemaCommands:
    def test_create_and_tables(self, shell):
        output = shell.execute_line("create t a:text, b:int, c:real, d:bool")
        assert "created table t" in output
        listing = shell.execute_line("tables")
        assert "t (0 rows)" in listing
        assert "b:INTEGER" in listing

    def test_create_bad_type(self, shell):
        with pytest.raises(CommandError):
            shell.execute_line("create t a:quaternion")

    def test_create_missing_args(self, shell):
        with pytest.raises(CommandError):
            shell.execute_line("create t")

    def test_load_csv(self, shell, tmp_path):
        shell.execute_line("create items name:text, price:real")
        csv_path = tmp_path / "items.csv"
        csv_path.write_text(
            "name,price,__confidence__\napple,1.0,0.4\npear,2.0,0.9\n"
        )
        output = shell.execute_line(f"load items {csv_path}")
        assert "loaded 2 rows" in output

    def test_load_unknown_table(self, shell, tmp_path):
        csv_path = tmp_path / "x.csv"
        csv_path.write_text("a\n1\n")
        with pytest.raises(UnknownTableError):
            shell.execute_line(f"load missing {csv_path}")

    def test_empty_and_comment_lines(self, shell):
        assert shell.execute_line("") == ""
        assert shell.execute_line("# a comment") == ""

    def test_unknown_command(self, shell):
        with pytest.raises(CommandError):
            shell.execute_line("teleport now")


class TestQueryCommands:
    def test_sql_prints_rows_and_confidence(self, shell):
        shell.execute_line("create t a:text")
        shell.db.table("t").insert(["x"], confidence=0.25)
        output = shell.execute_line("sql SELECT a FROM t")
        assert "x | 0.250" in output
        assert "(1 rows)" in output

    def test_explain_prints_plan(self, shell):
        shell.execute_line("create t a:text")
        output = shell.execute_line("explain SELECT a FROM t")
        assert "Scan(t)" in output

    def test_profile(self, shell):
        shell.execute_line("create t a:text")
        shell.db.table("t").insert(["x"], confidence=0.25)
        output = shell.execute_line("profile t")
        assert "n=1" in output and "mean=0.250" in output

    def test_profile_empty(self, shell):
        shell.execute_line("create t a:text")
        assert "empty" in shell.execute_line("profile t")


class TestPolicyCommands:
    def test_policy_lifecycle(self, shell):
        bootstrap(shell)
        listing = shell.execute_line("policy list")
        assert "<analyst, reporting, 0.5>" in listing

    def test_policy_list_empty(self, shell):
        assert shell.execute_line("policy list") == "(no policies)"

    def test_role_inherits(self, shell):
        shell.execute_line("role add junior")
        shell.execute_line("role add senior inherits junior")
        assert shell.policies.role_closure("senior") == {"senior", "junior"}

    def test_purpose_under(self, shell):
        shell.execute_line("purpose add care")
        shell.execute_line("purpose add surgery under care")
        assert shell.policies.purpose_ancestry("surgery") == ["surgery", "care"]

    def test_bad_policy_usage(self, shell):
        with pytest.raises(CommandError):
            shell.execute_line("policy add too few")

    def test_solver_selection(self, shell):
        assert "dnc" in shell.execute_line("solver dnc")
        with pytest.raises(CommandError):
            shell.execute_line("solver quantum")

    def test_solver_deadline_flag(self, shell):
        output = shell.execute_line("solver heuristic --deadline-ms 50")
        assert "deadline 50 ms" in output
        assert shell.deadline_ms == 50.0
        with pytest.raises(CommandError):
            shell.execute_line("solver heuristic --deadline-ms soon")
        with pytest.raises(CommandError):
            shell.execute_line("solver heuristic --deadline-ms")


class TestAskCommand:
    def test_ask_satisfied(self, shell):
        bootstrap(shell)
        shell.db.table("items").insert(["apple", 1.0], confidence=0.9)
        output = shell.execute_line(
            "ask mira reporting 1.0 SELECT name FROM items"
        )
        assert "status: satisfied" in output
        assert "apple | 0.900" in output

    def test_ask_improves(self, shell):
        from repro.cost import LinearCost

        bootstrap(shell)
        shell.db.table("items").insert(
            ["apple", 1.0], confidence=0.2, cost_model=LinearCost(10.0)
        )
        output = shell.execute_line(
            "ask mira reporting 1.0 SELECT name FROM items"
        )
        assert "status: improved" in output
        assert "quote:" in output

    def test_ask_usage_error(self, shell):
        with pytest.raises(CommandError):
            shell.execute_line("ask onlyuser")


class TestDemo:
    def test_demo_loads_running_example(self, shell):
        output = shell.execute_line("demo")
        assert "running example" in output
        result = shell.execute_line(
            "ask bob investment 1.0 "
            "SELECT ci.Company, ci.Income FROM (SELECT DISTINCT Company "
            "FROM Proposal WHERE Funding < 1.0) AS cand JOIN CompanyInfo "
            "AS ci ON cand.Company = ci.Company"
        )
        assert "status: improved" in result
        assert "quote: cost 10.00" in result


class TestProfileAsk:
    def test_profile_ask_prints_stage_breakdown(self, shell):
        shell.execute_line("demo")
        output = shell.execute_line(
            "profile ask bob investment 1.0 "
            "SELECT ci.Company, ci.Income FROM (SELECT DISTINCT Company "
            "FROM Proposal WHERE Funding < 1.0) AS cand JOIN CompanyInfo "
            "AS ci ON cand.Company = ci.Company"
        )
        assert "status: improved" in output
        assert "pcqe.query_evaluation" in output
        assert "pcqe.strategy_finding" in output
        assert "metrics moved this run:" in output

    def test_profile_table_still_works(self, shell):
        shell.execute_line("demo")
        output = shell.execute_line("profile Proposal")
        assert "histogram[0..1):" in output

    def test_profile_usage_error(self, shell):
        with pytest.raises(CommandError):
            shell.execute_line("profile")


DEMO_ASK = (
    "ask bob investment 1.0 "
    "SELECT ci.Company, ci.Income FROM (SELECT DISTINCT Company "
    "FROM Proposal WHERE Funding < 1.0) AS cand JOIN CompanyInfo "
    "AS ci ON cand.Company = ci.Company"
)


class TestAuditCommands:
    def test_audit_needs_the_flag(self, shell):
        with pytest.raises(CommandError):
            shell.execute_line("audit list")

    def test_audit_list_and_explain(self, tmp_path):
        shell = CommandShell(audit_log=str(tmp_path / "audit.log"))
        try:
            shell.execute_line("demo")
            shell.execute_line(DEMO_ASK)
            listing = shell.execute_line("audit list")
            assert "q1: user=bob purpose=investment" in listing
            assert "status=improved" in listing
            explanation = shell.execute_line("audit explain q1 t0")
            assert "policy=⟨Manager, investment" in explanation
            assert "initial: t0" in explanation
            assert "outcome: improved" in explanation
        finally:
            shell.close()

    def test_audit_list_empty(self, tmp_path):
        shell = CommandShell(audit_log=str(tmp_path / "audit.log"))
        try:
            assert shell.execute_line("audit list") == "(no audited queries)"
        finally:
            shell.close()

    def test_audit_usage_error(self, tmp_path):
        shell = CommandShell(audit_log=str(tmp_path / "audit.log"))
        try:
            with pytest.raises(CommandError):
                shell.execute_line("audit")
        finally:
            shell.close()

    def test_audit_survives_shell_restart(self, tmp_path):
        path = str(tmp_path / "audit.log")
        shell = CommandShell(audit_log=path)
        try:
            shell.execute_line("demo")
            shell.execute_line(DEMO_ASK)
        finally:
            shell.close()
        shell = CommandShell(audit_log=path)
        try:
            assert "q1:" in shell.execute_line("audit list")
        finally:
            shell.close()


class TestMetricsCommands:
    def test_metrics_dump_is_valid_openmetrics(self, shell):
        from repro.obs import parse_openmetrics

        shell.execute_line("demo")
        shell.execute_line(DEMO_ASK)
        text = shell.execute_line("metrics dump")
        parse_openmetrics(text + "\n")

    def test_metrics_dump_to_file(self, shell, tmp_path):
        from repro.obs import parse_openmetrics

        target = tmp_path / "metrics.txt"
        output = shell.execute_line(f"metrics dump {target}")
        assert str(target) in output
        parse_openmetrics(target.read_text())

    def test_metrics_serve_and_stop(self, shell):
        import urllib.request

        output = shell.execute_line("metrics serve 0")
        assert "serving OpenMetrics at http://" in output
        url = shell.metrics_server.url
        with urllib.request.urlopen(url, timeout=5) as response:
            assert response.status == 200
        with pytest.raises(CommandError):
            shell.execute_line("metrics serve 0")  # already running
        assert "stopped" in shell.execute_line("metrics stop")
        with pytest.raises(CommandError):
            shell.execute_line("metrics stop")  # nothing running

    def test_metrics_usage_error(self, shell):
        with pytest.raises(CommandError):
            shell.execute_line("metrics")


class TestProfileAskAuditLine:
    def test_profile_ask_summarises_the_decision(self, shell):
        shell.execute_line("demo")
        output = shell.execute_line(f"profile {DEMO_ASK}")
        assert "audit: policy ⟨Manager, investment" in output
        assert "released" in output


class TestMainEntry:
    def test_main_with_commands(self, capsys):
        from repro.cli import main

        status = main(["-c", "create t a:text", "tables"])
        assert status == 0
        captured = capsys.readouterr()
        assert "created table t" in captured.out

    def test_main_reports_errors(self, capsys):
        from repro.cli import main

        status = main(["-c", "sql SELECT * FROM missing"])
        assert status == 1
        assert "error:" in capsys.readouterr().err

    def test_main_script_file(self, tmp_path, capsys):
        from repro.cli import main

        script = tmp_path / "setup.pcqe"
        script.write_text("create t a:text\ntables\n")
        assert main([str(script)]) == 0
        assert "t (0 rows)" in capsys.readouterr().out

    def test_trace_out_flag_writes_jsonl(self, tmp_path, capsys):
        import json

        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        status = main(
            [
                "--trace-out",
                str(trace),
                "-c",
                "create t a:text",
                "sql INSERT INTO t VALUES ('x')",
                "sql SELECT a FROM t",
            ]
        )
        assert status == 0
        records = [
            json.loads(line)
            for line in trace.read_text().strip().splitlines()
        ]
        assert any(r["name"] == "algebra.scan" for r in records)

    def test_trace_out_flag_requires_value(self, capsys):
        from repro.cli import main

        assert main(["--trace-out"]) == 2
        assert "requires a value" in capsys.readouterr().err

    def test_log_level_flag(self, capsys):
        import logging

        from repro.cli import main

        assert main(["--log-level", "warning", "-c", "tables"]) == 0
        assert logging.getLogger("repro").level == logging.WARNING

    def test_deadline_ms_flag(self, capsys):
        from repro.cli import main

        assert main(["--deadline-ms", "75", "-c", "tables"]) == 0

    def test_deadline_ms_flag_rejects_bad_values(self, capsys):
        from repro.cli import main

        assert main(["--deadline-ms", "soon", "-c", "tables"]) == 2
        assert "needs a number" in capsys.readouterr().err
        assert main(["--deadline-ms", "-3", "-c", "tables"]) == 2
        assert "must be positive" in capsys.readouterr().err

    def test_help(self):
        shell = CommandShell()
        assert "ask" in shell.execute_line("help")
