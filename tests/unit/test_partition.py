"""Unit tests for the D&C result-graph partitioner."""

import pytest

from repro.cost import LinearCost
from repro.errors import IncrementError
from repro.increment import (
    BaseTupleState,
    IncrementProblem,
    PartitionOptions,
    partition_results,
)
from repro.lineage import ConfidenceFunction, lineage_or, var
from repro.storage import TupleId


def build_problem(result_vars):
    """A problem whose results use the given lists of tuple ordinals."""
    all_ordinals = sorted({o for vars_ in result_vars for o in vars_})
    states = {
        TupleId("t", o): BaseTupleState(TupleId("t", o), 0.1, LinearCost(10.0))
        for o in all_ordinals
    }
    results = [
        ConfidenceFunction(
            lineage_or(*(var(TupleId("t", o)) for o in ordinals)), f"r{i}"
        )
        for i, ordinals in enumerate(result_vars)
    ]
    return IncrementProblem(results, states, 0.6, 1)


class TestPartitionOptions:
    def test_negative_gamma_rejected(self):
        with pytest.raises(IncrementError):
            PartitionOptions(gamma=-1.0)

    def test_zero_cap_rejected(self):
        with pytest.raises(IncrementError):
            PartitionOptions(max_group_tuples=0)


class TestPartitioning:
    def test_disjoint_results_stay_separate(self):
        problem = build_problem([[0, 1], [2, 3], [4, 5]])
        groups = partition_results(problem, PartitionOptions(gamma=1.0))
        assert sorted(groups) == [[0], [1], [2]]

    def test_heavily_shared_results_merge(self):
        problem = build_problem([[0, 1, 2], [0, 1, 3], [7, 8]])
        groups = partition_results(problem, PartitionOptions(gamma=2.0))
        assert [0, 1] in groups
        assert [2] in groups

    def test_gamma_inclusive(self):
        # Results share exactly 2 tuples; gamma=2 merges (paper's example
        # merges at weight == gamma).
        problem = build_problem([[0, 1, 2], [0, 1, 3]])
        merged = partition_results(problem, PartitionOptions(gamma=2.0))
        assert merged == [[0, 1]]
        kept = partition_results(problem, PartitionOptions(gamma=3.0))
        assert sorted(kept) == [[0], [1]]

    def test_transitive_merging(self):
        # r0-r1 share 2 tuples, r1-r2 share 2 tuples: all merge.
        problem = build_problem([[0, 1, 9], [0, 1, 2, 3], [2, 3, 8]])
        groups = partition_results(problem, PartitionOptions(gamma=2.0))
        assert groups == [[0, 1, 2]]

    def test_summed_weights_after_merge(self):
        # r0-r2 and r1-r2 each share 1 tuple; after merging r0+r1 (share 2),
        # the group-to-r2 weight becomes 2 and r2 joins at gamma=2.
        problem = build_problem([[0, 1, 4], [0, 1, 5], [4, 5]])
        groups = partition_results(problem, PartitionOptions(gamma=2.0))
        assert groups == [[0, 1, 2]]

    def test_max_group_tuples_blocks_merge(self):
        problem = build_problem([[0, 1, 2], [0, 1, 3]])
        groups = partition_results(
            problem, PartitionOptions(gamma=1.0, max_group_tuples=3)
        )
        # Merging would need 4 distinct tuples; the cap forbids it.
        assert sorted(groups) == [[0], [1]]

    def test_empty_problem(self):
        problem = build_problem([[0]])
        sub = problem.subproblem([], 0)
        assert partition_results(sub) == []

    def test_every_result_appears_exactly_once(self):
        problem = build_problem(
            [[0, 1], [1, 2], [2, 3], [5, 6], [6, 7], [9, 10]]
        )
        groups = partition_results(problem, PartitionOptions(gamma=1.0))
        flattened = sorted(i for group in groups for i in group)
        assert flattened == list(range(6))
