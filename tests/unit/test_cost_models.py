"""Unit tests for repro.cost."""

import math
import random

import pytest

from repro.cost import (
    BinomialCost,
    CostModel,
    CostModelSampler,
    ExponentialCost,
    FreeCost,
    LinearCost,
    LogarithmicCost,
    TabulatedCost,
)
from repro.errors import CostModelError


class TestLinearCost:
    def test_increment_cost(self):
        model = LinearCost(100.0)
        assert model.increment_cost(0.3, 0.5) == pytest.approx(20.0)

    def test_zero_increment(self):
        assert LinearCost(100.0).increment_cost(0.4, 0.4) == 0.0

    def test_decreasing_target_rejected(self):
        with pytest.raises(CostModelError):
            LinearCost(100.0).increment_cost(0.5, 0.3)

    def test_target_above_cap_rejected(self):
        model = LinearCost(100.0, max_confidence=0.8)
        with pytest.raises(CostModelError):
            model.increment_cost(0.5, 0.9)

    def test_out_of_range_rejected(self):
        with pytest.raises(CostModelError):
            LinearCost(100.0).increment_cost(-0.1, 0.5)
        with pytest.raises(CostModelError):
            LinearCost(100.0).increment_cost(0.1, 1.5)

    def test_negative_rate_rejected(self):
        with pytest.raises(CostModelError):
            LinearCost(-1.0)


class TestBinomialCost:
    def test_cumulative_shape(self):
        model = BinomialCost(linear=10.0, quadratic=20.0)
        assert model.cumulative(0.5) == pytest.approx(10.0 * 0.5 + 20.0 * 0.25)

    def test_marginal_cost_grows(self):
        model = BinomialCost(linear=0.0, quadratic=100.0)
        early = model.increment_cost(0.1, 0.2)
        late = model.increment_cost(0.8, 0.9)
        assert late > early

    def test_all_zero_coefficients_rejected(self):
        with pytest.raises(CostModelError):
            BinomialCost(0.0, 0.0)


class TestExponentialCost:
    def test_zero_at_zero(self):
        assert ExponentialCost(scale=5.0).cumulative(0.0) == 0.0

    def test_explodes_near_one(self):
        model = ExponentialCost(scale=1.0, shape=5.0)
        assert model.increment_cost(0.9, 1.0) > model.increment_cost(0.0, 0.1)

    def test_invalid_params(self):
        with pytest.raises(CostModelError):
            ExponentialCost(scale=0.0)
        with pytest.raises(CostModelError):
            ExponentialCost(scale=1.0, shape=-1.0)


class TestLogarithmicCost:
    def test_zero_at_zero(self):
        assert LogarithmicCost(scale=10.0).cumulative(0.0) == 0.0

    def test_finite_at_one(self):
        model = LogarithmicCost(scale=10.0, saturation=0.9)
        assert math.isfinite(model.cumulative(1.0))

    def test_saturation_bounds(self):
        with pytest.raises(CostModelError):
            LogarithmicCost(scale=1.0, saturation=1.0)
        with pytest.raises(CostModelError):
            LogarithmicCost(scale=1.0, saturation=0.0)


class TestTabulatedCost:
    def test_interpolation(self):
        model = TabulatedCost([(0.0, 0.0), (0.5, 10.0), (1.0, 30.0)])
        assert model.cumulative(0.25) == pytest.approx(5.0)
        assert model.cumulative(0.75) == pytest.approx(20.0)

    def test_free_floor_below_first_point(self):
        model = TabulatedCost([(0.2, 5.0), (1.0, 30.0)])
        assert model.cumulative(0.1) == 5.0

    def test_needs_two_points(self):
        with pytest.raises(CostModelError):
            TabulatedCost([(0.5, 1.0)])

    def test_non_increasing_confidences_rejected(self):
        with pytest.raises(CostModelError):
            TabulatedCost([(0.5, 1.0), (0.5, 2.0)])

    def test_decreasing_costs_rejected(self):
        with pytest.raises(CostModelError):
            TabulatedCost([(0.1, 5.0), (0.9, 1.0)])

    def test_max_confidence_from_last_point(self):
        model = TabulatedCost([(0.0, 0.0), (0.8, 10.0)])
        assert model.max_confidence == 0.8


class TestMarginalCost:
    def test_step_clamped_at_cap(self):
        model = LinearCost(100.0, max_confidence=0.85)
        # Step from 0.8: only 0.05 of headroom remains.
        assert model.marginal_cost(0.8, 0.1) == pytest.approx(5.0)

    def test_at_cap_is_infinite(self):
        model = LinearCost(100.0, max_confidence=0.85)
        assert model.marginal_cost(0.85, 0.1) == math.inf

    def test_free_cost(self):
        assert FreeCost().increment_cost(0.1, 0.9) == 0.0


class TestCostModelSampler:
    def test_deterministic_for_seed(self):
        sampler = CostModelSampler()
        a = sampler.sample(random.Random(42))
        b = sampler.sample(random.Random(42))
        assert type(a) is type(b)
        assert a.cumulative(0.5) == b.cumulative(0.5)

    def test_respects_weights(self):
        sampler = CostModelSampler(weights={"linear": 1.0})
        for seed in range(10):
            assert isinstance(sampler.sample(random.Random(seed)), LinearCost)

    def test_unknown_family_rejected(self):
        with pytest.raises(CostModelError):
            CostModelSampler(weights={"quantum": 1.0})

    def test_all_zero_weights_rejected(self):
        with pytest.raises(CostModelError):
            CostModelSampler(weights={"linear": 0.0})

    def test_invalid_cap_range(self):
        with pytest.raises(CostModelError):
            CostModelSampler(max_confidence_range=(0.9, 0.5))

    def test_base_scale_scales_costs(self):
        cheap = CostModelSampler(weights={"linear": 1.0}, base_scale=1.0)
        pricey = CostModelSampler(weights={"linear": 1.0}, base_scale=10.0)
        a = cheap.sample(random.Random(7))
        b = pricey.sample(random.Random(7))
        assert b.cumulative(1.0) == pytest.approx(10.0 * a.cumulative(1.0))

    def test_caps_within_range(self):
        sampler = CostModelSampler(max_confidence_range=(0.7, 0.9))
        for seed in range(20):
            model = sampler.sample(random.Random(seed))
            assert 0.7 <= model.max_confidence <= 0.9

    def test_subclass_must_implement_cumulative(self):
        with pytest.raises(NotImplementedError):
            CostModel().cumulative(0.5)
