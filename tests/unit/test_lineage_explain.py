"""Unit tests for lineage witnesses, influence ranking, and explain()."""

import pytest

from repro.errors import LineageError
from repro.lineage import (
    BOTTOM,
    TOP,
    explain,
    lineage_and,
    lineage_not,
    lineage_or,
    minimal_witnesses,
    rank_influence,
    var,
)
from repro.storage import TupleId

A, B, C, D = (TupleId("t", i) for i in range(4))


class TestMinimalWitnesses:
    def test_single_var(self):
        assert minimal_witnesses(var(A)) == [frozenset({A})]

    def test_and_combines(self):
        assert minimal_witnesses(lineage_and(var(A), var(B))) == [
            frozenset({A, B})
        ]

    def test_or_unions(self):
        witnesses = minimal_witnesses(lineage_or(var(A), var(B)))
        assert witnesses == [frozenset({A}), frozenset({B})]

    def test_paper_formula(self):
        formula = lineage_and(lineage_or(var(A), var(B)), var(C))
        assert minimal_witnesses(formula) == [
            frozenset({A, C}),
            frozenset({B, C}),
        ]

    def test_absorption_minimizes(self):
        # A OR (A AND B): the second witness is subsumed by the first.
        formula = lineage_or(var(A), lineage_and(var(A), var(B)))
        assert minimal_witnesses(formula) == [frozenset({A})]

    def test_constants(self):
        assert minimal_witnesses(TOP) == [frozenset()]
        assert minimal_witnesses(BOTTOM) == []

    def test_negation_rejected(self):
        with pytest.raises(LineageError):
            minimal_witnesses(lineage_not(var(A)))

    def test_limit_enforced(self):
        wide = lineage_and(
            *(lineage_or(var(TupleId("t", 2 * i)), var(TupleId("t", 2 * i + 1)))
              for i in range(6))
        )
        with pytest.raises(LineageError):
            minimal_witnesses(wide, limit=10)

    def test_sorted_by_size(self):
        formula = lineage_or(lineage_and(var(A), var(B)), var(C))
        witnesses = minimal_witnesses(formula)
        assert witnesses[0] == frozenset({C})

    def test_witnesses_actually_satisfy(self):
        formula = lineage_and(lineage_or(var(A), var(B)), lineage_or(var(C), var(D)))
        for witness in minimal_witnesses(formula):
            world = {tid: tid in witness for tid in formula.variables}
            assert formula.evaluate(world)


class TestRankInfluence:
    def test_paper_example_order(self):
        formula = lineage_and(lineage_or(var(A), var(B)), var(C))
        probs = {A: 0.3, B: 0.4, C: 0.1}
        ranked = rank_influence(formula, probs)
        # C: slope 0.58, headroom 0.9 -> 0.522 — by far the best lever.
        assert ranked[0][0] == C
        assert ranked[0][1] == pytest.approx(0.58 * 0.9)

    def test_influence_equals_certainty_gain(self):
        from repro.lineage import probability

        formula = lineage_or(lineage_and(var(A), var(B)), var(C))
        probs = {A: 0.2, B: 0.6, C: 0.3}
        base = probability(formula, probs)
        for tid, influence in rank_influence(formula, probs):
            certain = dict(probs)
            certain[tid] = 1.0
            assert probability(formula, certain) - base == pytest.approx(
                influence
            )

    def test_saturated_tuple_has_zero_influence(self):
        formula = lineage_or(var(A), var(B))
        ranked = dict(rank_influence(formula, {A: 1.0, B: 0.5}))
        assert ranked[A] == pytest.approx(0.0)


class TestExplain:
    def test_renders_tree_with_probabilities(self):
        formula = lineage_and(lineage_or(var(A), var(B)), var(C))
        text = explain(formula, {A: 0.3, B: 0.4, C: 0.1})
        assert "AND  p=0.058" in text
        assert "OR  p=0.580" in text
        assert "t:2  p=0.100" in text

    def test_renders_without_probabilities(self):
        text = explain(lineage_not(var(A)))
        assert text.splitlines()[0] == "NOT"
        assert "t:0" in text

    def test_constants(self):
        assert explain(TOP) == "TRUE"
        assert explain(BOTTOM) == "FALSE"
