"""Unit tests for table statistics and statistics-driven join reordering."""

import pytest

from repro.algebra import Query, col, execute, lit, optimize
from repro.algebra.joins import reorder_joins
from repro.algebra.plan import Filter, Join, Project, Scan
from repro.sql import run_sql
from repro.storage import (
    Database,
    INTEGER,
    REAL,
    Schema,
    TEXT,
    collect_statistics,
)


@pytest.fixture
def db() -> Database:
    database = Database()
    big = database.create_table("big", Schema.of(("k", TEXT), ("x", INTEGER)))
    for index in range(120):
        big.insert([f"k{index % 30}", index])
    mid = database.create_table("mid", Schema.of(("k", TEXT), ("g", TEXT)))
    for index in range(30):
        mid.insert([f"k{index}", f"g{index % 4}"])
    small = database.create_table(
        "small", Schema.of(("g", TEXT), ("label", TEXT))
    )
    for index in range(4):
        small.insert([f"g{index}", f"L{index}"])
    return database


class TestStatistics:
    def test_row_and_distinct_counts(self, db):
        statistics = collect_statistics(db.table("big"))
        assert statistics.row_count == 120
        assert statistics.column("k").distinct_count == 30
        assert statistics.column("x").distinct_count == 120

    def test_numeric_min_max(self, db):
        statistics = collect_statistics(db.table("big"))
        column = statistics.column("x")
        assert column.minimum == 0
        assert column.maximum == 119

    def test_null_counting(self):
        database = Database()
        table = database.create_table("t", Schema.of(("v", REAL)))
        table.insert([1.0])
        table.insert([None])
        table.insert([None])
        statistics = collect_statistics(table)
        assert statistics.column("v").null_count == 2
        assert statistics.column("v").null_fraction == pytest.approx(2 / 3)

    def test_selectivity_equals(self, db):
        statistics = collect_statistics(db.table("big"))
        # 30 distinct keys, no nulls: 1/30 of rows match an equality.
        assert statistics.column("k").selectivity_equals() == pytest.approx(
            1 / 30
        )

    def test_empty_table(self):
        database = Database()
        table = database.create_table("t", Schema.of(("v", REAL)))
        statistics = collect_statistics(table)
        assert statistics.row_count == 0
        assert statistics.column("v").selectivity_equals() == 0.0

    def test_join_cardinality_estimate(self, db):
        big = collect_statistics(db.table("big"))
        mid = collect_statistics(db.table("mid"))
        estimate = big.join_cardinality(mid, "k", "k")
        # True size: every big row matches exactly one mid row -> 120.
        assert estimate == pytest.approx(120.0)


def _scan_order(plan):
    """Table names of Scan leaves in left-to-right order."""
    found = []

    def walk(node):
        if isinstance(node, Scan):
            found.append(node.table.name)
        for child in node.children:
            walk(child)

    walk(plan)
    return found


class TestJoinReordering:
    def _chain_plan(self, db, with_filter=False):
        plan = Join(
            Join(
                Scan(db.table("big")),
                Scan(db.table("mid")),
                col("big.k") == col("mid.k"),
            ),
            Scan(db.table("small")),
            col("mid.g") == col("small.g"),
        )
        if with_filter:
            return Filter(plan, col("small.label") == lit("L1"))
        return plan

    def test_smallest_relation_moves_first(self, db):
        reordered = reorder_joins(self._chain_plan(db))
        assert _scan_order(reordered)[0] == "small"

    def test_results_identical(self, db):
        plan = self._chain_plan(db, with_filter=True)
        raw = execute(plan)
        reordered = execute(optimize(plan))
        assert sorted(raw.values()) == sorted(reordered.values())

    def test_lineage_semantically_identical(self, db):
        # Join commutation permutes AND children (structural order is
        # insertion order); variables and probabilities must agree exactly.
        plan = self._chain_plan(db, with_filter=True)

        def summary(result):
            return sorted(
                (row.values, tuple(sorted(row.lineage.variables)), confidence)
                for row, confidence in result.with_confidences(db)
            )

        assert summary(execute(plan)) == summary(execute(optimize(plan)))

    def test_column_order_preserved(self, db):
        plan = self._chain_plan(db)
        reordered = reorder_joins(plan)
        assert isinstance(reordered, Project)
        assert [c.qualified_name for c in reordered.schema] == [
            c.qualified_name for c in plan.schema
        ]

    def test_two_way_join_untouched(self, db):
        plan = Join(
            Scan(db.table("big")),
            Scan(db.table("mid")),
            col("big.k") == col("mid.k"),
        )
        assert reorder_joins(plan) is not None
        assert _scan_order(reorder_joins(plan)) == ["big", "mid"]

    def test_left_join_cluster_not_reordered(self, db):
        plan = Join(
            Join(
                Scan(db.table("big")),
                Scan(db.table("mid")),
                col("big.k") == col("mid.k"),
                kind="left",
            ),
            Scan(db.table("small")),
            col("mid.g") == col("small.g"),
        )
        reordered = reorder_joins(plan)
        assert _scan_order(reordered) == ["big", "mid", "small"]

    def test_theta_join_cluster_not_reordered(self, db):
        plan = Join(
            Join(
                Scan(db.table("big")),
                Scan(db.table("mid")),
                col("big.x") > lit(5),
            ),
            Scan(db.table("small")),
            col("mid.g") == col("small.g"),
        )
        reordered = reorder_joins(plan)
        assert _scan_order(reordered) == ["big", "mid", "small"]

    def test_implicit_join_through_sql(self, db):
        sql = (
            "SELECT big.x FROM big, mid, small "
            "WHERE big.k = mid.k AND mid.g = small.g AND small.label = 'L2'"
        )
        optimized = run_sql(db, sql)
        raw = run_sql(db, sql, optimized=False)
        assert sorted(optimized.values()) == sorted(raw.values())

    def test_disconnected_relation_joins_last(self, db):
        # small is unconnected: it must come last as a cross product.
        plan = Join(
            Join(
                Scan(db.table("big")),
                Scan(db.table("mid")),
                col("big.k") == col("mid.k"),
            ),
            Scan(db.table("small")),
            None,
            "cross",
        )
        reordered = reorder_joins(plan)
        raw = execute(plan)
        new = execute(reordered)
        assert sorted(
            repr(v) for v in raw.values()
        ) == sorted(repr(v) for v in new.values())

    def test_query_builder_round_trip(self, db):
        q = (
            Query.scan(db.table("big"))
            .join(db.table("mid"), on=col("big.k") == col("mid.k"))
            .join(db.table("small"), on=col("mid.g") == col("small.g"))
            .where(col("small.label") == lit("L0"))
            .select("big.x", "small.label")
        )
        assert sorted(q.run().values()) == sorted(
            q.run(optimized=False).values()
        )
