"""Unit tests for plan nodes and the lineage-propagating executor."""

import pytest

from repro.algebra import (
    AggregateSpec,
    Query,
    col,
    lit,
)
from repro.algebra.plan import (
    Aggregate,
    Alias,
    Filter,
    Join,
    Limit,
    Project,
    ProjectItem,
    Scan,
    SetOperation,
    Sort,
    SortKey,
)
from repro.errors import PlanError
from repro.lineage import And, Not, Or, Var
from repro.storage import Database, INTEGER, REAL, Schema, TEXT


@pytest.fixture
def db() -> Database:
    database = Database()
    people = database.create_table(
        "people", Schema.of(("name", TEXT), ("dept", TEXT), ("salary", REAL))
    )
    for name, dept, salary, conf in [
        ("ann", "eng", 100.0, 0.9),
        ("bob", "eng", 80.0, 0.8),
        ("cat", "ops", 70.0, 0.7),
        ("dan", "ops", 90.0, 0.6),
    ]:
        people.insert([name, dept, salary], confidence=conf)
    departments = database.create_table(
        "departments", Schema.of(("dept", TEXT), ("floor", INTEGER))
    )
    departments.insert(["eng", 3], confidence=0.5)
    departments.insert(["ops", 2], confidence=0.4)
    return database


class TestScanAndFilter:
    def test_scan_lineage_is_var(self, db):
        result = Query.scan(db.table("people")).run()
        assert len(result) == 4
        assert all(isinstance(row.lineage, Var) for row in result)

    def test_filter_keeps_lineage(self, db):
        result = Query.scan(db.table("people")).where(col("salary") > 85).run()
        assert sorted(row.values[0] for row in result) == ["ann", "dan"]
        assert all(isinstance(row.lineage, Var) for row in result)

    def test_filter_null_predicate_drops_row(self, db):
        db.table("people").insert([None, "eng", None], confidence=1.0)
        result = Query.scan(db.table("people")).where(col("salary") > 85).run()
        assert len(result) == 2  # NULL comparison is not true

    def test_filter_requires_boolean(self, db):
        with pytest.raises(PlanError):
            Filter(Scan(db.table("people")), col("salary") + lit(1))


class TestProject:
    def test_plain_projection(self, db):
        result = Query.scan(db.table("people")).select("name", "salary").run()
        assert result.schema.names == ("name", "salary")

    def test_computed_column_with_alias(self, db):
        result = (
            Query.scan(db.table("people"))
            .select((col("salary") * lit(2), "double"))
            .run()
        )
        assert result.schema.names == ("double",)
        assert result.rows[0].values == (200.0,)

    def test_distinct_merges_lineage_with_or(self, db):
        result = Query.scan(db.table("people")).select("dept", distinct=True).run()
        assert len(result) == 2
        for row in result:
            assert isinstance(row.lineage, Or)
            assert len(row.lineage.children) == 2

    def test_empty_projection_rejected(self, db):
        with pytest.raises(PlanError):
            Project(Scan(db.table("people")), [])


class TestJoin:
    def test_inner_join_lineage_is_and(self, db):
        q = Query.scan(db.table("people")).join(
            db.table("departments"),
            on=col("people.dept") == col("departments.dept"),
        )
        result = q.run()
        assert len(result) == 4
        assert all(isinstance(row.lineage, And) for row in result)

    def test_cross_join_cardinality(self, db):
        result = Query.scan(db.table("people")).cross_join(
            db.table("departments")
        ).run()
        assert len(result) == 8

    def test_left_join_unmatched_padded(self, db):
        db.table("people").insert(["eve", "hr", 50.0], confidence=1.0)
        q = Query.scan(db.table("people")).join(
            db.table("departments"),
            on=col("people.dept") == col("departments.dept"),
            kind="left",
        )
        result = q.run()
        eve_rows = [row for row in result if row.values[0] == "eve"]
        assert len(eve_rows) == 1
        assert eve_rows[0].values[3:] == (None, None)
        assert isinstance(eve_rows[0].lineage, Var)

    def test_left_join_matched_also_emits_absent_world(self, db):
        q = Query.scan(db.table("people")).join(
            db.table("departments"),
            on=col("people.dept") == col("departments.dept"),
            kind="left",
        )
        result = q.run()
        ann_rows = [row for row in result if row.values[0] == "ann"]
        # One matched row plus one NULL-padded "department record wrong" row.
        assert len(ann_rows) == 2
        padded = [row for row in ann_rows if row.values[3] is None]
        assert len(padded) == 1
        assert any(
            isinstance(child, Not) for child in padded[0].lineage.children
        )

    def test_theta_join_falls_back_to_nested_loop(self, db):
        q = Query.scan(db.table("people")).join(
            db.table("departments"),
            on=col("salary") > lit(75),
        )
        result = q.run()
        assert len(result) == 6  # ann, bob, dan each match both departments

    def test_join_requires_condition(self, db):
        with pytest.raises(PlanError):
            Join(Scan(db.table("people")), Scan(db.table("departments")), None)

    def test_cross_join_rejects_condition(self, db):
        with pytest.raises(PlanError):
            Join(
                Scan(db.table("people")),
                Scan(db.table("departments")),
                col("salary") > lit(0),
                "cross",
            )

    def test_null_keys_do_not_match(self, db):
        db.table("people").insert(["nul", None, 10.0], confidence=1.0)
        q = Query.scan(db.table("people")).join(
            db.table("departments"),
            on=col("people.dept") == col("departments.dept"),
        )
        assert all(row.values[0] != "nul" for row in q.run())


class TestSetOperations:
    def test_union_all_concatenates(self, db):
        left = Query.scan(db.table("people")).select("dept")
        right = Query.scan(db.table("departments")).select("dept")
        assert len(left.union(right, all=True).run()) == 6

    def test_union_merges_duplicates(self, db):
        left = Query.scan(db.table("people")).select("dept")
        right = Query.scan(db.table("departments")).select("dept")
        result = left.union(right).run()
        assert len(result) == 2
        for row in result:
            assert isinstance(row.lineage, Or)
            assert len(row.lineage.children) == 3  # 2 people + 1 department

    def test_intersect(self, db):
        left = Query.scan(db.table("people")).select("dept")
        right = Query.scan(db.table("departments")).select("dept")
        result = left.intersect(right).run()
        assert sorted(row.values[0] for row in result) == ["eng", "ops"]
        assert all(isinstance(row.lineage, And) for row in result)

    def test_except_keeps_probabilistic_row(self, db):
        left = Query.scan(db.table("people")).select("dept")
        right = Query.scan(db.table("departments")).select("dept")
        result = left.except_(right).run()
        # Both depts appear on the right, but the right tuples are uncertain:
        # rows survive with lineage AND(left-or, NOT(right-or)).
        assert len(result) == 2
        confidences = result.confidences(db)
        assert all(0.0 < confidence < 1.0 for confidence in confidences)

    def test_except_certain_right_gives_zero_confidence(self, db):
        db.table("departments").set_confidence(
            next(iter(db.table("departments").scan())).tid, 1.0
        )
        left = Query.scan(db.table("people")).select("dept")
        right = Query.scan(db.table("departments")).select("dept")
        result = left.except_(right).run()
        by_value = {row.values[0]: row.confidence(db.confidences(row.lineage.variables)) for row in result}
        assert by_value["eng"] == pytest.approx(0.0)

    def test_arity_mismatch_rejected(self, db):
        left = Query.scan(db.table("people")).select("dept", "salary")
        right = Query.scan(db.table("departments")).select("dept")
        with pytest.raises(PlanError):
            left.union(right)

    def test_type_mismatch_rejected(self, db):
        left = Query.scan(db.table("people")).select("name")
        right = Query.scan(db.table("departments")).select("floor")
        with pytest.raises(PlanError):
            left.union(right)

    def test_numeric_widening(self, db):
        left = Query.scan(db.table("departments")).select("floor")
        right = Query.scan(db.table("people")).select("salary")
        result = left.union(right, all=True).run()
        assert all(isinstance(row.values[0], float) for row in result)


class TestAggregate:
    def test_group_lineage_is_or(self, db):
        result = (
            Query.scan(db.table("people"))
            .group_by(["dept"], [AggregateSpec("COUNT")])
            .run()
        )
        assert len(result) == 2
        assert all(isinstance(row.lineage, Or) for row in result)

    def test_aggregate_values(self, db):
        result = (
            Query.scan(db.table("people"))
            .group_by(
                ["dept"],
                [
                    AggregateSpec("COUNT", alias="n"),
                    AggregateSpec("SUM", col("salary"), "total"),
                    AggregateSpec("AVG", col("salary"), "mean"),
                    AggregateSpec("MIN", col("salary"), "lo"),
                    AggregateSpec("MAX", col("salary"), "hi"),
                ],
            )
            .run()
        )
        by_dept = {row.values[0]: row.values[1:] for row in result}
        assert by_dept["eng"] == (2, 180.0, 90.0, 80.0, 100.0)

    def test_count_skips_nulls_sum_ignores_nulls(self, db):
        db.table("people").insert(["eve", "eng", None], confidence=1.0)
        result = (
            Query.scan(db.table("people"))
            .group_by(
                ["dept"],
                [
                    AggregateSpec("COUNT", alias="rows"),
                    AggregateSpec("COUNT", col("salary"), "salaries"),
                ],
            )
            .run()
        )
        by_dept = {row.values[0]: row.values[1:] for row in result}
        assert by_dept["eng"] == (3, 2)

    def test_distinct_aggregate(self, db):
        result = (
            Query.scan(db.table("people"))
            .aggregate(AggregateSpec("COUNT", col("dept"), "depts", distinct=True))
            .run()
        )
        assert result.rows[0].values == (2,)

    def test_global_aggregate_on_empty_input(self, db):
        result = (
            Query.scan(db.table("people"))
            .where(col("salary") > 10_000)
            .aggregate(
                AggregateSpec("COUNT", alias="n"),
                AggregateSpec("SUM", col("salary"), "total"),
            )
            .run()
        )
        assert result.rows[0].values == (0, None)
        assert result.rows[0].confidence({}) == 1.0

    def test_sum_requires_numeric(self, db):
        with pytest.raises(PlanError):
            Aggregate(
                Scan(db.table("people")),
                [],
                [AggregateSpec("SUM", col("name"))],
            )

    def test_count_star_requires_no_argument(self):
        with pytest.raises(PlanError):
            AggregateSpec("SUM")


class TestSortAndLimit:
    def test_order_by_descending(self, db):
        result = (
            Query.scan(db.table("people"))
            .order_by(("salary", True))
            .select("name")
            .run()
        )
        assert [row.values[0] for row in result] == ["ann", "dan", "bob", "cat"]

    def test_multi_key_sort(self, db):
        result = (
            Query.scan(db.table("people"))
            .order_by("dept", ("salary", True))
            .select("name")
            .run()
        )
        assert [row.values[0] for row in result] == ["ann", "bob", "dan", "cat"]

    def test_nulls_first_ascending(self, db):
        db.table("people").insert(["eve", "eng", None], confidence=1.0)
        result = Query.scan(db.table("people")).order_by("salary").run()
        assert result.rows[0].values[0] == "eve"

    def test_limit_and_offset(self, db):
        result = (
            Query.scan(db.table("people"))
            .order_by("name")
            .limit(2, offset=1)
            .run()
        )
        assert [row.values[0] for row in result] == ["bob", "cat"]

    def test_negative_limit_rejected(self, db):
        with pytest.raises(PlanError):
            Limit(Scan(db.table("people")), -1)


class TestAliasAndExplain:
    def test_alias_requalifies(self, db):
        q = Query.scan(db.table("people")).select("name").alias("p")
        result = q.run()
        assert result.schema[0].table == "p"

    def test_empty_alias_rejected(self, db):
        with pytest.raises(PlanError):
            Alias(Scan(db.table("people")), "")

    def test_explain_shows_tree(self, db):
        text = (
            Query.scan(db.table("people"))
            .where(col("salary") > 50)
            .select("name")
            .explain(optimized=False)
        )
        assert "Project" in text and "Filter" in text and "Scan(people)" in text


class TestResultSet:
    def test_base_tuples_union(self, db):
        result = Query.scan(db.table("people")).run()
        assert len(result.base_tuples()) == 4

    def test_confidences_from_database(self, db):
        result = Query.scan(db.table("people")).run()
        assert sorted(result.confidences(db)) == [0.6, 0.7, 0.8, 0.9]

    def test_confidences_from_mapping(self, db):
        result = Query.scan(db.table("people")).run()
        probabilities = {tid: 0.5 for tid in result.base_tuples()}
        assert result.confidences(probabilities) == [0.5] * 4

    def test_values(self, db):
        result = Query.scan(db.table("departments")).run()
        assert ("eng", 3) in result.values()
