"""The socket server: handshake, dispatch, errors, admission control."""

from __future__ import annotations

import time

import pytest

from repro.errors import AdmissionError, ProtocolError
from repro.obs import get_metrics
from repro.server import PCQEServer, ServerClient, ServerReplyError
from repro.server.protocol import recv_frame, send_frame
from repro.workload import venture_capital_database

import socket


@pytest.fixture()
def served():
    scenario = venture_capital_database()
    server = PCQEServer(scenario.db, scenario.policies, port=0).start()
    yield server, scenario
    server.stop()


def _client(server, **kwargs) -> ServerClient:
    kwargs.setdefault("user", "bob")
    kwargs.setdefault("purpose", "investment")
    return ServerClient(server.host, server.port, **kwargs)


class TestHandshake:
    def test_hello_reports_session_seq_and_role(self, served):
        server, _ = served
        with _client(server) as client:
            assert client.session_id >= 1
            assert client.seq >= 1
            assert client.role == "Manager"

    def test_first_frame_must_be_hello(self, served):
        server, _ = served
        sock = socket.create_connection((server.host, server.port), timeout=10)
        try:
            send_frame(sock, {"op": "ask", "sql": "SELECT 1"})
            reply = recv_frame(sock)
            assert reply["ok"] is False
            assert reply["error"]["type"] == "ProtocolError"
            assert "hello" in reply["error"]["message"]
        finally:
            sock.close()

    def test_unknown_user_is_a_structured_error(self, served):
        server, _ = served
        with pytest.raises(ServerReplyError) as info:
            _client(server, user="mallory")
        assert info.value.type == "UnknownUserError"

    def test_sessions_get_distinct_ids(self, served):
        server, _ = served
        with _client(server) as a, _client(server) as b:
            assert a.session_id != b.session_id


class TestDispatch:
    def test_ask_releases_rows_with_confidences(self, served):
        server, scenario = served
        with _client(server) as client:
            reply = client.ask(scenario.QUERY, fraction=0.0)
            assert reply["status"] == "satisfied"
            assert len(reply["rows"]) == reply["released"]
            assert len(reply["confidences"]) == reply["released"]

    def test_unknown_op_is_rejected(self, served):
        server, _ = served
        with _client(server) as client:
            with pytest.raises(ServerReplyError) as info:
                client.request({"op": "explode"})
            assert info.value.type == "ProtocolError"

    def test_sql_errors_come_back_structured(self, served):
        server, _ = served
        with _client(server) as client:
            with pytest.raises(ServerReplyError) as info:
                client.sql("SELECT nonsense FROM nowhere")
            assert "nowhere" in str(info.value)
            # The connection survives an application error.
            assert client.sql("SELECT * FROM Proposal")["count"] == 6

    def test_profile_attaches_a_stage_report(self, served):
        server, scenario = served
        with _client(server) as client:
            reply = client.profile(scenario.QUERY, fraction=0.0)
            assert "pcqe.execute" in reply["profile"]

    def test_metrics_exposition_includes_server_series(self, served):
        server, _ = served
        with _client(server) as client:
            client.sql("SELECT * FROM Proposal")
            text = client.metrics()
        assert "server_requests" in text
        assert "server_request_latency_seconds" in text

    def test_dml_and_refresh_move_the_session_seq(self, served):
        server, _ = served
        with _client(server) as writer, _client(server) as reader:
            pinned = reader.seq
            writer.sql("INSERT INTO Proposal VALUES ('NewCo', 'P9', 5.0)")
            assert reader.sql("SELECT * FROM Proposal")["count"] == 6
            assert reader.seq == pinned
            assert reader.refresh() > pinned
            assert reader.sql("SELECT * FROM Proposal")["count"] == 7


class TestAdmissionControl:
    def test_admit_rejects_when_projection_exceeds_deadline(self, served):
        server, _ = served
        server._service_ewma = 10.0  # seconds per request
        server._inflight = server.workers  # a full pool ahead of us
        try:
            with pytest.raises(AdmissionError) as info:
                server._admit("ask", 50.0)
        finally:
            server._inflight = 0
        error = info.value
        assert error.deadline_ms == 50.0
        assert error.projected_wait_ms >= 10_000.0 * (1 - 1e-9)
        assert error.queue_depth == server.workers
        assert set(error.details()) == {
            "deadline_ms",
            "projected_wait_ms",
            "queue_depth",
        }

    def test_admit_accepts_with_headroom_and_counts_inflight(self, served):
        server, _ = served
        budget = server._admit("ask", 60_000.0)
        assert budget is not None and budget.deadline is not None
        assert server._inflight == 1
        server._finish(0.01)
        assert server._inflight == 0
        assert server._service_ewma > 0.0

    def test_no_deadline_skips_the_deadline_gate(self, served):
        # A slow EWMA alone cannot reject a request without a deadline;
        # only the load shedder's queue-depth limit applies (and below
        # it, the request is admitted no matter the projection).
        server, _ = served
        server._service_ewma = 100.0
        server._inflight = server.workers  # busy, but under the shed limit
        try:
            assert server._admit("ask", None) is None
        finally:
            server._inflight = 0

    def test_bad_deadline_is_a_protocol_error(self, served):
        server, _ = served
        with pytest.raises(ProtocolError):
            server._admit("ask", -5)
        with pytest.raises(ProtocolError):
            server._admit("ask", "soon")

    def test_rejection_travels_the_wire_with_details(self, served):
        server, _ = served
        with _client(server) as client:
            server._service_ewma = 10.0
            server._inflight = server.workers
            try:
                with pytest.raises(ServerReplyError) as info:
                    client.ask("SELECT * FROM Proposal", deadline_ms=1.0)
            finally:
                server._inflight = 0
            assert info.value.type == "AdmissionError"
            assert info.value.error["queue_depth"] == server.workers
            assert info.value.error["projected_wait_ms"] > 1.0
            assert get_metrics().counter("server.rejected").value >= 1


class TestLifecycle:
    def test_stop_releases_session_pins(self):
        scenario = venture_capital_database()
        server = PCQEServer(scenario.db, scenario.policies, port=0).start()
        client = _client(server)
        pinned = client.seq
        server.stop()
        # After stop, no generation but the current survives (pins freed).
        assert server.mvcc.generation_seqs() == [server.mvcc.current_seq]
        assert pinned <= server.mvcc.current_seq

    def test_double_start_is_an_error(self, served):
        server, _ = served
        from repro.errors import ServerError

        with pytest.raises(ServerError):
            server.start()

    def test_stop_is_idempotent(self):
        scenario = venture_capital_database()
        server = PCQEServer(scenario.db, scenario.policies, port=0).start()
        server.stop()
        server.stop()
