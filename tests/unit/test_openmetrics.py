"""Unit tests for the OpenMetrics exposition, parser, and server."""

import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry, MetricsServer
from repro.obs.export import (
    OpenMetricsParseError,
    parse_openmetrics,
    render_openmetrics,
)
from repro.obs.export.openmetrics import (
    sanitize_label_value,
    sanitize_metric_name,
)
from repro.obs.export.server import CONTENT_TYPE


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("solver.greedy.runs").inc(3)
    registry.gauge("policy.active").set(7)
    histogram = registry.histogram("ask.latency_ms", buckets=[1.0, 10.0, 100.0])
    for value in (0.5, 2.0, 5.0, 50.0, 500.0):
        histogram.observe(value)
    return registry


class TestSanitization:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("solver.greedy.runs") == "solver_greedy_runs"

    def test_leading_digit_gains_prefix(self):
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("") == "_"

    def test_arbitrary_characters(self):
        assert sanitize_metric_name("a-b c/d") == "a_b_c_d"

    def test_label_value_escaping(self):
        assert sanitize_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


class TestRenderAndParse:
    def test_round_trip_through_strict_parser(self):
        text = render_openmetrics(populated_registry())
        families = parse_openmetrics(text)
        assert families["solver_greedy_runs"]["type"] == "counter"
        assert families["policy_active"]["type"] == "gauge"
        assert families["ask_latency_ms"]["type"] == "histogram"

    def test_counter_sample_ends_in_total(self):
        families = parse_openmetrics(render_openmetrics(populated_registry()))
        ((name, _labels, value),) = families["solver_greedy_runs"]["samples"]
        assert name == "solver_greedy_runs_total"
        assert value == 3.0

    def test_help_preserves_the_dotted_name(self):
        families = parse_openmetrics(render_openmetrics(populated_registry()))
        assert families["solver_greedy_runs"]["help"] == "solver.greedy.runs"

    def test_histogram_buckets_are_cumulative_and_inf_equals_count(self):
        families = parse_openmetrics(render_openmetrics(populated_registry()))
        samples = families["ask_latency_ms"]["samples"]
        buckets = [
            (labels["le"], value)
            for name, labels, value in samples
            if name == "ask_latency_ms_bucket"
        ]
        assert buckets == [("1", 1.0), ("10", 3.0), ("100", 4.0), ("+Inf", 5.0)]
        count = next(
            value for name, _l, value in samples if name == "ask_latency_ms_count"
        )
        assert count == 5.0

    def test_quantile_gauges_are_exposed(self):
        families = parse_openmetrics(render_openmetrics(populated_registry()))
        for quantile in ("p50", "p95", "p99"):
            assert families[f"ask_latency_ms_{quantile}"]["type"] == "gauge"

    def test_name_collision_disambiguates(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        registry.counter("a_b").inc()
        families = parse_openmetrics(render_openmetrics(registry))
        assert "a_b" in families and "a_b_2" in families

    def test_empty_registry_renders_just_eof(self):
        text = render_openmetrics(MetricsRegistry())
        assert text == "# EOF\n"
        assert parse_openmetrics(text) == {}


class TestReplicationMetricsExposition:
    """The replication family survives the strict round trip intact."""

    def replication_registry(self) -> MetricsRegistry:
        from repro.obs import TIMING_BUCKETS

        registry = MetricsRegistry()
        registry.gauge("repl.lag_frames").set(4)
        registry.gauge("server.epoch").set(2)
        registry.counter("repl.scrub.divergences").inc(1)
        registry.counter("repl.frames_applied").inc(9)
        histogram = registry.histogram("repl.apply_seconds", TIMING_BUCKETS)
        for value in (0.0004, 0.002, 0.03):
            histogram.observe(value)
        return registry

    def test_round_trip_through_strict_parser(self):
        families = parse_openmetrics(
            render_openmetrics(self.replication_registry())
        )
        assert families["repl_lag_frames"]["type"] == "gauge"
        assert families["server_epoch"]["type"] == "gauge"
        assert families["repl_scrub_divergences"]["type"] == "counter"
        assert families["repl_apply_seconds"]["type"] == "histogram"

    def test_values_and_counts_survive(self):
        families = parse_openmetrics(
            render_openmetrics(self.replication_registry())
        )
        ((_n, _l, lag),) = families["repl_lag_frames"]["samples"]
        assert lag == 4.0
        ((_n, _l, epoch),) = families["server_epoch"]["samples"]
        assert epoch == 2.0
        ((name, _l, divergences),) = families["repl_scrub_divergences"][
            "samples"
        ]
        assert name == "repl_scrub_divergences_total"
        assert divergences == 1.0
        count = next(
            value
            for name, _l, value in families["repl_apply_seconds"]["samples"]
            if name == "repl_apply_seconds_count"
        )
        assert count == 3.0

    def test_live_replication_metrics_render_cleanly(self):
        """Whatever a real replica emitted parses strictly — guards
        against a counter name drifting into something unsanitizable."""
        from repro.obs import get_metrics, set_metrics

        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            registry.gauge("repl.lag_frames").set(0)
            registry.counter("repl.stale_frames_rejected").inc()
            registry.counter("repl.duplicate_frames").inc()
            registry.counter("server.fenced").inc()
            registry.counter("server.sync_timeouts").inc()
            registry.counter("repl.scrub.corruption").inc()
            families = parse_openmetrics(render_openmetrics(registry))
            assert "repl_stale_frames_rejected" in families
            assert "server_fenced" in families
            assert "repl_scrub_corruption" in families
        finally:
            set_metrics(previous)


class TestStrictParserRejections:
    def test_missing_eof(self):
        with pytest.raises(OpenMetricsParseError):
            parse_openmetrics("# TYPE a counter\na_total 1\n")

    def test_content_after_eof(self):
        with pytest.raises(OpenMetricsParseError):
            parse_openmetrics("# EOF\n# TYPE a counter\na_total 1\n# EOF\n")

    def test_blank_line(self):
        with pytest.raises(OpenMetricsParseError):
            parse_openmetrics("# TYPE a counter\n\na_total 1\n# EOF\n")

    def test_sample_without_type(self):
        with pytest.raises(OpenMetricsParseError):
            parse_openmetrics("orphan 1\n# EOF\n")

    def test_duplicate_type(self):
        with pytest.raises(OpenMetricsParseError):
            parse_openmetrics(
                "# TYPE a counter\n# TYPE a counter\na_total 1\n# EOF\n"
            )

    def test_counter_sample_must_end_in_total(self):
        with pytest.raises(OpenMetricsParseError):
            parse_openmetrics("# TYPE a counter\na 1\n# EOF\n")

    def test_bad_sample_value(self):
        with pytest.raises(OpenMetricsParseError):
            parse_openmetrics("# TYPE a gauge\na banana\n# EOF\n")

    def test_histogram_without_inf_bucket(self):
        with pytest.raises(OpenMetricsParseError):
            parse_openmetrics(
                "# TYPE h histogram\n"
                'h_bucket{le="1"} 1\n'
                "h_count 1\nh_sum 0.5\n# EOF\n"
            )

    def test_histogram_non_cumulative_buckets(self):
        with pytest.raises(OpenMetricsParseError):
            parse_openmetrics(
                "# TYPE h histogram\n"
                'h_bucket{le="1"} 3\n'
                'h_bucket{le="+Inf"} 2\n'
                "h_count 2\nh_sum 0.5\n# EOF\n"
            )

    def test_histogram_inf_bucket_must_equal_count(self):
        with pytest.raises(OpenMetricsParseError):
            parse_openmetrics(
                "# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 2\n'
                "h_count 3\nh_sum 0.5\n# EOF\n"
            )

    def test_duplicate_label(self):
        with pytest.raises(OpenMetricsParseError):
            parse_openmetrics(
                '# TYPE h histogram\nh_bucket{le="1",le="2"} 1\n# EOF\n'
            )


class TestMetricsServer:
    def test_serves_the_registry_as_openmetrics(self):
        registry = populated_registry()
        with MetricsServer(registry, port=0) as server:
            with urllib.request.urlopen(server.url, timeout=5) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
        families = parse_openmetrics(body)
        assert families["solver_greedy_runs"]["type"] == "counter"

    def test_unknown_path_is_404(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            url = server.url.replace("/metrics", "/anything")
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(url, timeout=5)
            assert info.value.code == 404

    def test_double_start_raises_and_stop_is_idempotent(self):
        server = MetricsServer(MetricsRegistry(), port=0)
        server.start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()
        server.stop()
