"""Unit tests for the exception hierarchy contract.

Applications catch :class:`~repro.errors.ReproError` to handle anything the
library raises; these tests pin that contract and the subsystem groupings.
"""

import inspect

import pytest

from repro import errors


def all_error_classes():
    return [
        obj
        for _name, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, Exception)
    ]


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for cls in all_error_classes():
            assert issubclass(cls, errors.ReproError), cls.__name__

    def test_all_exports_are_defined(self):
        for name in errors.__all__:
            assert hasattr(errors, name), name

    def test_every_public_error_is_exported(self):
        exported = set(errors.__all__)
        for cls in all_error_classes():
            assert cls.__name__ in exported, cls.__name__

    def test_subsystem_groupings(self):
        assert issubclass(errors.UnknownColumnError, errors.SchemaError)
        assert issubclass(errors.AmbiguousColumnError, errors.SchemaError)
        assert issubclass(errors.UnknownTupleError, errors.StorageError)
        assert issubclass(errors.SqlSyntaxError, errors.SqlError)
        assert issubclass(errors.BindError, errors.SqlError)
        assert issubclass(errors.PlanError, errors.SqlError)
        assert issubclass(errors.UnknownRoleError, errors.PolicyError)
        assert issubclass(errors.NoApplicablePolicyError, errors.PolicyError)
        assert issubclass(
            errors.InfeasibleIncrementError, errors.IncrementError
        )
        assert issubclass(
            errors.ImprovementRejectedError, errors.IncrementError
        )

    def test_invalid_confidence_is_also_value_error(self):
        # Callers using plain `except ValueError` still catch range bugs.
        assert issubclass(errors.InvalidConfidenceError, ValueError)

    def test_syntax_error_formats_position(self):
        error = errors.SqlSyntaxError("boom", line=3, column=7)
        assert "line 3" in str(error)
        assert "column 7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_syntax_error_without_position(self):
        error = errors.SqlSyntaxError("boom")
        assert str(error) == "boom"


class TestCatchability:
    def test_one_except_clause_covers_the_library(self):
        from repro.sql import run_sql
        from repro.storage import Database

        db = Database()
        with pytest.raises(errors.ReproError):
            run_sql(db, "SELECT broken FROM nowhere")
        with pytest.raises(errors.ReproError):
            run_sql(db, "NOT EVEN SQL")

    def test_provenance_error_reachable_via_base(self):
        from repro.trust import DataSource

        with pytest.raises(errors.ReproError):
            DataSource("x", trust=99.0)

    def test_cli_command_error_reachable_via_base(self):
        from repro.cli import CommandShell

        with pytest.raises(errors.ReproError):
            CommandShell().execute_line("frobnicate")
