"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import Token, TokenType, tokenize


def kinds(sql):
    return [(token.type, token.value) for token in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_uppercased(self):
        assert kinds("select from") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
        ]

    def test_identifiers_keep_case(self):
        assert kinds("Proposal") == [(TokenType.IDENTIFIER, "Proposal")]

    def test_integer_and_float(self):
        assert kinds("42 4.5 .5 1e3 2E-2") == [
            (TokenType.INTEGER, "42"),
            (TokenType.FLOAT, "4.5"),
            (TokenType.FLOAT, ".5"),
            (TokenType.FLOAT, "1e3"),
            (TokenType.FLOAT, "2E-2"),
        ]

    def test_operators(self):
        values = [value for _, value in kinds("= <> != <= >= < > + - * / %")]
        assert values == ["=", "<>", "!=", "<=", ">=", "<", ">", "+", "-", "*", "/", "%"]

    def test_concat_operator(self):
        assert kinds("a || b")[1] == (TokenType.OPERATOR, "||")

    def test_punctuation(self):
        values = [value for _, value in kinds("( ) , .")]
        assert values == ["(", ")", ",", "."]

    def test_end_token(self):
        tokens = tokenize("x")
        assert tokens[-1].type is TokenType.END


class TestStrings:
    def test_simple_string(self):
        assert kinds("'hello'") == [(TokenType.STRING, "hello")]

    def test_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_quoted_identifier(self):
        assert kinds('"weird name"') == [(TokenType.IDENTIFIER, "weird name")]

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"oops')

    def test_empty_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('""')


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert kinds("select -- comment\n x") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.IDENTIFIER, "x"),
        ]

    def test_comment_at_end(self):
        assert kinds("x -- trailing") == [(TokenType.IDENTIFIER, "x")]

    def test_positions_tracked(self):
        tokens = tokenize("select\n  foo")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            tokenize("select @")
        assert "line 1" in str(excinfo.value)


class TestTokenHelpers:
    def test_is_keyword(self):
        token = tokenize("SELECT")[0]
        assert token.is_keyword("SELECT")
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("FROM")
