"""Unit tests for the policy engine (model, store, enforcement)."""

import pytest

from repro.algebra.rows import AnnotatedTuple, ResultSet
from repro.errors import (
    NoApplicablePolicyError,
    PolicyError,
    UnknownPurposeError,
    UnknownRoleError,
    UnknownUserError,
)
from repro.lineage import var
from repro.policy import (
    ConfidencePolicy,
    FilterOutcome,
    PolicyEvaluator,
    PolicyStore,
)
from repro.storage import Schema, TEXT, TupleId


@pytest.fixture
def store() -> PolicyStore:
    s = PolicyStore()
    s.add_role("Secretary")
    s.add_role("Manager", inherits=["Secretary"])
    s.add_purpose("analysis")
    s.add_purpose("decision-making")
    s.add_purpose("investment", parent="decision-making")
    s.add_user("alice", roles=["Secretary"])
    s.add_user("bob", roles=["Manager"])
    s.add_policy("Secretary", "analysis", 0.05)
    s.add_policy("Manager", "investment", 0.06)
    return s


class TestConfidencePolicy:
    def test_admits_strictly_above(self):
        policy = ConfidencePolicy("r", "p", 0.5)
        assert policy.admits(0.51)
        assert not policy.admits(0.5)

    def test_threshold_validated(self):
        with pytest.raises(PolicyError):
            ConfidencePolicy("r", "p", 1.5)

    def test_empty_fields_rejected(self):
        with pytest.raises(PolicyError):
            ConfidencePolicy("", "p", 0.5)
        with pytest.raises(PolicyError):
            ConfidencePolicy("r", "", 0.5)

    def test_display(self):
        assert str(ConfidencePolicy("Manager", "investment", 0.06)) == (
            "<Manager, investment, 0.06>"
        )


class TestRoleRegistry:
    def test_role_closure_includes_juniors(self, store):
        assert store.role_closure("Manager") == {"Manager", "Secretary"}
        assert store.role_closure("Secretary") == {"Secretary"}

    def test_duplicate_role_rejected(self, store):
        with pytest.raises(PolicyError):
            store.add_role("Manager")

    def test_inherit_unknown_role_rejected(self, store):
        with pytest.raises(UnknownRoleError):
            store.add_role("CEO", inherits=["Missing"])

    def test_unknown_role_lookup(self, store):
        with pytest.raises(UnknownRoleError):
            store.role("Missing")

    def test_deep_inheritance(self, store):
        store.add_role("VP", inherits=["Manager"])
        assert store.role_closure("VP") == {"VP", "Manager", "Secretary"}


class TestPurposeTree:
    def test_ancestry(self, store):
        assert store.purpose_ancestry("investment") == [
            "investment",
            "decision-making",
        ]

    def test_unknown_parent_rejected(self, store):
        with pytest.raises(UnknownPurposeError):
            store.add_purpose("x", parent="missing")

    def test_duplicate_purpose_rejected(self, store):
        with pytest.raises(PolicyError):
            store.add_purpose("analysis")


class TestUsers:
    def test_grant_and_revoke(self, store):
        store.add_user("carol")
        store.grant_role("carol", "Secretary")
        assert "Secretary" in store.user("carol").roles
        store.revoke_role("carol", "Secretary")
        assert "Secretary" not in store.user("carol").roles

    def test_unknown_user(self, store):
        with pytest.raises(UnknownUserError):
            store.user("nobody")

    def test_grant_unknown_role(self, store):
        store.add_user("carol")
        with pytest.raises(UnknownRoleError):
            store.grant_role("carol", "Missing")


class TestPolicySelection:
    def test_direct_policy(self, store):
        assert store.threshold_for("alice", "analysis") == 0.05

    def test_manager_inherits_secretary_policy(self, store):
        # Manager's closure includes Secretary, so the analysis policy applies.
        assert store.threshold_for("bob", "analysis") == 0.05

    def test_purpose_parent_policy_covers_child(self, store):
        store.add_policy("Secretary", "decision-making", 0.5)
        assert store.threshold_for("alice", "investment") == 0.5

    def test_strictest_combination(self, store):
        store.add_policy("Secretary", "investment", 0.9)
        # bob holds Manager (0.06 on investment) and inherits Secretary (0.9).
        assert store.threshold_for("bob", "investment") == 0.9

    def test_most_specific_combination(self):
        s = PolicyStore(combination="most_specific")
        s.add_role("R")
        s.add_purpose("care")
        s.add_purpose("surgery", parent="care")
        s.add_user("u", roles=["R"])
        s.add_policy("R", "care", 0.9)
        s.add_policy("R", "surgery", 0.4)
        # The nearer purpose wins even though it is laxer.
        assert s.threshold_for("u", "surgery") == 0.4

    def test_deny_by_default(self, store):
        with pytest.raises(NoApplicablePolicyError):
            store.threshold_for("alice", "investment")

    def test_default_threshold(self):
        s = PolicyStore(default_threshold=0.2)
        s.add_role("R")
        s.add_purpose("p")
        s.add_user("u", roles=["R"])
        assert s.threshold_for("u", "p") == 0.2

    def test_role_as_subject(self, store):
        assert (
            store.threshold_for("Manager", "investment", subject_is_user=False)
            == 0.06
        )

    def test_select_policy_returns_matching(self, store):
        policy = store.select_policy("bob", "investment")
        assert policy.role == "Manager"
        assert policy.threshold == 0.06

    def test_select_policy_synthesizes_default(self):
        s = PolicyStore(default_threshold=0.3)
        s.add_role("R")
        s.add_purpose("p")
        s.add_user("u", roles=["R"])
        assert s.select_policy("u", "p").role == "*"

    def test_invalid_combination_mode(self):
        with pytest.raises(PolicyError):
            PolicyStore(combination="nonsense")


def _result_set(confidence_by_value):
    rows = []
    probabilities = {}
    for index, value in enumerate(confidence_by_value):
        tid = TupleId("t", index)
        rows.append(AnnotatedTuple((f"row{index}",), var(tid)))
        probabilities[tid] = value
    schema = Schema.of(("label", TEXT))
    return ResultSet(schema, rows), probabilities


class TestEnforcement:
    def test_partition(self, store):
        result, probabilities = _result_set([0.02, 0.055, 0.5])
        evaluator = PolicyEvaluator(store)
        outcome = evaluator.evaluate(result, probabilities, "alice", "analysis")
        assert outcome.threshold == 0.05
        assert len(outcome.released) == 2
        assert len(outcome.withheld) == 1

    def test_strictly_above(self, store):
        result, probabilities = _result_set([0.05])
        outcome = PolicyEvaluator.apply_threshold(result, probabilities, 0.05)
        assert len(outcome.released) == 0

    def test_fractions_and_shortfall(self, store):
        result, probabilities = _result_set([0.9, 0.9, 0.01, 0.01])
        outcome = PolicyEvaluator.apply_threshold(result, probabilities, 0.5)
        assert outcome.released_fraction == 0.5
        assert outcome.satisfies(0.5)
        assert not outcome.satisfies(0.75)
        assert outcome.shortfall(0.75) == 1
        assert outcome.shortfall(1.0) == 2
        assert outcome.shortfall(0.25) == 0

    def test_empty_result_is_satisfied(self, store):
        result, probabilities = _result_set([])
        outcome = PolicyEvaluator.apply_threshold(result, probabilities, 0.5)
        assert outcome.released_fraction == 1.0
        assert outcome.satisfies(1.0)

    def test_invalid_threshold(self, store):
        result, probabilities = _result_set([0.5])
        with pytest.raises(PolicyError):
            PolicyEvaluator.apply_threshold(result, probabilities, 1.5)
