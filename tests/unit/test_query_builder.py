"""Unit tests for the fluent Query builder API."""

import pytest

from repro.algebra import AggregateSpec, Query, col, lit
from repro.errors import PlanError
from repro.storage import Database, REAL, Schema, TEXT


@pytest.fixture
def db() -> Database:
    database = Database()
    table = database.create_table(
        "sales", Schema.of(("region", TEXT), ("amt", REAL))
    )
    for region, amount, confidence in [
        ("east", 10.0, 0.9),
        ("east", 20.0, 0.8),
        ("west", 5.0, 0.7),
        ("west", 5.0, 0.6),
    ]:
        table.insert([region, amount], confidence=confidence)
    return database


class TestBuilderOperators:
    def test_where_select_chain(self, db):
        q = (
            Query.scan(db.table("sales"))
            .where(col("amt") > lit(7.0))
            .select("region", ("amt", "amount"))
        )
        result = q.run()
        assert result.schema.names == ("region", "amount")
        assert len(result) == 2

    def test_select_requires_items(self, db):
        with pytest.raises(PlanError):
            Query.scan(db.table("sales")).select()

    def test_distinct_helper(self, db):
        result = Query.scan(db.table("sales")).distinct().run()
        assert len(result) == 3  # the duplicate west row merges

    def test_group_by_and_aggregate(self, db):
        q = Query.scan(db.table("sales")).group_by(
            ["region"],
            [AggregateSpec("SUM", col("amt"), "total")],
        )
        assert sorted(q.run().values()) == [("east", 30.0), ("west", 10.0)]

    def test_global_aggregate(self, db):
        q = Query.scan(db.table("sales")).aggregate(
            AggregateSpec("COUNT", alias="n")
        )
        assert q.run().values() == [(4,)]

    def test_cross_join_with_alias(self, db):
        result = (
            Query.scan(db.table("sales"))
            .cross_join(Query.scan(db.table("sales"), alias="other"))
            .run()
        )
        assert len(result) == 16

    def test_self_cross_join_without_alias_rejected(self, db):
        from repro.errors import DuplicateColumnError

        with pytest.raises(DuplicateColumnError):
            Query.scan(db.table("sales")).cross_join(db.table("sales"))

    def test_join_accepts_table_directly(self, db):
        other = db.create_table("regions", Schema.of(("region", TEXT)))
        other.insert(["east"])
        q = Query.scan(db.table("sales")).join(
            other, on=col("sales.region") == col("regions.region")
        )
        assert len(q.run()) == 2

    def test_set_operations(self, db):
        east = Query.scan(db.table("sales")).where(
            col("region") == lit("east")
        ).select("region")
        west = Query.scan(db.table("sales")).where(
            col("region") == lit("west")
        ).select("region")
        assert len(east.union(west).run()) == 2
        assert len(east.union(west, all=True).run()) == 4
        assert len(east.intersect(west).run()) == 0
        assert len(east.except_(west).run()) == 1

    def test_order_and_limit(self, db):
        q = (
            Query.scan(db.table("sales"))
            .order_by(("amt", True), "region")
            .limit(2)
            .select("amt")
        )
        assert q.run().values() == [(20.0,), (10.0,)]

    def test_alias_then_qualified_reference(self, db):
        q = (
            Query.scan(db.table("sales"))
            .select("region", distinct=True)
            .alias("r")
            .where(col("r.region") == lit("east"))
        )
        assert q.run().values() == [("east",)]

    def test_explain_unoptimized_and_optimized(self, db):
        q = Query.scan(db.table("sales")).where(col("amt") > lit(1.0))
        assert "Filter" in q.explain(optimized=False)
        assert "Scan(sales)" in q.explain()

    def test_run_unoptimized_matches(self, db):
        q = (
            Query.scan(db.table("sales"))
            .where((col("amt") > lit(1.0)) & (col("region") == lit("east")))
            .select("amt")
        )
        assert sorted(q.run().values()) == sorted(
            q.run(optimized=False).values()
        )
