"""Unit tests for the PCQE engine (core framework)."""

import pytest

from repro import PCQEngine, QueryRequest, QueryStatus, make_solver
from repro.errors import NoApplicablePolicyError, ReproError
from repro.increment import SimulatedImprovementService


class TestQueryRequest:
    def test_fraction_validated(self):
        with pytest.raises(ReproError):
            QueryRequest("SELECT 1 FROM t", "p", required_fraction=1.5)


class TestMakeSolver:
    def test_known_solvers(self, paper_increment_problem):
        problem, _refs = paper_increment_problem
        for name in ("heuristic", "greedy", "dnc"):
            plan = make_solver(name)(problem)
            assert plan.total_cost == pytest.approx(10.0)

    def test_options_forwarded(self, paper_increment_problem):
        problem, _refs = paper_increment_problem
        solver = make_solver("greedy", two_phase=False)
        assert solver(problem).algorithm == "greedy-1phase"

    def test_unknown_solver(self):
        with pytest.raises(ReproError):
            make_solver("oracle")


class TestPipelineStatuses:
    def test_satisfied_without_improvement(self, running_example):
        engine = PCQEngine(running_example.db, running_example.policies)
        result = engine.execute(
            QueryRequest(running_example.QUERY, "analysis", 0.5), user="alice"
        )
        assert result.status is QueryStatus.SATISFIED
        assert result.quote is None
        assert len(result.rows) >= 1

    def test_improvement_path(self, running_example):
        engine = PCQEngine(running_example.db, running_example.policies)
        result = engine.execute(
            QueryRequest(running_example.QUERY, "investment", 1.0), user="bob"
        )
        assert result.status is QueryStatus.IMPROVED
        assert result.receipt is not None
        assert result.receipt.total_cost == pytest.approx(result.quote.cost)
        assert result.released_fraction == 1.0
        # The database now holds the improved confidences.
        improved = [
            tid
            for action in result.receipt.actions
            for tid in [action.tid]
        ]
        for tid in improved:
            assert running_example.db.confidence_of(tid) > 0.1 - 1e-9

    def test_declined_quote(self, running_example):
        engine = PCQEngine(
            running_example.db,
            running_example.policies,
            approval=lambda quote: False,
        )
        result = engine.execute(
            QueryRequest(running_example.QUERY, "investment", 1.0), user="bob"
        )
        assert result.status is QueryStatus.QUOTED
        assert result.quote is not None
        assert result.receipt is None
        # No data was touched.
        assert result.quote.plan.targets
        for tid in result.quote.plan.targets:
            stored = running_example.db.resolve(tid)
            assert stored.confidence < result.quote.plan.targets[tid]

    def test_quote_shortfall_counts_missing_rows(self, running_example):
        engine = PCQEngine(
            running_example.db,
            running_example.policies,
            approval=lambda quote: False,
        )
        result = engine.execute(
            QueryRequest(running_example.QUERY, "investment", 1.0), user="bob"
        )
        assert result.quote.shortfall == result.withheld_count

    def test_budget_hook_as_approval(self, running_example):
        service = SimulatedImprovementService(budget=1_000_000.0)
        engine = PCQEngine(
            running_example.db,
            running_example.policies,
            improvement=service,
            approval=lambda quote: quote.cost <= 1_000_000.0,
        )
        result = engine.execute(
            QueryRequest(running_example.QUERY, "investment", 1.0), user="bob"
        )
        assert result.status is QueryStatus.IMPROVED
        assert service.spent > 0

    def test_unknown_purpose_denied(self, running_example):
        store = running_example.policies
        engine = PCQEngine(running_example.db, store)
        from repro.errors import UnknownPurposeError

        with pytest.raises(UnknownPurposeError):
            engine.execute(
                QueryRequest(running_example.QUERY, "espionage"), user="bob"
            )

    def test_solver_choice_affects_algorithm(self, running_example):
        engine = PCQEngine(
            running_example.db, running_example.policies, solver="greedy"
        )
        result = engine.execute(
            QueryRequest(running_example.QUERY, "investment", 1.0), user="bob"
        )
        assert result.quote.plan.algorithm == "greedy"

    def test_infeasible_request(self, running_example):
        # Cap every tuple's achievable confidence low by policy threshold 1.0.
        store = running_example.policies
        store.add_purpose("perfection")
        store.add_policy("Manager", "perfection", 1.0)
        engine = PCQEngine(running_example.db, store)
        result = engine.execute(
            QueryRequest(running_example.QUERY, "perfection", 1.0), user="bob"
        )
        assert result.status is QueryStatus.INFEASIBLE
        assert result.rows == []


class TestResultAccessors:
    def test_rows_are_value_tuples(self, running_example):
        engine = PCQEngine(running_example.db, running_example.policies)
        result = engine.execute(
            QueryRequest(running_example.QUERY, "analysis", 0.0), user="alice"
        )
        for row in result.rows:
            assert isinstance(row, tuple)

    def test_released_fraction_empty_result(self, running_example):
        engine = PCQEngine(running_example.db, running_example.policies)
        result = engine.execute(
            QueryRequest(
                "SELECT Company FROM Proposal WHERE Funding > 99.0",
                "analysis",
                1.0,
            ),
            user="alice",
        )
        assert result.status is QueryStatus.SATISFIED
        assert result.released_fraction == 1.0
