"""Unit tests for repro.algebra.expressions."""

import pytest

from repro.algebra import col, lit
from repro.algebra.expressions import FunctionCall, Negate
from repro.errors import BindError, ExecutionError
from repro.storage import Schema
from repro.storage.types import BOOLEAN, INTEGER, REAL, TEXT


@pytest.fixture
def schema() -> Schema:
    return Schema.of(
        ("name", TEXT), ("qty", INTEGER), ("price", REAL), ("active", BOOLEAN),
        table="items",
    )


def run(expression, schema, values):
    return expression.bind(schema).evaluate(tuple(values))


ROW = ("widget", 3, 2.5, True)


class TestLiteralsAndColumns:
    def test_literal_types(self, schema):
        assert lit(5).bind(schema).dtype is INTEGER
        assert lit(5.0).bind(schema).dtype is REAL
        assert lit("x").bind(schema).dtype is TEXT
        assert lit(True).bind(schema).dtype is BOOLEAN

    def test_unsupported_literal(self, schema):
        with pytest.raises(BindError):
            lit(object()).bind(schema)

    def test_column_lookup(self, schema):
        assert run(col("qty"), schema, ROW) == 3

    def test_qualified_column(self, schema):
        assert run(col("items.price"), schema, ROW) == 2.5

    def test_references(self):
        expression = (col("a") + col("t.b")) > lit(1)
        assert expression.references() == {(None, "a"), ("t", "b")}


class TestArithmetic:
    def test_add_sub_mul(self, schema):
        assert run(col("qty") + lit(2), schema, ROW) == 5
        assert run(col("qty") - lit(1), schema, ROW) == 2
        assert run(col("price") * lit(2), schema, ROW) == 5.0

    def test_mixed_types_widen(self, schema):
        bound = (col("qty") * col("price")).bind(schema)
        assert bound.dtype is REAL
        assert bound.evaluate(ROW) == 7.5

    def test_division_always_real(self, schema):
        bound = (col("qty") / lit(2)).bind(schema)
        assert bound.dtype is REAL
        assert bound.evaluate(ROW) == 1.5

    def test_division_by_zero_raises(self, schema):
        with pytest.raises(ExecutionError):
            run(col("qty") / lit(0), schema, ROW)

    def test_modulo(self, schema):
        from repro.algebra.expressions import Arithmetic

        assert run(Arithmetic("%", col("qty"), lit(2)), schema, ROW) == 1

    def test_modulo_by_zero_raises(self, schema):
        from repro.algebra.expressions import Arithmetic

        with pytest.raises(ExecutionError):
            run(Arithmetic("%", col("qty"), lit(0)), schema, ROW)

    def test_null_propagates(self, schema):
        assert run(col("qty") + lit(None), schema, ROW) is None

    def test_text_concatenation(self, schema):
        assert run(col("name") + lit("!"), schema, ROW) == "widget!"

    def test_text_arithmetic_rejected(self, schema):
        with pytest.raises(BindError):
            (col("name") - lit("x")).bind(schema)

    def test_negate(self, schema):
        assert run(Negate(col("qty")), schema, ROW) == -3

    def test_negate_text_rejected(self, schema):
        with pytest.raises(BindError):
            Negate(col("name")).bind(schema)


class TestComparisons:
    def test_all_operators(self, schema):
        assert run(col("qty") == lit(3), schema, ROW) is True
        assert run(col("qty") != lit(3), schema, ROW) is False
        assert run(col("qty") < lit(4), schema, ROW) is True
        assert run(col("qty") <= lit(3), schema, ROW) is True
        assert run(col("qty") > lit(3), schema, ROW) is False
        assert run(col("qty") >= lit(4), schema, ROW) is False

    def test_null_comparison_is_null(self, schema):
        assert run(col("qty") == lit(None), schema, ROW) is None

    def test_cross_type_comparison_rejected(self, schema):
        with pytest.raises(BindError):
            (col("name") > lit(3)).bind(schema)

    def test_numeric_cross_type_allowed(self, schema):
        assert run(col("price") > col("qty"), schema, ROW) is False


class TestLogical:
    def test_kleene_and(self, schema):
        true = lit(True)
        false = lit(False)
        null = lit(None) == lit(1)  # NULL boolean
        assert run(true & false, schema, ROW) is False
        assert run(false & null, schema, ROW) is False  # false dominates
        assert run(true & null, schema, ROW) is None

    def test_kleene_or(self, schema):
        true = lit(True)
        false = lit(False)
        null = lit(None) == lit(1)
        assert run(true | null, schema, ROW) is True  # true dominates
        assert run(false | null, schema, ROW) is None

    def test_not(self, schema):
        null = lit(None) == lit(1)
        assert run(~lit(True), schema, ROW) is False
        assert run(~null, schema, ROW) is None

    def test_non_boolean_operand_rejected(self, schema):
        with pytest.raises(BindError):
            (col("qty") & lit(True)).bind(schema)


class TestPredicates:
    def test_is_null(self, schema):
        assert run(col("name").is_null(), schema, (None, 1, 1.0, True)) is True
        assert run(col("name").is_not_null(), schema, ROW) is True

    def test_like(self, schema):
        assert run(col("name").like("wid%"), schema, ROW) is True
        assert run(col("name").like("w_dget"), schema, ROW) is True
        assert run(col("name").like("xyz%"), schema, ROW) is False

    def test_like_escapes_regex_metacharacters(self, schema):
        assert run(col("name").like("wid.et"), schema, ROW) is False

    def test_like_on_null_is_null(self, schema):
        assert run(col("name").like("%"), schema, (None, 1, 1.0, True)) is None

    def test_like_requires_text(self, schema):
        with pytest.raises(BindError):
            col("qty").like("3").bind(schema)

    def test_in_list(self, schema):
        assert run(col("qty").in_([1, 2, 3]), schema, ROW) is True
        assert run(col("qty").in_([7, 8]), schema, ROW) is False

    def test_in_with_null_option(self, schema):
        # 3 IN (1, NULL) is NULL; 3 IN (3, NULL) is TRUE.
        assert run(col("qty").in_([1, None]), schema, ROW) is None
        assert run(col("qty").in_([3, None]), schema, ROW) is True

    def test_empty_in_rejected(self, schema):
        with pytest.raises(BindError):
            col("qty").in_([])

    def test_between(self, schema):
        assert run(col("qty").between(1, 5), schema, ROW) is True
        assert run(col("qty").between(4, 5), schema, ROW) is False

    def test_between_null_bound(self, schema):
        assert run(col("qty").between(None, 5), schema, ROW) is None


class TestFunctions:
    def test_abs(self, schema):
        assert run(FunctionCall("ABS", [Negate(col("qty"))]), schema, ROW) == 3

    def test_length(self, schema):
        assert run(FunctionCall("LENGTH", [col("name")]), schema, ROW) == 6

    def test_lower_upper(self, schema):
        assert run(FunctionCall("UPPER", [col("name")]), schema, ROW) == "WIDGET"
        assert run(FunctionCall("LOWER", [lit("ABC")]), schema, ROW) == "abc"

    def test_round(self, schema):
        assert run(
            FunctionCall("ROUND", [col("price"), lit(0)]), schema, ROW
        ) == pytest.approx(2.0)

    def test_unknown_function_rejected(self):
        with pytest.raises(BindError):
            FunctionCall("NOPE", [lit(1)])

    def test_type_checked(self, schema):
        with pytest.raises(BindError):
            FunctionCall("LENGTH", [col("qty")]).bind(schema)

    def test_null_argument_propagates(self, schema):
        assert (
            run(FunctionCall("LENGTH", [col("name")]), schema, (None, 1, 1.0, True))
            is None
        )
