"""MVCC generation semantics: pinning, copy-on-write, isolation, GC."""

from __future__ import annotations

import pytest

from repro.errors import SnapshotWriteError, UnknownTableError
from repro.server import MVCCDatabase
from repro.storage import Database, INTEGER, REAL, Schema, TEXT
from repro.storage.tuples import TupleId


def _db() -> Database:
    db = Database("mvcc-test")
    table = db.create_table(
        "t", Schema.of(("k", INTEGER), ("name", TEXT), ("v", REAL))
    )
    for i in range(5):
        table.insert([i, f"row{i}", float(i)], confidence=0.5)
    db.create_table("u", Schema.of(("k", INTEGER))).insert([1])
    return db


class TestSnapshotIsolation:
    def test_snapshot_pins_state_across_inserts(self):
        mvcc = MVCCDatabase(_db())
        snap = mvcc.snapshot()
        assert len(snap.db.table("t")) == 5
        mvcc.commit(lambda db: db.table("t").insert([99, "new", 9.9]))
        assert len(snap.db.table("t")) == 5  # pinned view never moves
        fresh = mvcc.snapshot()
        assert len(fresh.db.table("t")) == 6
        snap.release()
        fresh.release()

    def test_snapshot_pins_confidences_across_writebacks(self):
        mvcc = MVCCDatabase(_db())
        snap = mvcc.snapshot()
        tid = TupleId("t", 0)
        before = snap.db.confidence_of(tid)
        mvcc.commit(lambda db: db.apply_confidences({tid: 0.95}))
        assert snap.db.confidence_of(tid) == before
        fresh = mvcc.snapshot()
        assert fresh.db.confidence_of(tid) == 0.95
        snap.release()
        fresh.release()

    def test_snapshot_rows_are_copies_not_references(self):
        # Confidence writes mutate live StoredTuple objects in place; a
        # snapshot that shared them would leak the write-back.
        db = _db()
        mvcc = MVCCDatabase(db)
        snap = mvcc.snapshot()
        live = db.table("t").get(TupleId("t", 1))
        pinned = snap.db.resolve(TupleId("t", 1))
        assert pinned is not live
        mvcc.commit(lambda d: d.apply_confidences({TupleId("t", 1): 0.9}))
        assert pinned.confidence == 0.5
        snap.release()

    def test_snapshot_sees_dropped_table_after_commit_only(self):
        mvcc = MVCCDatabase(_db())
        snap = mvcc.snapshot()
        mvcc.commit(lambda db: db.drop_table("u"))
        assert snap.db.has_table("u")
        fresh = mvcc.snapshot()
        assert not fresh.db.has_table("u")
        with pytest.raises(UnknownTableError):
            fresh.db.table("u")
        snap.release()
        fresh.release()


class TestCopyOnWrite:
    def test_untouched_tables_are_shared_between_generations(self):
        mvcc = MVCCDatabase(_db())
        first = mvcc.snapshot()
        mvcc.commit(lambda db: db.table("t").insert([7, "x", 7.0]))
        second = mvcc.snapshot()
        assert second.db.table("u") is first.db.table("u")  # shared copy
        assert second.db.table("t") is not first.db.table("t")
        first.release()
        second.release()

    def test_sequence_is_monotonic(self):
        mvcc = MVCCDatabase(_db())
        seqs = [mvcc.current_seq]
        for i in range(3):
            mvcc.commit(lambda db: db.table("u").insert([i]))
            seqs.append(mvcc.current_seq)
        assert seqs == sorted(set(seqs))

    def test_durable_database_keys_generations_by_wal_seq(self, tmp_path):
        db = Database.open(str(tmp_path / "state"))
        db.create_table("t", Schema.of(("k", INTEGER))).insert([1])
        mvcc = MVCCDatabase(db)
        before = mvcc.current_seq
        mvcc.commit(lambda d: d.table("t").insert([2]))
        assert mvcc.current_seq == db._durability.last_seq > before
        db.close()


class TestGenerationGC:
    def test_unpinned_generations_are_collected(self):
        mvcc = MVCCDatabase(_db())
        snap = mvcc.snapshot()
        pinned_seq = snap.seq
        for i in range(3):
            mvcc.commit(lambda db: db.table("u").insert([10 + i]))
        assert set(mvcc.generation_seqs()) == {pinned_seq, mvcc.current_seq}
        snap.release()
        assert mvcc.generation_seqs() == [mvcc.current_seq]

    def test_release_is_idempotent(self):
        mvcc = MVCCDatabase(_db())
        snap = mvcc.snapshot()
        snap.release()
        snap.release()  # no-op, no underflow
        assert mvcc.generation_seqs() == [mvcc.current_seq]

    def test_multiple_pins_on_one_generation(self):
        mvcc = MVCCDatabase(_db())
        a, b = mvcc.snapshot(), mvcc.snapshot()
        seq = a.seq
        mvcc.commit(lambda db: db.table("u").insert([5]))
        a.release()
        assert seq in mvcc.generation_seqs()  # b still pins it
        b.release()
        assert seq not in mvcc.generation_seqs()


class TestReadOnlyViews:
    def test_snapshot_table_rejects_mutation(self):
        mvcc = MVCCDatabase(_db())
        snap = mvcc.snapshot()
        table = snap.db.table("t")
        for attempt in (
            lambda: table.insert([1, "x", 1.0]),
            lambda: table.delete(TupleId("t", 0)),
            lambda: table.update(TupleId("t", 0), [1, "x", 1.0]),
            lambda: table.set_confidence(TupleId("t", 0), 0.9),
            lambda: table.create_index("k"),
        ):
            with pytest.raises(SnapshotWriteError):
                attempt()
        snap.release()

    def test_snapshot_database_rejects_ddl_and_writebacks(self):
        mvcc = MVCCDatabase(_db())
        snap = mvcc.snapshot()
        for attempt in (
            lambda: snap.db.create_table("x", Schema.of(("k", INTEGER))),
            lambda: snap.db.drop_table("t"),
            lambda: snap.db.apply_confidences({TupleId("t", 0): 0.9}),
            lambda: snap.db.set_confidence(TupleId("t", 0), 0.9),
        ):
            with pytest.raises(SnapshotWriteError):
                attempt()
        snap.release()

    def test_snapshot_table_read_surface_matches_live(self):
        db = _db()
        mvcc = MVCCDatabase(db)
        snap = mvcc.snapshot()
        live, pinned = db.table("t"), snap.db.table("t")
        assert pinned.rows() == live.rows()
        assert len(pinned) == len(live)
        assert pinned.schema is live.schema
        columns, tids = pinned.column_data()
        live_columns, live_tids = live.column_data()
        assert columns == live_columns and tids == live_tids
        assert [r.values for r in pinned.lookup("k", 2)] == [
            r.values for r in live.lookup("k", 2)
        ]
        assert pinned.index_on("k") is None
        snap.release()

    def test_commit_failure_publishes_nothing(self):
        mvcc = MVCCDatabase(_db())
        seq = mvcc.current_seq

        def bad(db):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            mvcc.commit(bad)
        assert mvcc.current_seq == seq
        assert mvcc.generation_seqs() == [seq]
