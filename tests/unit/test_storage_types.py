"""Unit tests for repro.storage.types."""

import pytest

from repro.errors import TypeMismatchError
from repro.storage.types import (
    BOOLEAN,
    INTEGER,
    REAL,
    TEXT,
    coerce_value,
    common_type,
    is_comparable,
)


class TestCoerceValue:
    def test_null_passes_any_type(self):
        for dtype in (INTEGER, REAL, TEXT, BOOLEAN):
            assert coerce_value(None, dtype) is None

    def test_integer_accepts_int(self):
        assert coerce_value(42, INTEGER) == 42

    def test_integer_rejects_float(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(4.2, INTEGER)

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(True, INTEGER)

    def test_real_widens_int_to_float(self):
        value = coerce_value(3, REAL)
        assert value == 3.0
        assert isinstance(value, float)

    def test_real_accepts_float(self):
        assert coerce_value(3.5, REAL) == 3.5

    def test_real_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(True, REAL)

    def test_real_rejects_str(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("3.5", REAL)

    def test_text_accepts_str(self):
        assert coerce_value("hello", TEXT) == "hello"

    def test_text_rejects_number(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(5, TEXT)

    def test_boolean_accepts_bool(self):
        assert coerce_value(False, BOOLEAN) is False

    def test_boolean_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(1, BOOLEAN)


class TestComparability:
    def test_same_type_comparable(self):
        for dtype in (INTEGER, REAL, TEXT, BOOLEAN):
            assert is_comparable(dtype, dtype)

    def test_numeric_cross_comparable(self):
        assert is_comparable(INTEGER, REAL)
        assert is_comparable(REAL, INTEGER)

    def test_text_not_comparable_with_numeric(self):
        assert not is_comparable(TEXT, INTEGER)
        assert not is_comparable(BOOLEAN, INTEGER)


class TestCommonType:
    def test_integer_pair(self):
        assert common_type(INTEGER, INTEGER) is INTEGER

    def test_mixed_numeric_widens(self):
        assert common_type(INTEGER, REAL) is REAL
        assert common_type(REAL, INTEGER) is REAL

    def test_non_numeric_raises(self):
        with pytest.raises(TypeMismatchError):
            common_type(TEXT, INTEGER)

    def test_is_numeric_property(self):
        assert INTEGER.is_numeric and REAL.is_numeric
        assert not TEXT.is_numeric and not BOOLEAN.is_numeric
