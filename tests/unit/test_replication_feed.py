"""The primary's replication feed, log reconciliation, and epochs."""

from __future__ import annotations

import threading

import pytest

from repro.server.replication.epoch import EPOCH_FILE, load_epoch, store_epoch
from repro.server.replication.feed import (
    ReplicationFeed,
    iter_idempotency_markers,
)
from repro.server.replication.reconcile import (
    common_prefix_seq,
    divergence_point,
    frame_digests,
)
from repro.storage.durability.checksum import crc32c


def _fill(feed: ReplicationFeed, count: int, start: int = 1) -> None:
    for seq in range(start, start + count):
        feed.append(seq, f"frame-{seq}".encode())


class TestReplicationFeed:
    def test_frames_since_returns_the_suffix_in_order(self):
        feed = ReplicationFeed()
        _fill(feed, 5)
        frames = feed.frames_since(2, max_frames=10)
        assert [seq for seq, _ in frames] == [3, 4, 5]
        assert frames[0][1] == b"frame-3"

    def test_max_frames_bounds_one_pull(self):
        feed = ReplicationFeed()
        _fill(feed, 10)
        frames = feed.frames_since(0, max_frames=3)
        assert [seq for seq, _ in frames] == [1, 2, 3]

    def test_caught_up_pull_returns_empty(self):
        feed = ReplicationFeed()
        _fill(feed, 3)
        assert feed.frames_since(3, max_frames=10) == []

    def test_eviction_below_window_forces_resync(self):
        feed = ReplicationFeed(capacity=3)
        _fill(feed, 10)  # window is now (7, 10]
        assert feed.base == 7
        assert feed.frames_since(6, max_frames=10) is None
        assert [s for s, _ in feed.frames_since(7, max_frames=10)] == [
            8,
            9,
            10,
        ]

    def test_duplicate_appends_are_ignored(self):
        feed = ReplicationFeed()
        _fill(feed, 3)
        feed.append(3, b"frame-3")  # duplicate notification
        feed.append(2, b"frame-2")
        assert len(feed) == 3
        assert feed.last_seq == 3

    def test_set_position_anchors_an_empty_feed_only(self):
        feed = ReplicationFeed()
        feed.set_position(41)
        assert feed.base == 41
        assert feed.frames_since(40, max_frames=5) is None  # below window
        feed.append(42, b"f")
        feed.set_position(0)  # non-empty: no-op
        assert feed.base == 41

    def test_long_poll_wakes_on_arrival(self):
        feed = ReplicationFeed()
        _fill(feed, 2)
        results: list = []

        def puller():
            results.append(feed.frames_since(2, max_frames=5, wait_s=5.0))

        thread = threading.Thread(target=puller)
        thread.start()
        feed.append(3, b"frame-3")
        thread.join(timeout=5.0)
        assert results and [s for s, _ in results[0]] == [3]

    def test_digests_cover_the_requested_range(self):
        feed = ReplicationFeed()
        _fill(feed, 5)
        digests = feed.digests(1, 4)
        assert digests == [
            (seq, crc32c(f"frame-{seq}".encode())) for seq in (2, 3, 4)
        ]

    def test_digests_below_window_force_resync(self):
        feed = ReplicationFeed(capacity=2)
        _fill(feed, 6)
        assert feed.digests(1, 6) is None


class TestIdempotencyMarkers:
    def test_top_level_marker(self):
        op = {"op": "idempotency", "client": "c1", "key": "k1"}
        assert list(iter_idempotency_markers(op)) == [("c1", "k1")]

    def test_markers_nested_in_batches(self):
        op = {
            "op": "batch",
            "ops": [
                {"op": "insert", "table": "t"},
                {"op": "idempotency", "client": "c1", "key": "k1"},
                {
                    "op": "batch",
                    "ops": [
                        {"op": "idempotency", "client": "c2", "key": "k2"}
                    ],
                },
            ],
        }
        assert list(iter_idempotency_markers(op)) == [
            ("c1", "k1"),
            ("c2", "k2"),
        ]

    def test_malformed_markers_are_skipped(self):
        assert list(iter_idempotency_markers({"op": "idempotency"})) == []
        assert list(iter_idempotency_markers({"op": "insert"})) == []


class TestReconcile:
    def test_identical_logs_agree_to_the_end(self):
        frames = [(s, f"f{s}".encode()) for s in range(1, 6)]
        digests = frame_digests(frames)
        assert common_prefix_seq(digests, digests) == 5
        assert divergence_point(digests, digests) is None

    def test_shorter_log_is_behind_not_divergent(self):
        frames = [(s, f"f{s}".encode()) for s in range(1, 6)]
        local = frame_digests(frames[:3])
        remote = frame_digests(frames)
        assert common_prefix_seq(local, remote) == 3
        assert divergence_point(local, remote) is None

    def test_forked_tail_is_found(self):
        shared = [(s, f"f{s}".encode()) for s in range(1, 4)]
        local = frame_digests(shared + [(4, b"local-4"), (5, b"local-5")])
        remote = frame_digests(shared + [(4, b"remote-4")])
        assert common_prefix_seq(local, remote) == 3
        assert divergence_point(local, remote) == 4

    def test_disagreement_from_the_first_frame(self):
        local = frame_digests([(1, b"a")])
        remote = frame_digests([(1, b"b")])
        assert common_prefix_seq(local, remote) == 0
        assert divergence_point(local, remote) == 1

    def test_gap_ends_the_common_prefix(self):
        remote = frame_digests([(s, f"f{s}".encode()) for s in (1, 2, 3, 4)])
        local = frame_digests(
            [(1, b"f1"), (2, b"f2"), (4, b"f4")]  # 3 missing locally
        )
        assert common_prefix_seq(local, remote) == 2


class TestEpochPersistence:
    def test_round_trip(self, tmp_path):
        store_epoch(str(tmp_path), 7)
        assert load_epoch(str(tmp_path)) == 7
        assert (tmp_path / EPOCH_FILE).exists()

    def test_missing_file_yields_the_default(self, tmp_path):
        assert load_epoch(str(tmp_path)) == 1
        assert load_epoch(str(tmp_path), default=5) == 5

    def test_garbage_yields_the_default(self, tmp_path):
        (tmp_path / EPOCH_FILE).write_text("not-a-number\n")
        assert load_epoch(str(tmp_path)) == 1

    def test_default_floors_a_lower_persisted_epoch(self, tmp_path):
        store_epoch(str(tmp_path), 2)
        assert load_epoch(str(tmp_path), default=9) == 9
