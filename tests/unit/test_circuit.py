"""Unit tests for the arithmetic-circuit confidence engine."""

import random

import pytest

from repro.errors import LineageError
from repro.lineage import (
    CircuitEvaluator,
    CircuitPool,
    ConfidenceFunction,
    lineage_and,
    lineage_not,
    lineage_or,
    probability,
    sensitivity,
    var,
)
from repro.lineage.confidence import CACHE_SIZE
from repro.lineage.probability import compile_probability
from repro.storage import TupleId

T = [TupleId("t", i) for i in range(8)]


def _assignment(seed=0, tids=T):
    rng = random.Random(seed)
    return {tid: rng.uniform(0.05, 0.95) for tid in tids}


def _shannon_formula():
    """One entangled cluster: (t0 ∧ t1) ∨ (t1 ∧ t2) forces Shannon."""
    return lineage_or(
        lineage_and(var(T[0]), var(T[1])), lineage_and(var(T[1]), var(T[2]))
    )


class TestCompilation:
    def test_evaluate_matches_probability_bitwise(self):
        formulas = [
            var(T[0]),
            lineage_and(var(T[0]), var(T[1])),
            lineage_or(var(T[0]), var(T[1]), var(T[2])),
            lineage_not(lineage_and(var(T[0]), var(T[1]))),
            _shannon_formula(),
            lineage_and(_shannon_formula(), var(T[3])),
        ]
        pool = CircuitPool()
        assignment = _assignment()
        for formula in formulas:
            circuit = pool.compile(formula)
            assert circuit.evaluate(assignment) == probability(
                formula, assignment
            )

    def test_evaluate_matches_compiled_closure_bitwise(self):
        formula = lineage_or(
            lineage_and(var(T[0]), var(T[1]), var(T[2])),
            lineage_and(var(T[2]), var(T[3])),
            var(T[4]),
        )
        closure = compile_probability(formula)
        circuit = CircuitPool().compile(formula)
        for seed in range(20):
            assignment = _assignment(seed)
            assert circuit.evaluate(assignment) == closure(assignment)

    def test_shared_subformula_interned_once(self):
        shared = lineage_and(var(T[0]), var(T[1]))
        pool = CircuitPool()
        first = pool.compile(lineage_or(shared, var(T[2])))
        nodes_after_first = len(pool)
        second = pool.compile(lineage_or(shared, var(T[3])))
        # The shared conjunct adds no new nodes the second time.
        assert pool.formula_hits > 0
        assert len(pool) < nodes_after_first + len(second)
        assert pool.shared_hit_rate > 0.0
        assert first.root != second.root

    def test_identical_formula_reuses_root(self):
        pool = CircuitPool()
        formula = lineage_or(var(T[0]), lineage_and(var(T[1]), var(T[2])))
        assert pool.compile(formula).root == pool.compile(formula).root

    def test_support_and_len(self):
        circuit = CircuitPool().compile(_shannon_formula())
        assert circuit.support == tuple(sorted([T[0], T[1], T[2]]))
        assert len(circuit) >= 3

    def test_missing_variable_raises(self):
        circuit = CircuitPool().compile(lineage_and(var(T[0]), var(T[1])))
        with pytest.raises(LineageError, match="no probability supplied"):
            circuit.evaluate({T[0]: 0.5})

    def test_stats_keys(self):
        pool = CircuitPool()
        pool.compile(_shannon_formula())
        stats = pool.stats()
        assert set(stats) == {
            "nodes",
            "variables",
            "intern_hits",
            "formula_hits",
            "shared_hit_rate",
        }
        assert stats["variables"] == 3


class TestGradient:
    @pytest.mark.parametrize(
        "formula",
        [
            var(T[0]),
            lineage_and(var(T[0]), var(T[1])),
            lineage_or(var(T[0]), var(T[1]), var(T[2])),
            lineage_not(lineage_or(var(T[0]), var(T[1]))),
            _shannon_formula(),
            lineage_and(_shannon_formula(), lineage_or(var(T[3]), var(T[4]))),
        ],
    )
    def test_gradient_matches_sensitivity(self, formula):
        circuit = CircuitPool().compile(formula)
        assignment = _assignment(3)
        gradient = circuit.gradient(assignment)
        assert set(gradient) == set(formula.variables)
        for tid in formula.variables:
            expected = sensitivity(formula, assignment, tid)
            assert gradient[tid] == pytest.approx(expected, abs=1e-12)

    def test_gradient_zero_partial_still_reported(self):
        # t1's partial is 0 when t0 = 1 in t0 ∨ t1 — still present.
        formula = lineage_or(var(T[0]), var(T[1]))
        circuit = CircuitPool().compile(formula)
        gradient = circuit.gradient({T[0]: 1.0, T[1]: 0.3})
        assert gradient[T[1]] == pytest.approx(0.0)


class TestEvaluator:
    def _setup(self, seed=1):
        pool = CircuitPool()
        formulas = [
            lineage_or(lineage_and(var(T[0]), var(T[1])), var(T[2])),
            lineage_and(var(T[1]), lineage_or(var(T[2]), var(T[3]))),
            _shannon_formula(),
        ]
        circuits = [pool.compile(formula) for formula in formulas]
        assignment = _assignment(seed)
        evaluator = CircuitEvaluator(pool, assignment, circuits)
        return pool, formulas, circuits, assignment, evaluator

    def test_initial_values_match_probability(self):
        _pool, formulas, circuits, assignment, evaluator = self._setup()
        for formula, circuit in zip(formulas, circuits):
            assert evaluator.value(circuit.root) == probability(
                formula, assignment
            )

    def test_incremental_update_matches_fresh_evaluation(self):
        _pool, formulas, circuits, assignment, evaluator = self._setup()
        rng = random.Random(9)
        for _ in range(50):
            tid = rng.choice(T[:5])
            value = rng.uniform(0.0, 1.0)
            assignment[tid] = value
            evaluator.set_value(tid, value)
            for formula, circuit in zip(formulas, circuits):
                assert evaluator.value(circuit.root) == probability(
                    formula, assignment
                )

    def test_probe_does_not_commit(self):
        _pool, formulas, circuits, assignment, evaluator = self._setup()
        roots = [circuit.root for circuit in circuits]
        before = [evaluator.value(root) for root in roots]
        probed = evaluator.probe(T[1], 0.99, roots)
        patched = dict(assignment)
        patched[T[1]] = 0.99
        assert probed == [
            probability(formula, patched) for formula in formulas
        ]
        assert [evaluator.value(root) for root in roots] == before

    def test_out_of_scope_variable_is_noop(self):
        _pool, _formulas, circuits, _assignment, evaluator = self._setup()
        roots = [circuit.root for circuit in circuits]
        before = [evaluator.value(root) for root in roots]
        updates_before = evaluator.updates
        evaluator.set_value(T[7], 0.5)  # never compiled anywhere
        assert [evaluator.value(root) for root in roots] == before
        assert evaluator.updates == updates_before
        assert evaluator.probe(T[7], 0.5, roots) == before

    def test_cone_excludes_leaves_and_unrelated_nodes(self):
        pool, _formulas, _circuits, _assignment, evaluator = self._setup()
        cone = evaluator.cone(T[0])
        var_index = pool.var_id(T[0])
        assert var_index is not None
        assert var_index not in cone
        assert all(index > var_index for index in cone)
        assert evaluator.cone(T[7]) == ()

    def test_update_counters(self):
        _pool, _formulas, circuits, _assignment, evaluator = self._setup()
        evaluator.set_value(T[0], 0.4)
        evaluator.probe(T[0], 0.5, [circuits[0].root])
        assert evaluator.updates == 2
        assert evaluator.nodes_recomputed >= 2

    def test_recorded_set_restores_bitwise(self):
        _pool, _formulas, circuits, _assignment, evaluator = self._setup()
        before = list(evaluator.values)
        snapshot = evaluator.set_value_recorded(T[1], 0.42)
        assert snapshot is not None
        assert evaluator.values != before
        evaluator.restore(snapshot)
        assert evaluator.values == before
        for circuit in circuits:
            assert evaluator.value(circuit.root) == circuit.evaluate(
                _assignment
            )
        # Out-of-scope variables are a recorded no-op too.
        assert evaluator.set_value_recorded(T[7], 0.5) is None

    def test_gradient_uses_committed_values(self):
        _pool, formulas, circuits, assignment, evaluator = self._setup()
        evaluator.set_value(T[2], 0.77)
        assignment[T[2]] = 0.77
        gradient = evaluator.gradient(circuits[0])
        for tid in formulas[0].variables:
            assert gradient[tid] == pytest.approx(
                sensitivity(formulas[0], assignment, tid), abs=1e-12
            )

    def test_foreign_pool_rejected(self):
        _pool, _formulas, circuits, assignment, _evaluator = self._setup()
        other_pool = CircuitPool()
        other = other_pool.compile(var(T[0]))
        with pytest.raises(LineageError, match="share its pool"):
            CircuitEvaluator(other_pool, assignment, [circuits[0]])
        evaluator = CircuitEvaluator(other_pool, assignment, [other])
        with pytest.raises(LineageError, match="different pool"):
            evaluator.gradient(circuits[0])


class TestConfidenceFunctionFacade:
    def test_backends_agree_bitwise(self):
        formula = lineage_and(_shannon_formula(), var(T[3]))
        circuit_fn = ConfidenceFunction(formula)
        treewalk_fn = ConfidenceFunction(formula, backend="treewalk")
        for seed in range(10):
            assignment = _assignment(seed)
            assert circuit_fn.evaluate(assignment) == treewalk_fn.evaluate(
                assignment
            )

    def test_backend_property(self):
        formula = var(T[0])
        assert ConfidenceFunction(formula).backend == "circuit"
        assert (
            ConfidenceFunction(formula, backend="treewalk").backend
            == "treewalk"
        )

    def test_treewalk_rejects_pool(self):
        with pytest.raises(LineageError):
            ConfidenceFunction(
                var(T[0]), backend="treewalk", pool=CircuitPool()
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(LineageError):
            ConfidenceFunction(var(T[0]), backend="quantum")

    def test_derivative_matches_sensitivity_on_both_backends(self):
        formula = lineage_or(
            lineage_and(var(T[0]), var(T[1])), lineage_and(var(T[1]), var(T[2]))
        )
        assignment = _assignment(5)
        circuit_fn = ConfidenceFunction(formula)
        treewalk_fn = ConfidenceFunction(formula, backend="treewalk")
        for tid in formula.variables:
            expected = sensitivity(formula, assignment, tid)
            assert circuit_fn.derivative(assignment, tid) == pytest.approx(
                expected, abs=1e-12
            )
            assert treewalk_fn.derivative(assignment, tid) == expected
        # Unrelated variable: exactly zero without evaluating anything.
        assert circuit_fn.derivative(assignment, T[7]) == 0.0

    def test_derivative_gradient_cache_invalidates_on_new_assignment(self):
        formula = lineage_and(var(T[0]), var(T[1]))
        fn = ConfidenceFunction(formula)
        first = fn.derivative({T[0]: 0.5, T[1]: 0.5}, T[0])
        second = fn.derivative({T[0]: 0.5, T[1]: 0.9}, T[0])
        assert first == pytest.approx(0.5)
        assert second == pytest.approx(0.9)

    def test_gradient_method(self):
        formula = _shannon_formula()
        assignment = _assignment(6)
        fn = ConfidenceFunction(formula)
        walk = ConfidenceFunction(formula, backend="treewalk")
        gradient = fn.gradient(assignment)
        assert set(gradient) == set(formula.variables)
        for tid, value in walk.gradient(assignment).items():
            assert gradient[tid] == pytest.approx(value, abs=1e-12)

    def test_shared_pool_across_functions(self):
        pool = CircuitPool()
        shared = lineage_and(var(T[0]), var(T[1]))
        a = ConfidenceFunction(lineage_or(shared, var(T[2])), pool=pool)
        b = ConfidenceFunction(lineage_or(shared, var(T[3])), pool=pool)
        assert a.pool is pool and b.pool is pool
        assert pool.formula_hits > 0

    def test_cache_is_bounded_lru(self):
        formula = lineage_or(var(T[0]), var(T[1]))
        fn = ConfidenceFunction(formula)
        for step in range(10 * CACHE_SIZE):
            value = (step % 7919) / 7919
            fn.evaluate({T[0]: value, T[1]: 1.0 - value})
        # Both generations together never exceed the bound.
        assert len(fn._cache) + len(fn._cache_old) <= CACHE_SIZE
        # The most recent entry is retained; evaluating it again hits.
        hit_key = tuple(
            {T[0]: 0.25, T[1]: 0.75}[tid] for tid in fn.variables
        )
        fn.evaluate({T[0]: 0.25, T[1]: 0.75})
        assert hit_key in fn._cache
        fn.clear_cache()
        assert len(fn._cache) == 0 and len(fn._cache_old) == 0


class TestCliCircuitCommand:
    def test_circuit_command_reports_sharing(self):
        from repro.cli import CommandShell

        shell = CommandShell()
        shell.execute_line("demo")
        output = shell.execute_line(
            "circuit SELECT Company FROM Proposal WHERE Funding < 1.0"
        )
        assert "circuit nodes (shared pool):" in output
        assert "shared-node hit rate:" in output

    def test_circuit_command_requires_select(self):
        from repro.cli import CommandShell
        from repro.errors import ReproError

        shell = CommandShell()
        with pytest.raises(ReproError):
            shell.execute_line("circuit")
