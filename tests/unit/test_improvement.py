"""Unit tests for the simulated data-quality improvement service."""

import pytest

from repro.cost import LinearCost
from repro.errors import ImprovementRejectedError, IncrementError
from repro.increment import (
    IncrementPlan,
    SimulatedImprovementService,
    SolverStats,
)
from repro.storage import Database, Schema, TEXT


@pytest.fixture
def db_and_tids():
    db = Database()
    table = db.create_table("t", Schema.of(("x", TEXT)))
    a = table.insert(["a"], confidence=0.3, cost_model=LinearCost(100.0))
    b = table.insert(["b"], confidence=0.5, cost_model=LinearCost(10.0))
    return db, a, b


def plan_for(targets):
    return IncrementPlan(dict(targets), 0.0, (), "test", SolverStats())


class TestQuoteAndApply:
    def test_quote_uses_current_confidences(self, db_and_tids):
        db, a, b = db_and_tids
        service = SimulatedImprovementService()
        quote = service.quote(db, plan_for({a: 0.5, b: 0.6}))
        assert quote == pytest.approx(100.0 * 0.2 + 10.0 * 0.1)

    def test_apply_updates_database_and_ledger(self, db_and_tids):
        db, a, b = db_and_tids
        service = SimulatedImprovementService()
        receipt = service.apply(db, plan_for({a: 0.5}))
        assert db.confidence_of(a) == 0.5
        assert receipt.total_cost == pytest.approx(20.0)
        assert receipt.tuples_improved == 1
        assert service.spent == pytest.approx(20.0)
        assert len(service.receipts) == 1

    def test_target_below_current_is_noop(self, db_and_tids):
        db, a, _b = db_and_tids
        service = SimulatedImprovementService()
        receipt = service.apply(db, plan_for({a: 0.2}))
        assert receipt.actions == []
        assert db.confidence_of(a) == 0.3

    def test_stale_plan_charges_remaining_increment(self, db_and_tids):
        db, a, _b = db_and_tids
        db.set_confidence(a, 0.45)  # database moved under the plan
        service = SimulatedImprovementService()
        receipt = service.apply(db, plan_for({a: 0.5}))
        assert receipt.total_cost == pytest.approx(100.0 * 0.05)

    def test_invalid_target_rejected(self, db_and_tids):
        db, a, _b = db_and_tids
        service = SimulatedImprovementService()
        with pytest.raises(IncrementError):
            service.apply(db, plan_for({a: 1.5}))


class TestBudget:
    def test_budget_enforced_before_apply(self, db_and_tids):
        db, a, _b = db_and_tids
        service = SimulatedImprovementService(budget=10.0)
        with pytest.raises(ImprovementRejectedError):
            service.apply(db, plan_for({a: 0.5}))  # costs 20
        # Nothing was written.
        assert db.confidence_of(a) == 0.3
        assert service.spent == 0.0

    def test_budget_accumulates(self, db_and_tids):
        db, a, b = db_and_tids
        service = SimulatedImprovementService(budget=24.0)
        service.apply(db, plan_for({a: 0.5}))  # costs 20, 4 remains
        with pytest.raises(ImprovementRejectedError):
            service.apply(db, plan_for({b: 1.0}))  # costs 5 > 4 remaining
        assert service.spent == pytest.approx(20.0)

    def test_budget_exact_fit(self, db_and_tids):
        db, _a, b = db_and_tids
        service = SimulatedImprovementService(budget=5.0)
        receipt = service.apply(db, plan_for({b: 1.0}))  # 10 * 0.5 = 5.0
        assert receipt.total_cost == pytest.approx(5.0)
