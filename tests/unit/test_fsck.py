"""Offline integrity checking (``repro fsck``) and table fingerprints."""

from __future__ import annotations

import os

from repro.storage import Database
from repro.storage.durability import (
    database_fingerprints,
    fsck_data_dir,
    table_fingerprint,
)
from repro.storage.durability.recovery import SNAPSHOT_FILE, WAL_FILE
from repro.storage.schema import Schema
from repro.storage.types import REAL, TEXT


def _durable(tmp_path, name: str = "db") -> tuple[Database, str]:
    data_dir = str(tmp_path / name)
    db = Database.open(data_dir)
    table = db.create_table(
        "items", Schema.of(("name", TEXT), ("qty", REAL))
    )
    for index in range(4):
        table.insert([f"item-{index}", float(index)], confidence=0.5)
    return db, data_dir


class TestFsckCleanDirectories:
    def test_fresh_writes_verify_clean(self, tmp_path):
        db, data_dir = _durable(tmp_path)
        db.close()
        report = fsck_data_dir(data_dir)
        assert report.clean
        assert report.wal_present
        assert report.frames_verified == 5  # create_table + 4 inserts
        assert report.last_seq == 5
        assert "clean" in report.format()

    def test_checkpointed_state_verifies_clean(self, tmp_path):
        db, data_dir = _durable(tmp_path)
        db.checkpoint()
        db.close()
        report = fsck_data_dir(data_dir)
        assert report.clean
        assert report.snapshot_present
        assert report.snapshot_wal_seq == 5
        # Checkpoint rotated the WAL: the position comes from the
        # snapshot.
        assert report.frames_verified == 0
        assert report.last_seq == 5

    def test_empty_directory_is_clean(self, tmp_path):
        report = fsck_data_dir(str(tmp_path))
        assert report.clean
        assert not report.wal_present and not report.snapshot_present


class TestFsckWalDamage:
    def test_flipped_payload_byte_reports_offset_and_seq(self, tmp_path):
        db, data_dir = _durable(tmp_path)
        db.close()
        wal = os.path.join(data_dir, WAL_FILE)
        with open(wal, "r+b") as handle:
            handle.seek(-3, os.SEEK_END)
            handle.write(b"\xff")
        report = fsck_data_dir(data_dir)
        assert not report.clean
        (issue,) = report.issues
        assert issue.kind == "wal-payload-checksum"
        assert issue.seq == 4  # damage is inside frame 5
        assert issue.offset > 0
        assert str(issue.offset) in issue.format()
        # Intact prefix is still accounted for.
        assert report.frames_verified == 4
        assert report.last_seq == 4

    def test_torn_tail_reports_but_never_truncates(self, tmp_path):
        db, data_dir = _durable(tmp_path)
        db.close()
        wal = os.path.join(data_dir, WAL_FILE)
        size = os.path.getsize(wal)
        with open(wal, "r+b") as handle:
            handle.truncate(size - 10)
        report = fsck_data_dir(data_dir)
        assert not report.clean
        assert report.issues[0].kind in (
            "wal-torn-payload",
            "wal-torn-header",
        )
        # fsck is read-only: the file is exactly as damaged as before.
        assert os.path.getsize(wal) == size - 10

    def test_header_damage_stops_the_scan(self, tmp_path):
        db, data_dir = _durable(tmp_path)
        db.close()
        wal = os.path.join(data_dir, WAL_FILE)
        with open(wal, "r+b") as handle:
            handle.seek(8)  # first record's header (after the magic)
            handle.write(b"\xff\xff\xff\xff")
        report = fsck_data_dir(data_dir)
        assert not report.clean
        assert report.issues[0].kind == "wal-header-checksum"
        assert report.frames_verified == 0

    def test_bad_magic_is_not_a_wal(self, tmp_path):
        data_dir = str(tmp_path)
        with open(os.path.join(data_dir, WAL_FILE), "wb") as handle:
            handle.write(b"NOTAWAL1" + b"x" * 32)
        report = fsck_data_dir(data_dir)
        assert [i.kind for i in report.issues] == ["wal-bad-magic"]


class TestFsckSnapshotDamage:
    def test_flipped_snapshot_byte_is_a_checksum_issue(self, tmp_path):
        db, data_dir = _durable(tmp_path)
        db.checkpoint()
        db.close()
        snap = os.path.join(data_dir, SNAPSHOT_FILE)
        with open(snap, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            handle.write(b"\x00")
        report = fsck_data_dir(data_dir)
        kinds = [issue.kind for issue in report.issues]
        assert "snapshot-checksum" in kinds or "snapshot-truncated" in kinds

    def test_truncated_snapshot_header(self, tmp_path):
        db, data_dir = _durable(tmp_path)
        db.checkpoint()
        db.close()
        snap = os.path.join(data_dir, SNAPSHOT_FILE)
        with open(snap, "r+b") as handle:
            handle.truncate(4)
        report = fsck_data_dir(data_dir)
        assert report.issues[0].kind == "snapshot-bad-header"


class TestTableFingerprints:
    def test_equal_content_equal_fingerprint(self):
        def build() -> Database:
            db = Database("a")
            table = db.create_table(
                "t", Schema.of(("name", TEXT), ("qty", REAL))
            )
            table.insert(["x", 1.0], confidence=0.5)
            table.insert(["y", 2.0], confidence=0.7)
            return db

        one, two = build(), build()
        assert table_fingerprint(one.table("t")) == table_fingerprint(
            two.table("t")
        )
        assert database_fingerprints(one) == database_fingerprints(two)

    def test_value_confidence_and_schema_changes_all_show(self):
        db = Database("a")
        table = db.create_table("t", Schema.of(("name", TEXT)))
        tid = table.insert(["x"], confidence=0.5)
        base = table_fingerprint(table)
        table.set_confidence(tid, 0.6)
        changed = table_fingerprint(table)
        assert changed != base
        table.set_confidence(tid, 0.5)
        assert table_fingerprint(table) == base
        table.insert(["y"], confidence=0.5)
        assert table_fingerprint(table) != base

    def test_indexes_do_not_affect_the_fingerprint(self):
        db = Database("a")
        table = db.create_table("t", Schema.of(("name", TEXT)))
        table.insert(["x"], confidence=0.5)
        before = table_fingerprint(table)
        table.create_index("name")
        assert table_fingerprint(table) == before

    def test_snapshot_tables_fingerprint_like_live_tables(self):
        from repro.server.mvcc import MVCCDatabase

        db = Database("a")
        table = db.create_table("t", Schema.of(("name", TEXT)))
        table.insert(["x"], confidence=0.5)
        live = table_fingerprint(table)
        snapshot = MVCCDatabase(db).snapshot()
        try:
            assert table_fingerprint(snapshot.db.table("t")) == live
        finally:
            snapshot.release()
