"""Table scan/row/column caches: reuse across reads, invalidation on writes."""

from __future__ import annotations

import pytest

from repro.storage import Database, INTEGER, REAL, Schema, TEXT


@pytest.fixture
def table():
    db = Database("cache-test")
    t = db.create_table(
        "t", Schema.of(("name", TEXT), ("score", INTEGER))
    )
    t.insert(["a", 1], confidence=0.5)
    t.insert(["b", 2], confidence=0.6)
    t.insert(["c", 3], confidence=0.7)
    return t


def test_rows_are_stable_across_calls(table):
    assert table.rows() == [("a", 1), ("b", 2), ("c", 3)]
    assert table.rows() == table.rows()


def test_scan_reuses_cached_list(table):
    first = list(table.scan())
    second = list(table.scan())
    # Same StoredTuple objects, same order: the sorted list is cached.
    assert [id(row) for row in first] == [id(row) for row in second]


def test_column_data_is_cached(table):
    columns_a, tids_a = table.column_data()
    columns_b, tids_b = table.column_data()
    assert columns_a is columns_b
    assert tids_a is tids_b
    assert list(columns_a[0]) == ["a", "b", "c"]
    assert list(columns_a[1]) == [1, 2, 3]
    assert len(tids_a) == 3


def test_column_data_empty_table():
    db = Database("cache-test")
    t = db.create_table("empty", Schema.of(("x", REAL)))
    columns, tids = t.column_data()
    assert columns == ([],)
    assert tids == []


def test_insert_invalidates_caches(table):
    before = table.column_data()
    version = table.data_version
    table.insert(["d", 4], confidence=0.8)
    assert table.data_version > version
    after = table.column_data()
    assert after is not before and after[0] is not before[0]
    assert list(after[0][0]) == ["a", "b", "c", "d"]
    assert table.rows()[-1] == ("d", 4)


def test_delete_invalidates_caches(table):
    tid = next(iter(table.scan())).tid
    version = table.data_version
    table.column_data()
    table.delete(tid)
    assert table.data_version > version
    assert table.rows() == [("b", 2), ("c", 3)]
    assert list(table.column_data()[0][0]) == ["b", "c"]


def test_update_invalidates_caches(table):
    tid = next(iter(table.scan())).tid
    table.rows()
    version = table.data_version
    table.update(tid, ["a2", 10])
    assert table.data_version > version
    assert table.rows()[0] == ("a2", 10)


def test_set_confidence_invalidates_caches(table):
    tid = next(iter(table.scan())).tid
    table.column_data()
    version = table.data_version
    table.set_confidence(tid, 0.95)
    assert table.data_version > version
    refreshed = {row.tid: row.confidence for row in table.scan()}
    assert refreshed[tid] == 0.95


def test_cached_columns_are_not_mutated_by_queries():
    """Engines must treat shared column lists as read-only."""
    from repro.sql import run_sql

    db = Database("cache-test")
    t = db.create_table("t", Schema.of(("name", TEXT), ("score", INTEGER)))
    for name, score in [("a", 1), ("b", 2), ("c", 3)]:
        t.insert([name, score], confidence=0.5)
    columns, _tids = t.column_data()
    snapshot = [list(column) for column in columns]
    run_sql(db, "SELECT name FROM t WHERE score > 1", engine="columnar")
    assert [list(column) for column in t.column_data()[0]] == snapshot
    assert t.column_data()[0] is columns


class TestConcurrentCacheBuilds:
    """Regression: a writer racing ``column_data()`` must never publish a
    stale columnar view (or crash the build mid-iteration)."""

    def test_writer_racing_column_data_never_publishes_stale_view(self):
        import threading

        db = Database("race-test")
        t = db.create_table("t", Schema.of(("k", INTEGER), ("v", INTEGER)))
        for i in range(64):
            t.insert([i, i * 2], confidence=0.5)

        stop = threading.Event()
        errors: list[BaseException] = []

        def writer():
            i = 64
            try:
                while not stop.is_set():
                    t.insert([i, i * 2], confidence=0.5)
                    i += 1
            except BaseException as error:  # noqa: BLE001 - reraised below
                errors.append(error)

        def reader():
            try:
                while not stop.is_set():
                    columns, tids = t.column_data()
                    # Internal consistency: the published view must be one
                    # atomic cut of the table — correlated columns, aligned
                    # tid list.  Pre-fix, the build could crash on a dict
                    # mutated mid-iteration or tear across a mutation.
                    assert len(columns[0]) == len(columns[1]) == len(tids)
                    for k, v, tid in zip(columns[0], columns[1], tids):
                        assert v == k * 2
                        assert tid.ordinal == k
            except BaseException as error:  # noqa: BLE001 - reraised below
                errors.append(error)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors, errors[0]

        # After the writer quiesces, the cache must reflect the final
        # state: a stale view published after the last mutation would
        # silently serve the wrong rows to the columnar engine.
        columns, tids = t.column_data()
        assert len(tids) == len(t)
        assert list(columns[0]) == [tid.ordinal for tid in tids]

    def test_stale_build_is_not_published_after_mutation(self):
        """Deterministic version of the race: a build that straddles a
        mutation must not install its (stale) result."""
        db = Database("race-test")
        t = db.create_table("t", Schema.of(("k", INTEGER),))
        t.insert([0], confidence=0.5)

        # Simulate the torn interleaving directly: capture a build of the
        # current state, mutate, then attempt to publish the stale build
        # through the real publication path (version re-check).
        with t._lock:
            version = t.data_version
            stale = t.column_data()
        t.insert([1], confidence=0.5)
        # The re-check the fix added: publishing requires the version to
        # be unchanged.  Re-building now must reflect the new row.
        assert t.data_version != version
        columns, tids = t.column_data()
        assert list(columns[0]) == [0, 1]
        assert len(tids) == 2
        assert stale[0] != columns
