"""Float-boundary tests for policy enforcement.

Two contracts pinned here:

* ``FilterOutcome.shortfall(θ)`` agrees exactly with ``satisfies(θ)`` —
  ``shortfall == 0 ⟺ satisfies`` — including at fractions where naive
  ``ceil(θ·n)`` arithmetic rounds the wrong way (θ·n integral, θ the
  float just above 1/3, θ ∈ {0, 1}, empty result sets);
* the release predicate is strictly ``confidence > β`` (paper §2): a row
  whose confidence *equals* the threshold is withheld.
"""

import math

import pytest

from repro.algebra.rows import AnnotatedTuple, ResultSet
from repro.lineage import var
from repro.policy import PolicyEvaluator
from repro.policy.enforcement import FilterOutcome
from repro.storage import Schema, TEXT, TupleId


def outcome(released: int, withheld: int) -> FilterOutcome:
    """A FilterOutcome with the given partition sizes (rows are dummies)."""
    return FilterOutcome(
        threshold=0.5,
        released=[(None, 0.9)] * released,
        withheld=[(None, 0.1)] * withheld,
    )


class TestShortfallSatisfiesAlignment:
    @pytest.mark.parametrize("total", range(1, 13))
    def test_shortfall_zero_iff_satisfies(self, total):
        fractions = {0.0, 1.0, 0.25, 0.5, 0.75, 1 / 3, 2 / 3}
        fractions |= {k / total for k in range(total + 1)}
        fractions |= {
            math.nextafter(f, 1.0) for f in list(fractions) if f < 1.0
        }
        fractions |= {
            math.nextafter(f, 0.0) for f in list(fractions) if f > 0.0
        }
        for released in range(total + 1):
            out = outcome(released, total - released)
            for theta in fractions:
                shortfall = out.shortfall(theta)
                assert (shortfall == 0) == out.satisfies(theta), (
                    f"released={released}/{total} θ={theta!r}: "
                    f"shortfall={shortfall} but satisfies="
                    f"{out.satisfies(theta)}"
                )

    @pytest.mark.parametrize("total", range(1, 13))
    def test_shortfall_is_the_minimal_fix(self, total):
        """Releasing exactly `shortfall` more rows satisfies; one fewer
        does not."""
        for released in range(total + 1):
            out = outcome(released, total - released)
            for theta in (0.0, 0.3, 1 / 3, 0.5, 2 / 3, 0.75, 1.0):
                missing = out.shortfall(theta)
                assert 0 <= missing <= total - released
                fixed = outcome(released + missing, total - released - missing)
                assert fixed.satisfies(theta)
                if missing > 0:
                    nearly = outcome(
                        released + missing - 1,
                        total - released - missing + 1,
                    )
                    assert not nearly.satisfies(theta)

    def test_theta_times_n_integral(self):
        # θ·n = 2 exactly: 2 released rows of 4 suffice, 1 is short by 1.
        assert outcome(2, 2).shortfall(0.5) == 0
        assert outcome(1, 3).shortfall(0.5) == 1

    def test_theta_just_above_a_third_demands_the_next_row(self):
        # Naive ceil(θ·3 − ε) evaluates to 1, but 1/3 < nextafter(1/3, 1).
        theta = math.nextafter(1 / 3, 1.0)
        out = outcome(1, 2)
        assert not out.satisfies(theta)
        assert out.shortfall(theta) == 1

    def test_theta_zero_is_always_satisfied(self):
        assert outcome(0, 5).shortfall(0.0) == 0
        assert outcome(0, 5).satisfies(0.0)

    def test_theta_one_demands_every_row(self):
        assert outcome(2, 3).shortfall(1.0) == 3
        assert outcome(5, 0).shortfall(1.0) == 0

    def test_empty_result_set_is_vacuously_satisfied(self):
        empty = outcome(0, 0)
        assert empty.released_fraction == 1.0
        for theta in (0.0, 0.5, 1.0):
            assert empty.satisfies(theta)
            assert empty.shortfall(theta) == 0


class TestStrictThresholdSemantics:
    """Release requires ``confidence > β``, never ``>=``."""

    def _result(self, confidences):
        schema = Schema.of(("name", TEXT))
        tids = [TupleId("t", index) for index in range(len(confidences))]
        rows = [
            AnnotatedTuple((f"row{index}",), var(tid))
            for index, tid in enumerate(tids)
        ]
        source = dict(zip(tids, confidences))
        return ResultSet(schema, rows), source

    def test_confidence_equal_to_threshold_is_withheld(self):
        result, source = self._result([0.5])
        out = PolicyEvaluator.apply_threshold(result, source, 0.5)
        assert len(out.released) == 0
        assert len(out.withheld) == 1

    def test_confidence_just_above_threshold_is_released(self):
        beta = 0.5
        result, source = self._result([math.nextafter(beta, 1.0)])
        out = PolicyEvaluator.apply_threshold(result, source, beta)
        assert len(out.released) == 1

    def test_boundary_partition_is_exhaustive_and_disjoint(self):
        beta = 0.3
        confidences = [
            0.0,
            math.nextafter(beta, 0.0),
            beta,
            math.nextafter(beta, 1.0),
            1.0,
        ]
        result, source = self._result(confidences)
        out = PolicyEvaluator.apply_threshold(result, source, beta)
        assert out.total == len(confidences)
        assert len(out.released) == 2  # strictly above only
        released_values = sorted(confidence for _, confidence in out.released)
        assert released_values == [math.nextafter(beta, 1.0), 1.0]

    def test_threshold_extremes(self):
        result, source = self._result([0.0, 0.5, 1.0])
        # β = 0: everything with any confidence at all is released.
        at_zero = PolicyEvaluator.apply_threshold(result, source, 0.0)
        assert len(at_zero.released) == 2  # 0.0 is not > 0.0
        # β = 1: nothing can strictly exceed it.
        at_one = PolicyEvaluator.apply_threshold(result, source, 1.0)
        assert len(at_one.released) == 0
