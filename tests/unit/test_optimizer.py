"""Unit tests for the rule-based optimizer: rewrites preserve results."""

import pytest

from repro.algebra import Query, col, execute, lit, optimize
from repro.algebra.plan import Filter, Join, Project, Scan
from repro.storage import Database, REAL, Schema, TEXT


@pytest.fixture
def db() -> Database:
    database = Database()
    orders = database.create_table(
        "orders", Schema.of(("customer", TEXT), ("amount", REAL))
    )
    for customer, amount, conf in [
        ("a", 10.0, 0.9),
        ("b", 20.0, 0.8),
        ("a", 30.0, 0.7),
        ("c", 40.0, 0.6),
    ]:
        orders.insert([customer, amount], confidence=conf)
    customers = database.create_table(
        "customers", Schema.of(("customer", TEXT), ("region", TEXT))
    )
    customers.insert(["a", "east"], confidence=0.5)
    customers.insert(["b", "west"], confidence=0.5)
    return database


def _results_match(plan):
    """Optimized and raw plans must agree on values AND lineage."""
    raw = execute(plan)
    optimized = execute(optimize(plan))
    raw_set = sorted(repr((row.values, row.lineage)) for row in raw)
    opt_set = sorted(repr((row.values, row.lineage)) for row in optimized)
    assert raw_set == opt_set
    return optimize(plan)


class TestPushdown:
    def test_filter_pushes_into_join_left_side(self, db):
        plan = Filter(
            Join(
                Scan(db.table("orders")),
                Scan(db.table("customers")),
                col("orders.customer") == col("customers.customer"),
            ),
            col("amount") > lit(15.0),
        )
        optimized = _results_match(plan)
        # The filter should now sit below the join.
        assert isinstance(optimized, Join)
        assert isinstance(optimized.left, Filter)

    def test_filter_pushes_into_join_right_side(self, db):
        plan = Filter(
            Join(
                Scan(db.table("orders")),
                Scan(db.table("customers")),
                col("orders.customer") == col("customers.customer"),
            ),
            col("region") == lit("east"),
        )
        optimized = _results_match(plan)
        assert isinstance(optimized, Join)
        assert isinstance(optimized.right, Filter)

    def test_conjunction_splits_both_ways(self, db):
        predicate = (col("amount") > lit(5.0)) & (col("region") == lit("east"))
        plan = Filter(
            Join(
                Scan(db.table("orders")),
                Scan(db.table("customers")),
                col("orders.customer") == col("customers.customer"),
            ),
            predicate,
        )
        optimized = _results_match(plan)
        assert isinstance(optimized, Join)
        assert isinstance(optimized.left, Filter)
        assert isinstance(optimized.right, Filter)

    def test_join_condition_column_stays_above(self, db):
        # A predicate touching both sides cannot be pushed.
        plan = Filter(
            Join(
                Scan(db.table("orders")),
                Scan(db.table("customers")),
                col("orders.customer") == col("customers.customer"),
            ),
            col("amount") > lit(0.0),
        )
        _results_match(plan)

    def test_filter_pushes_below_pure_projection(self, db):
        from repro.algebra.plan import ProjectItem
        from repro.algebra.expressions import ColumnRef

        plan = Filter(
            Project(
                Scan(db.table("orders")),
                [ProjectItem(ColumnRef("customer")), ProjectItem(ColumnRef("amount"))],
            ),
            col("amount") > lit(15.0),
        )
        optimized = _results_match(plan)
        assert isinstance(optimized, Project)
        assert isinstance(optimized.child, Filter)

    def test_filter_not_pushed_through_distinct(self, db):
        from repro.algebra.plan import ProjectItem
        from repro.algebra.expressions import ColumnRef

        plan = Filter(
            Project(
                Scan(db.table("orders")),
                [ProjectItem(ColumnRef("customer"))],
                distinct=True,
            ),
            col("customer") == lit("a"),
        )
        optimized = _results_match(plan)
        assert isinstance(optimized, Filter)  # stays on top

    def test_filter_not_pushed_through_computed_projection(self, db):
        from repro.algebra.plan import ProjectItem

        plan = Filter(
            Project(
                Scan(db.table("orders")),
                [ProjectItem(col("amount") * lit(2), "double")],
            ),
            col("double") > lit(30.0),
        )
        optimized = _results_match(plan)
        assert isinstance(optimized, Filter)

    def test_left_join_filter_not_pushed(self, db):
        plan = Filter(
            Join(
                Scan(db.table("orders")),
                Scan(db.table("customers")),
                col("orders.customer") == col("customers.customer"),
                kind="left",
            ),
            col("amount") > lit(15.0),
        )
        optimized = _results_match(plan)
        assert isinstance(optimized, Filter)


class TestFilterMerging:
    def test_stacked_filters_merge(self, db):
        plan = Filter(
            Filter(Scan(db.table("orders")), col("amount") > lit(5.0)),
            col("customer") == lit("a"),
        )
        optimized = _results_match(plan)
        assert isinstance(optimized, Filter)
        assert not isinstance(optimized.child, Filter)

    def test_query_builder_uses_optimizer(self, db):
        q = (
            Query.scan(db.table("orders"))
            .where(col("amount") > lit(5.0))
            .where(col("customer") == lit("a"))
        )
        assert q.run().values() == q.run(optimized=False).values()
