"""Replica nodes: streaming apply, replica reads, scrubbing, quarantine."""

from __future__ import annotations

import os
import time

import pytest

from repro.obs import MetricsRegistry, get_metrics, set_metrics
from repro.policy import PolicyStore
from repro.server import (
    NetworkFaultInjector,
    NetworkFaultSpec,
    PCQEServer,
    Replica,
    RetryingClient,
    Scrubber,
    ServerClient,
    ServerReplyError,
)
from repro.storage.database import Database
from repro.storage.durability import database_fingerprints
from repro.storage.durability.recovery import WAL_FILE


@pytest.fixture(autouse=True)
def fresh_metrics():
    """Replication counters are asserted per-test; isolate the registry."""
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _policies() -> PolicyStore:
    policies = PolicyStore(default_threshold=0.0)
    policies.add_role("Manager")
    policies.add_purpose("ops")
    policies.add_user("bob", roles=["Manager"])
    policies.add_policy("Manager", "ops", 0.0)
    return policies


def _client(server_or_port, **kwargs) -> RetryingClient:
    port = getattr(server_or_port, "port", server_or_port)
    kwargs.setdefault("user", "bob")
    kwargs.setdefault("purpose", "ops")
    kwargs.setdefault("sleep", lambda _s: None)
    return RetryingClient(endpoints=[f"127.0.0.1:{port}"], **kwargs)


def _seed_rows(client: RetryingClient, count: int = 5) -> None:
    client.sql("CREATE TABLE t (name TEXT, qty INT)")
    for index in range(count):
        client.sql(
            f"INSERT INTO t VALUES ('row{index}', {index}) "
            f"WITH CONFIDENCE 0.9"
        )


def _eventually(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


@pytest.fixture
def primary(tmp_path):
    policies = _policies()
    db = Database.open(str(tmp_path / "primary"))
    server = PCQEServer(db, policies, port=0).start()
    try:
        yield server, policies, db
    finally:
        server.stop()
        db.close()


class TestStreamingApply:
    def test_replica_converges_and_serves_reads(self, tmp_path, primary):
        server, policies, db = primary
        client = _client(server)
        _seed_rows(client)
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            data_dir=str(tmp_path / "replica"),
            pull_interval=0.01,
            wait_ms=50,
        ) as replica:
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            # The replica's logical state is byte-identical.
            assert database_fingerprints(replica._db) == (
                database_fingerprints(db)
            )
            reader = _client(replica.server)
            reader.last_write_seq = client.last_write_seq
            reply = reader.sql("SELECT * FROM t")
            assert reply["count"] == 5
            assert reply["seq"] >= client.last_write_seq
            reader.close()
        client.close()

    def test_in_memory_replica_needs_no_data_dir(self, primary):
        server, policies, _db = primary
        client = _client(server)
        _seed_rows(client, count=2)
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            pull_interval=0.01,
            wait_ms=50,
        ) as replica:
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            reader = _client(replica.server)
            assert reader.sql("SELECT * FROM t")["count"] == 2
            reader.close()
        client.close()

    def test_duplicated_frames_apply_exactly_once(self, primary):
        server, policies, _db = primary
        client = _client(server)
        _seed_rows(client)
        faults = NetworkFaultInjector(
            NetworkFaultSpec("repl.frame", "dup", occurrence=2)
        )
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            pull_interval=0.01,
            wait_ms=50,
            faults=faults,
        ) as replica:
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            metrics = get_metrics()
            assert metrics.counter("repl.duplicate_frames").snapshot() >= 1
            assert metrics.counter("repl.faults.injected").snapshot() >= 1
            reader = _client(replica.server)
            assert reader.sql("SELECT * FROM t")["count"] == 5
            reader.close()
        client.close()

    def test_cold_replica_bootstraps_from_snapshot(self, tmp_path, primary):
        server, policies, db = primary
        assert server.replication is not None
        # Shrink the feed so the early frames are evicted before the
        # replica is born: the incremental stream cannot start at 0 and
        # the replica must bootstrap from a primary snapshot.
        server.replication.feed._capacity = 3
        client = _client(server)
        _seed_rows(client, count=8)
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            data_dir=str(tmp_path / "cold"),
            pull_interval=0.01,
            wait_ms=50,
        ) as replica:
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            # The counter lands after the post-resync checkpoint, a few
            # ms behind the position publish the wait observed.
            assert _eventually(
                lambda: get_metrics().counter("repl.resyncs").snapshot() >= 1
            )
            assert database_fingerprints(replica._db) == (
                database_fingerprints(db)
            )
        client.close()

    def test_replica_survives_primary_restart_gap(self, tmp_path, primary):
        """Frames written while the link is down stream once it returns."""
        server, policies, _db = primary
        client = _client(server)
        _seed_rows(client, count=2)
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            pull_interval=0.01,
            wait_ms=50,
        ) as replica:
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            for index in range(3):
                client.sql(
                    f"INSERT INTO t VALUES ('late{index}', {index}) "
                    f"WITH CONFIDENCE 0.5"
                )
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            reader = _client(replica.server)
            assert reader.sql("SELECT * FROM t")["count"] == 5
            reader.close()
        client.close()


class TestReplicaReads:
    def test_writes_answer_not_primary_with_rotate(self, primary):
        server, policies, _db = primary
        client = _client(server)
        _seed_rows(client, count=1)
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            pull_interval=0.01,
            wait_ms=50,
        ) as replica:
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            raw = ServerClient(
                "127.0.0.1", replica.server.port, user="bob", purpose="ops"
            )
            with pytest.raises(ServerReplyError) as excinfo:
                raw.sql("INSERT INTO t VALUES ('nope', 1) WITH CONFIDENCE 0.5")
            error = excinfo.value.error
            assert error["type"] == "NotPrimaryError"
            assert error["rotate"] is True
            assert error["role"] == "replica"
            raw.close()
        client.close()

    def test_min_seq_beyond_position_is_a_lag_error(self, primary):
        server, policies, _db = primary
        client = _client(server)
        _seed_rows(client, count=1)
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            pull_interval=0.01,
            wait_ms=50,
            min_seq_wait=0.05,
        ) as replica:
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            raw = ServerClient(
                "127.0.0.1", replica.server.port, user="bob", purpose="ops"
            )
            with pytest.raises(ServerReplyError) as excinfo:
                raw.request(
                    {
                        "op": "sql",
                        "sql": "SELECT * FROM t",
                        "min_seq": client.last_write_seq + 100,
                    }
                )
            error = excinfo.value.error
            assert error["type"] == "ReplicaLagError"
            assert error["retryable"] is True
            assert error["min_seq"] == client.last_write_seq + 100
            raw.close()
        client.close()

    def test_multi_endpoint_client_routes_writes_to_the_primary(
        self, primary
    ):
        server, policies, _db = primary
        client = _client(server)
        _seed_rows(client, count=1)
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            pull_interval=0.01,
            wait_ms=50,
        ) as replica:
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            # Replica listed first: the write must rotate, not fail.
            router = RetryingClient(
                endpoints=[
                    f"127.0.0.1:{replica.server.port}",
                    f"127.0.0.1:{server.port}",
                ],
                user="bob",
                purpose="ops",
                sleep=lambda _s: None,
            )
            reply = router.sql(
                "INSERT INTO t VALUES ('routed', 7) WITH CONFIDENCE 0.8"
            )
            assert reply["ok"] is True
            assert router.server_role == "primary"
            assert (
                get_metrics().counter("client.endpoint_rotations").snapshot()
                >= 1
            )
            router.close()
        client.close()

    def test_quarantined_table_reads_are_retryable_errors(self, primary):
        server, policies, _db = primary
        client = _client(server)
        _seed_rows(client, count=1)
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            pull_interval=0.01,
            wait_ms=50,
        ) as replica:
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            replica.server.quarantine.add("t")
            raw = ServerClient(
                "127.0.0.1", replica.server.port, user="bob", purpose="ops"
            )
            with pytest.raises(ServerReplyError) as excinfo:
                raw.sql("SELECT * FROM t")
            error = excinfo.value.error
            assert error["type"] == "QuarantinedTableError"
            assert error["retryable"] is True
            assert error["table"] == "t"
            replica.server.quarantine.clear()
            assert raw.sql("SELECT * FROM t")["count"] == 1
            raw.close()
        client.close()


class TestScrubber:
    def test_clean_state_scrubs_clean(self, tmp_path, primary):
        server, policies, _db = primary
        client = _client(server)
        _seed_rows(client)
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            data_dir=str(tmp_path / "replica"),
            pull_interval=0.01,
            wait_ms=50,
        ) as replica:
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            report = Scrubber(replica).run_once()
            assert report == {
                "corruption": [],
                "divergent": [],
                "checked": True,
            }
        client.close()

    def test_divergent_table_is_quarantined_then_resynced(self, primary):
        server, policies, db = primary
        client = _client(server)
        _seed_rows(client)
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            pull_interval=0.01,
            wait_ms=50,
        ) as replica:
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            # Rot the replica's copy behind the replication stream's
            # back (an in-memory replica journals nothing).
            replica._db.table("t").insert(["phantom", 99], confidence=0.5)
            report = Scrubber(replica).run_once()
            assert report["divergent"] == ["t"]
            assert "t" in replica.server.quarantine
            assert (
                get_metrics().counter("repl.scrub.divergences").snapshot()
                >= 1
            )
            # The requested resync rebuilds the table from a primary
            # snapshot and lifts the quarantine.
            assert _eventually(
                lambda: get_metrics().counter("repl.resyncs").snapshot() >= 1
            )
            assert _eventually(lambda: not replica.server.quarantine)
            assert _eventually(
                lambda: database_fingerprints(replica._db)
                == database_fingerprints(db)
            )
            assert Scrubber(replica).run_once()["divergent"] == []
        client.close()

    def test_wal_corruption_triggers_resync(self, tmp_path, primary):
        server, policies, _db = primary
        client = _client(server)
        _seed_rows(client)
        data_dir = str(tmp_path / "replica")
        with Replica(
            [f"127.0.0.1:{server.port}"],
            policies,
            data_dir=data_dir,
            pull_interval=0.01,
            wait_ms=50,
        ) as replica:
            assert replica.wait_for_position(client.last_write_seq, 5.0)
            with open(os.path.join(data_dir, WAL_FILE), "r+b") as handle:
                handle.seek(-3, os.SEEK_END)
                handle.write(b"\xff")
            report = Scrubber(replica).run_once()
            assert report["corruption"]
            assert (
                get_metrics().counter("repl.scrub.corruption").snapshot() >= 1
            )
            assert _eventually(
                lambda: get_metrics().counter("repl.resyncs").snapshot() >= 1
            )
            # Post-resync the on-disk log is fresh and verifies clean.
            assert _eventually(
                lambda: Scrubber(replica).run_once()["corruption"] == []
            )
        client.close()
