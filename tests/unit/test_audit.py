"""Unit tests for the decision audit journal (repro.obs.audit)."""

import json
import threading

import pytest

from repro import PCQEngine, QueryRequest, QueryStatus
from repro.errors import CorruptLogError
from repro.obs.audit import (
    AUDIT_SCHEMA_VERSION,
    AuditLog,
    AuditReplayError,
    build_trails,
    explain_decision,
    read_audit_log,
    reconstruct_decisions,
)
from repro.obs.audit.log import _crc32, _encode, _encode_batch
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.storage.durability.wal import scan_wal


@pytest.fixture
def isolated_metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)


def write_one_query(log: AuditLog) -> str:
    query_id = log.begin_query(
        user="alice",
        purpose="analysis",
        role="broker",
        threshold=0.5,
        required_fraction=0.5,
        sql="SELECT * FROM Proposal",
    )
    log.record_decisions(
        query_id,
        [
            ("t0", ["A", 1.5], 0.2, "blocked", "initial", [("Proposal:1", 0.2)]),
            ("t1", ["B", 0.8], 0.7, "released", "initial", [("Proposal:2", 0.7)]),
        ],
    )
    log.record_increment(
        query_id, approved=True, cost=100.0, targets={"Proposal:1": 0.6}
    )
    log.record_decision(
        query_id,
        "t0",
        values=["A", 1.5],
        confidence=0.6,
        verdict="released",
        phase="post_increment",
        lineage=[("Proposal:1", 0.6)],
    )
    log.end_query(query_id, status="improved", released=2, withheld=0)
    return query_id


class TestAuditLogRoundTrip:
    def test_records_come_back_in_append_order(self, tmp_path, isolated_metrics):
        path = tmp_path / "audit.log"
        with AuditLog(str(path)) as log:
            query_id = write_one_query(log)
        records = read_audit_log(path)
        assert [r["kind"] for r in records] == [
            "query",
            "decision",
            "decision",
            "increment",
            "decision",
            "outcome",
        ]
        assert all(r["query_id"] == query_id for r in records)

    def test_only_the_query_record_carries_schema(self, tmp_path, isolated_metrics):
        path = tmp_path / "audit.log"
        with AuditLog(str(path)) as log:
            write_one_query(log)
        records = read_audit_log(path)
        assert records[0]["schema"] == AUDIT_SCHEMA_VERSION
        assert all("schema" not in r for r in records[1:])

    def test_frames_are_canonical_json_arrays(self, tmp_path, isolated_metrics):
        """Each on-disk frame must be byte-identical to the canonical
        re-encoding of its records — the invariant that lets the hot path
        skip ``sort_keys``."""
        path = tmp_path / "audit.log"
        with AuditLog(str(path)) as log:
            write_one_query(log)
            write_one_query(log)
        scan = scan_wal(path, checksum=_crc32)
        assert len(scan.payloads) == 2  # one frame per query
        for payload in scan.payloads:
            batch = json.loads(payload.decode("utf-8"))
            canonical = b"[" + b",".join(_encode(r) for r in batch) + b"]"
            assert payload == canonical
            assert _encode_batch(batch) == payload

    def test_verdict_validation(self, tmp_path, isolated_metrics):
        with AuditLog(str(tmp_path / "audit.log")) as log:
            query_id = log.begin_query(
                user="u", purpose="p", role="r",
                threshold=0.5, required_fraction=1.0, sql="SELECT 1",
            )
            with pytest.raises(ValueError):
                log.record_decisions(
                    query_id, [("t0", [], 0.5, "maybe", "initial", [])]
                )

    def test_closed_log_rejects_appends(self, tmp_path, isolated_metrics):
        log = AuditLog(str(tmp_path / "audit.log"))
        log.close()
        log.close()  # idempotent
        with pytest.raises(ValueError):
            log.begin_query(
                user="u", purpose="p", role="r",
                threshold=0.5, required_fraction=1.0, sql="SELECT 1",
            )
        with pytest.raises(ValueError):
            log.record_decisions("q1", [("t0", [], 0.5, "released", "initial", [])])

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_audit_log(tmp_path / "absent.log") == []

    def test_metrics_counters(self, tmp_path, isolated_metrics):
        with AuditLog(str(tmp_path / "audit.log")) as log:
            write_one_query(log)
        snap = isolated_metrics.snapshot()
        assert snap["audit.queries"] == 1
        assert snap["audit.records"] == 6
        assert snap["audit.decisions"] == 3
        assert snap["audit.bytes"] > 0


class TestAuditLogRecovery:
    def test_query_counter_resumes_after_reopen(self, tmp_path, isolated_metrics):
        path = tmp_path / "audit.log"
        with AuditLog(str(path)) as log:
            assert write_one_query(log) == "q1"
            assert write_one_query(log) == "q2"
        with AuditLog(str(path)) as log:
            assert write_one_query(log) == "q3"
        ids = {r["query_id"] for r in read_audit_log(path)}
        assert ids == {"q1", "q2", "q3"}

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path, isolated_metrics):
        path = tmp_path / "audit.log"
        with AuditLog(str(path)) as log:
            write_one_query(log)
        intact = path.read_bytes()
        # A crash mid-append leaves a prefix of the next frame.
        path.write_bytes(intact + b"\x99\x00\x00\x00")
        with AuditLog(str(path)) as log:
            assert write_one_query(log) == "q2"
        records = read_audit_log(path)
        assert {r["query_id"] for r in records} == {"q1", "q2"}

    def test_checksum_corruption_raises(self, tmp_path, isolated_metrics):
        path = tmp_path / "audit.log"
        with AuditLog(str(path)) as log:
            write_one_query(log)
        data = bytearray(path.read_bytes())
        data[-2] ^= 0xFF  # flip a bit inside the last frame's payload
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptLogError):
            read_audit_log(path)

    def test_close_flushes_orphan_trails(self, tmp_path, isolated_metrics):
        """A query that dies before end_query still leaves its evidence."""
        path = tmp_path / "audit.log"
        log = AuditLog(str(path))
        query_id = log.begin_query(
            user="u", purpose="p", role="r",
            threshold=0.5, required_fraction=1.0, sql="SELECT 1",
        )
        log.record_decisions(
            query_id, [("t0", [1], 0.4, "blocked", "initial", [])]
        )
        log.close()
        records = read_audit_log(path)
        assert [r["kind"] for r in records] == ["query", "decision"]


class TestDeferredWriter:
    def test_drain_makes_trails_visible(self, tmp_path, isolated_metrics):
        path = tmp_path / "audit.log"
        with AuditLog(str(path), deferred=True) as log:
            write_one_query(log)
            log.drain()
            assert len(read_audit_log(path)) == 6
        assert len(read_audit_log(path)) == 6

    def test_write_failure_is_surfaced_not_raised(
        self, tmp_path, isolated_metrics
    ):
        with AuditLog(str(tmp_path / "audit.log"), deferred=True) as log:
            def boom(payload):
                raise OSError("disk full")

            log._wal.append = boom
            write_one_query(log)
            log.drain()
            assert isinstance(log.write_error, OSError)
        assert isolated_metrics.snapshot()["audit.write_errors"] == 1

    def test_batches_flush_in_completion_order(self, tmp_path, isolated_metrics):
        path = tmp_path / "audit.log"
        with AuditLog(str(path), deferred=True) as log:
            for _ in range(5):
                write_one_query(log)
            log.drain()
        ids = [r["query_id"] for r in read_audit_log(path) if r["kind"] == "query"]
        assert ids == ["q1", "q2", "q3", "q4", "q5"]

    def test_concurrent_queries_keep_trails_intact(
        self, tmp_path, isolated_metrics
    ):
        path = tmp_path / "audit.log"
        with AuditLog(str(path), deferred=True) as log:
            threads = [
                threading.Thread(target=write_one_query, args=(log,))
                for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            log.drain()
        trails = build_trails(read_audit_log(path))
        assert len(trails) == 8
        for trail in trails.values():
            assert trail.query is not None
            assert trail.outcome is not None
            assert len(trail.decisions) == 3


class TestReplayAndExplain:
    def test_reconstruct_decisions_matches_disk_bytes(
        self, tmp_path, isolated_metrics
    ):
        path = tmp_path / "audit.log"
        with AuditLog(str(path)) as log:
            query_id = write_one_query(log)
        records = read_audit_log(path)
        replayed = reconstruct_decisions(records, query_id)
        scan = scan_wal(path, checksum=_crc32)
        on_disk = b"".join(scan.payloads)
        assert len(replayed) == 3
        for encoded in replayed:
            assert encoded in on_disk

    def test_reconstruct_unknown_query_raises(self, tmp_path, isolated_metrics):
        with pytest.raises(AuditReplayError):
            reconstruct_decisions([], "q404")

    def test_explain_tells_the_whole_story(self, tmp_path, isolated_metrics):
        path = tmp_path / "audit.log"
        with AuditLog(str(path)) as log:
            query_id = write_one_query(log)
        text = explain_decision(read_audit_log(path), query_id, "t0")
        assert "policy=⟨broker, analysis, β=0.5⟩" in text
        assert "initial: t0" in text and "→ blocked" in text
        assert "post_increment: t0" in text and "→ released" in text
        assert "increment (applied)" in text
        assert "verdict changed: blocked → released" in text
        assert "outcome: improved" in text

    def test_explain_missing_tuple_raises(self, tmp_path, isolated_metrics):
        path = tmp_path / "audit.log"
        with AuditLog(str(path)) as log:
            query_id = write_one_query(log)
        records = read_audit_log(path)
        with pytest.raises(AuditReplayError):
            explain_decision(records, query_id, "t99")
        with pytest.raises(AuditReplayError):
            explain_decision(records, "q404", "t0")


class TestEngineIntegration:
    def test_improvement_run_audits_verdict_changes(
        self, tmp_path, running_example, isolated_metrics
    ):
        path = tmp_path / "audit.log"
        with AuditLog(str(path)) as log:
            engine = PCQEngine(
                running_example.db, running_example.policies, audit=log
            )
            result = engine.execute(
                QueryRequest(running_example.QUERY, "investment", 1.0),
                user="bob",
            )
        assert result.status is QueryStatus.IMPROVED
        records = read_audit_log(path)
        trails = build_trails(records)
        (trail,) = trails.values()
        assert trail.query["user"] == "bob"
        assert trail.query["threshold"] == pytest.approx(0.06)
        assert trail.outcome["status"] == "improved"
        assert trail.increments and trail.increments[0]["approved"]
        phases = {r["phase"] for r in trail.decisions}
        assert phases == {"initial", "post_increment"}
        # Replay reproduces the on-disk decision bytes exactly.
        scan = scan_wal(path, checksum=_crc32)
        on_disk = b"".join(scan.payloads)
        for encoded in reconstruct_decisions(records, trail.query_id):
            assert encoded in on_disk

    def test_post_increment_records_only_changed_tuples(
        self, tmp_path, running_example, isolated_metrics
    ):
        path = tmp_path / "audit.log"
        with AuditLog(str(path)) as log:
            engine = PCQEngine(
                running_example.db, running_example.policies, audit=log
            )
            engine.execute(
                QueryRequest(running_example.QUERY, "investment", 1.0),
                user="bob",
            )
        (trail,) = build_trails(read_audit_log(path)).values()
        initial = {
            r["tuple_id"]: (r["confidence"], r["verdict"])
            for r in trail.decisions
            if r["phase"] == "initial"
        }
        for record in trail.decisions:
            if record["phase"] != "post_increment":
                continue
            assert initial[record["tuple_id"]] != (
                record["confidence"],
                record["verdict"],
            )

    def test_quoted_run_never_mutates_and_audits_the_quote(
        self, tmp_path, running_example, isolated_metrics
    ):
        path = tmp_path / "audit.log"
        with AuditLog(str(path)) as log:
            engine = PCQEngine(
                running_example.db,
                running_example.policies,
                approval=lambda quote: False,
                audit=log,
            )
            result = engine.execute(
                QueryRequest(running_example.QUERY, "investment", 1.0),
                user="bob",
            )
        assert result.status is QueryStatus.QUOTED
        (trail,) = build_trails(read_audit_log(path)).values()
        assert trail.outcome["status"] == "quoted"
        assert trail.increments and not trail.increments[0]["approved"]
        # No post-increment pass ran, so every decision is initial.
        assert {r["phase"] for r in trail.decisions} == {"initial"}
