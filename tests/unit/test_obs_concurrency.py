"""Thread-safety tests for the observability layer.

The degradation chain runs solver attempts on worker threads, so the
instruments they touch — counters, gauges, histograms, the registry's
get-or-create, and the tracer's contextvar-based span parenting — must
hold up under concurrency: counters must not lose increments and spans
must not adopt parents from unrelated threads.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.increment import DegradationChain, SolverAttempt, as_budgeted, solve_greedy
from repro.obs import (
    JsonLinesSink,
    MetricsRegistry,
    Tracer,
    get_tracer,
    set_metrics,
    set_tracer,
)
from repro.storage.durability.retry import RetryPolicy
from repro.workload import WorkloadSpec, generate_problem

THREADS = 8
ITERATIONS = 2_000


def _run_in_threads(target, count=THREADS):
    threads = [threading.Thread(target=target) for _ in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestMetricsUnderThreads:
    def test_counter_loses_no_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")

        def hammer():
            for _ in range(ITERATIONS):
                counter.inc()

        _run_in_threads(hammer)
        assert counter.value == THREADS * ITERATIONS

    def test_gauge_inc_dec_balance_to_zero(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")

        def hammer():
            for _ in range(ITERATIONS):
                gauge.inc(2.0)
                gauge.dec(2.0)

        _run_in_threads(hammer)
        assert gauge.value == 0.0

    def test_histogram_counts_every_observation(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")

        def hammer():
            for index in range(ITERATIONS):
                histogram.observe(float(index % 7))

        _run_in_threads(hammer)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == THREADS * ITERATIONS
        assert sum(snapshot["buckets"].values()) == THREADS * ITERATIONS

    def test_registry_get_or_create_yields_one_instrument(self):
        registry = MetricsRegistry()
        seen: list[int] = []
        barrier = threading.Barrier(THREADS)

        def create():
            barrier.wait()  # maximise racing on the creation path
            for _ in range(100):
                seen.append(id(registry.counter("contested")))

        _run_in_threads(create)
        assert len(set(seen)) == 1

    def test_concurrent_increments_through_registry_lookup(self):
        registry = MetricsRegistry()

        def hammer():
            for _ in range(ITERATIONS):
                registry.counter("via.lookup").inc()

        _run_in_threads(hammer)
        assert registry.counter("via.lookup").value == THREADS * ITERATIONS


class TestTracerUnderThreads:
    def test_fresh_threads_do_not_inherit_the_current_span(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            with tracer.capture() as sink:
                with tracer.span("root"):
                    recorded = []

                    def worker():
                        with tracer.span("detached") as span:
                            recorded.append(span)

                    _run_in_threads(worker, count=2)
            detached = sink.find("detached")
            assert len(detached) == 2
            for span in detached:
                assert span.parent_id is None  # no cross-thread adoption
        finally:
            set_tracer(previous)

    def test_copied_context_preserves_the_parent(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            with tracer.capture() as sink:
                with tracer.span("root") as root:
                    context = contextvars.copy_context()

                    def worker():
                        with tracer.span("adopted"):
                            pass

                    thread = threading.Thread(target=lambda: context.run(worker))
                    thread.start()
                    thread.join()
            (adopted,) = sink.find("adopted")
            assert adopted.parent_id == root.span_id
        finally:
            set_tracer(previous)

    def test_parallel_span_stacks_do_not_interleave(self):
        """Each thread's nesting is private: a child opened on thread A
        never claims a parent opened on thread B."""
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            with tracer.capture() as sink:
                barrier = threading.Barrier(4)

                def worker(label):
                    def run():
                        with tracer.span(f"outer-{label}") as outer:
                            barrier.wait()
                            with tracer.span(f"inner-{label}") as inner:
                                assert inner.parent_id == outer.span_id

                    return run

                threads = [
                    threading.Thread(target=worker(index)) for index in range(4)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            for label in range(4):
                (outer,) = sink.find(f"outer-{label}")
                (inner,) = sink.find(f"inner-{label}")
                assert inner.parent_id == outer.span_id
                assert outer.parent_id is None
        finally:
            set_tracer(previous)


class TestThreadedEngineUse:
    def test_concurrent_degradation_chains_count_every_hop(self):
        """Chains solving in parallel from several threads must account
        for every fallback hop exactly once."""
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            problem = generate_problem(
                WorkloadSpec(data_size=20, tuples_per_result=4), seed=0
            ).problem

            def flaky(problem, budget=None):
                from repro.increment.runtime import budget_exceeded

                raise budget_exceeded("flaky", problem, None)

            chain = DegradationChain(
                [
                    SolverAttempt("flaky", flaky),
                    SolverAttempt("greedy", as_budgeted(solve_greedy)),
                ]
            )
            plans = []

            def solve():
                plans.append(chain.solve(problem))

            _run_in_threads(solve, count=4)
            assert len(plans) == 4
            snapshot = registry.snapshot()
            assert snapshot["pcqe.fallback_hops"] == 4
            assert snapshot["pcqe.fallback_successes"] == 4
        finally:
            set_metrics(previous)

    def test_chain_worker_nesting_survives_concurrency(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            problem = generate_problem(
                WorkloadSpec(data_size=15, tuples_per_result=4), seed=1
            ).problem
            chain = DegradationChain(
                [SolverAttempt("greedy", as_budgeted(solve_greedy))]
            )
            with tracer.capture() as sink:

                def solve():
                    chain.solve(problem)

                _run_in_threads(solve, count=3)
            attempts = sink.find("pcqe.solver_attempt")
            assert len(attempts) == 3
            solver_roots = [
                span for span in sink.spans if span.name == "solver.greedy"
            ]
            assert len(solver_roots) == 3
            # Every solver span hangs off exactly one attempt span.
            attempt_ids = {span.span_id for span in attempts}
            for span in solver_roots:
                assert span.parent_id in attempt_ids
        finally:
            set_tracer(previous)


class _FlakyHandle:
    """A file-like handle that fails the first *failures* writes."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.attempts = 0
        self.lines: list[str] = []

    def write(self, text: str) -> None:
        self.attempts += 1
        if self.attempts <= self.failures:
            raise OSError("transient write failure")
        self.lines.append(text)

    def flush(self) -> None:
        pass


class TestSinkErrorHandling:
    """Tracing must never take the query path down with it."""

    def _isolated(self):
        registry = MetricsRegistry()
        return registry, set_metrics(registry)

    def test_retry_policy_recovers_a_transient_failure(self):
        registry, previous = self._isolated()
        try:
            handle = _FlakyHandle(failures=1)
            retry = RetryPolicy(attempts=3, base_delay=0.0, sleep=lambda _s: None)
            sink = JsonLinesSink(handle, retry=retry)
            tracer = Tracer(sinks=[sink])
            with tracer.span("survives"):
                pass
            assert sink.dropped == 0
            assert handle.attempts == 2  # one failure, one retried success
            assert len(handle.lines) == 1
            assert "trace.sink_errors" not in registry.snapshot()
        finally:
            set_metrics(previous)

    def test_exhausted_retries_count_the_drop_and_do_not_raise(self):
        registry, previous = self._isolated()
        try:
            handle = _FlakyHandle(failures=10)
            retry = RetryPolicy(attempts=2, base_delay=0.0, sleep=lambda _s: None)
            sink = JsonLinesSink(handle, retry=retry)
            tracer = Tracer(sinks=[sink])
            with tracer.span("dropped"):
                pass  # the export failure must not propagate here
            assert sink.dropped == 1
            assert handle.attempts == 2
            assert registry.snapshot()["trace.sink_errors"] == 1
        finally:
            set_metrics(previous)

    def test_concurrent_exports_count_every_drop(self):
        registry, previous = self._isolated()
        try:
            handle = _FlakyHandle(failures=10**9)  # never succeeds
            sink = JsonLinesSink(handle)
            tracer = Tracer(sinks=[sink])

            def trace():
                for _ in range(50):
                    with tracer.span("doomed"):
                        pass

            _run_in_threads(trace, count=4)
            assert sink.dropped == 200
            assert registry.snapshot()["trace.sink_errors"] == 200
        finally:
            set_metrics(previous)


class TestMetricLockContentionUnderPool:
    """The serving arc observes from a thread pool; instruments must stay
    exact while readers (snapshots, percentiles, expositions) run
    concurrently with writers."""

    def test_histogram_is_exact_under_pool_writers_and_readers(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("pool.latency", buckets=[1.0, 5.0, 25.0])
        writes_per_worker = 1_000

        def write(worker: int) -> None:
            for index in range(writes_per_worker):
                histogram.observe(float((worker + index) % 30))

        def read(_worker: int) -> None:
            for _ in range(200):
                snap = histogram.snapshot()
                # A snapshot is internally consistent: bucket counts always
                # sum to the count taken under the same lock.
                assert sum(snap["buckets"].values()) == snap["count"]
                histogram.percentile(95.0)

        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(write, worker) for worker in range(4)]
            futures += [pool.submit(read, worker) for worker in range(4)]
            for future in futures:
                future.result()
        assert histogram.count == 4 * writes_per_worker

    def test_mixed_instruments_under_one_pool(self):
        registry = MetricsRegistry()
        rounds = 500

        def work(worker: int) -> None:
            for _ in range(rounds):
                registry.counter("pool.counter").inc()
                registry.gauge("pool.gauge").inc()
                registry.gauge("pool.gauge").dec()
                registry.histogram("pool.histogram").observe(0.5)

        with ThreadPoolExecutor(max_workers=8) as pool:
            for future in [pool.submit(work, w) for w in range(8)]:
                future.result()
        snap = registry.snapshot()
        assert snap["pool.counter"] == 8 * rounds
        assert snap["pool.gauge"] == 0.0
        assert snap["pool.histogram"]["count"] == 8 * rounds


class TestRegistryAtomicity:
    """Regressions for the check-then-act registry races (ISSUE 8)."""

    def test_snapshot_survives_a_first_touch_storm(self):
        # Pre-fix, snapshot()/names() iterated _instruments without the
        # lock; concurrent first-touch creation made the dict grow mid-
        # iteration and raised RuntimeError.
        registry = MetricsRegistry()
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader() -> None:
            while not stop.is_set():
                try:
                    registry.snapshot()
                    registry.names()
                except BaseException as exc:  # pragma: no cover - reporting
                    errors.append(exc)
                    return

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in readers:
            thread.start()

        def creator(worker: int) -> None:
            for i in range(500):
                registry.counter(f"storm.{worker}.{i}")

        _run_in_threads_indexed(creator)
        stop.set()
        for thread in readers:
            thread.join()
        assert errors == []
        assert len(registry.names()) == THREADS * 500

    def test_histogram_buckets_always_pass_through_creation(self):
        registry = MetricsRegistry()
        first = registry.histogram("h", buckets=[1.0, 2.0])
        again = registry.histogram("h", buckets=[9.0])
        assert again is first
        assert first.buckets == (1.0, 2.0)

    def test_histogram_creation_is_atomic_against_reset(self):
        # Pre-fix, histogram() pre-checked membership outside the lock and
        # dropped the caller's buckets on the "exists" arm — a reset()
        # landing between the check and the create silently registered a
        # DEFAULT_BUCKETS histogram.  Reproduce that interleaving
        # deterministically: a dict whose membership check triggers the
        # concurrent reset.  Post-fix the pre-check is gone (buckets flow
        # through the locked get-or-create), so the hook never fires.
        registry = MetricsRegistry()

        class _ResetOnContains(dict):
            def __contains__(self, key):  # the pre-fix check-then-act window
                result = super().__contains__(key)
                self.clear()
                return result

        registry.histogram("h", buckets=[1.0, 2.0])
        registry._instruments = _ResetOnContains(registry._instruments)
        survivor = registry.histogram("h", buckets=[1.0, 2.0])
        assert survivor.buckets == (1.0, 2.0)

    def test_set_metrics_swap_chain_is_linear(self):
        # Every concurrent set_metrics must displace a *distinct* registry:
        # the previous-values plus the final global are a permutation of
        # {original} ∪ {installed}.  A non-atomic read-then-write lets two
        # threads observe the same previous and lose an install.
        original = MetricsRegistry()
        previous_seen: list[MetricsRegistry] = []
        installed = [MetricsRegistry() for _ in range(THREADS)]
        old = set_metrics(original)
        try:
            barrier = threading.Barrier(THREADS)

            def swap(worker: int) -> None:
                barrier.wait()
                previous_seen.append(set_metrics(installed[worker]))

            _run_in_threads_indexed(swap)
            final = set_metrics(original)
        finally:
            set_metrics(old)
        chain = {id(registry) for registry in previous_seen} | {id(final)}
        assert chain == {id(original)} | {id(r) for r in installed}


def _run_in_threads_indexed(target, count=THREADS):
    threads = [
        threading.Thread(target=target, args=(index,)) for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
