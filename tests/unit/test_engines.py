"""Engine registry, Transfer boundaries, selection policy, and columnar
kernel edge cases — all differentially checked against the native engine."""

from __future__ import annotations

import pytest

from repro.algebra import col, lit
from repro.algebra.executor import execute
from repro.algebra.expressions import Comparison
from repro.algebra.plan import (
    Aggregate,
    AggregateSpec,
    Filter,
    Join,
    Limit,
    Project,
    ProjectItem,
    Scan,
    SemiJoin,
    SetOperation,
    Sort,
    SortKey,
    Transfer,
)
from repro.engines import (
    DEFAULT_AUTO_ROW_THRESHOLD,
    ColumnarEngine,
    NativeEngine,
    engine_names,
    get_engine,
    select_engine,
)
from repro.errors import ExecutionError, PlanError
from repro.lineage.circuit import CircuitPool
from repro.lineage.formula import lineage_and, lineage_or, lineage_not, var
from repro.sql import plan_sql, run_sql
from repro.storage import Database, INTEGER, REAL, Schema, TEXT


def assert_equivalent(db, sql):
    """Both engines produce identical rows, lineage, and confidences."""
    native = run_sql(db, sql, engine="native")
    columnar = run_sql(db, sql, engine="columnar")
    assert [row.values for row in native.rows] == [
        row.values for row in columnar.rows
    ]
    assert [row.lineage for row in native.rows] == [
        row.lineage for row in columnar.rows
    ]
    assert native.confidences(db) == columnar.confidences(db)
    return native, columnar


@pytest.fixture
def db(proposal_db):
    return proposal_db


# -- registry ---------------------------------------------------------------


def test_engine_names():
    assert engine_names() == ("columnar", "native")


def test_get_engine_roundtrip():
    assert isinstance(get_engine("native"), NativeEngine)
    assert isinstance(get_engine("columnar"), ColumnarEngine)


def test_get_engine_unknown():
    with pytest.raises(PlanError, match="unknown engine 'turbo'"):
        get_engine("turbo")


# -- Transfer plan node -----------------------------------------------------


def test_transfer_passes_schema_through(db):
    scan = Scan(db.table("Proposal"))
    transfer = Transfer(scan, "columnar")
    assert transfer.schema is scan.schema
    assert transfer.children == (scan,)
    assert "Transfer[columnar]" in transfer.explain()


def test_transfer_requires_engine_name(db):
    with pytest.raises(PlanError):
        Transfer(Scan(db.table("Proposal")), "")


def test_native_executor_runs_transfer_nodes(db):
    """The native executor delegates Transfer subtrees to the named engine."""
    plan = Transfer(
        Filter(
            Scan(db.table("Proposal")),
            Comparison("<", col("Funding"), lit(1.0)),
        ),
        "columnar",
    )
    result = execute(plan)
    baseline = execute(plan.child)
    assert [row.values for row in result.rows] == [
        row.values for row in baseline.rows
    ]
    assert [row.lineage for row in result.rows] == [
        row.lineage for row in baseline.rows
    ]


# -- engine selection -------------------------------------------------------


def test_select_engine_rejects_unknown_mode(db):
    with pytest.raises(PlanError, match="unknown engine 'vector'"):
        select_engine(Scan(db.table("Proposal")), "vector")


def test_native_mode_never_rewrites(db):
    plan = plan_sql(db, "SELECT Company FROM Proposal WHERE Funding < 1.0")
    prepared = select_engine(plan, "native")
    assert prepared.label == "native"
    assert prepared.plan is plan
    assert prepared.transfers == 0


def test_columnar_mode_takes_supported_tree_whole(db):
    plan = plan_sql(db, "SELECT Company FROM Proposal WHERE Funding < 1.0")
    prepared = select_engine(plan, "columnar")
    assert prepared.label == "columnar"
    assert prepared.plan is plan
    assert prepared.transfers == 0


def test_auto_keeps_small_inputs_native(db):
    plan = plan_sql(db, "SELECT Company FROM Proposal WHERE Funding < 1.0")
    prepared = select_engine(plan, "auto")
    assert prepared.label == "native"


def test_auto_goes_columnar_past_row_threshold():
    db = Database("big")
    table = db.create_table("big", Schema.of(("n", INTEGER)))
    for n in range(DEFAULT_AUTO_ROW_THRESHOLD):
        table.insert([n], confidence=0.5)
    plan = plan_sql(db, "SELECT n FROM big WHERE n < 10")
    prepared = select_engine(plan, "auto")
    assert prepared.label == "columnar"


def test_bare_scan_is_not_worthwhile(db):
    prepared = select_engine(Scan(db.table("Proposal")), "columnar")
    assert prepared.label == "native"
    assert prepared.transfers == 0


def test_mixed_tree_gets_transfer_boundaries(db):
    plan = plan_sql(
        db,
        "SELECT Company FROM Proposal WHERE Funding < 1.0 ORDER BY Company",
    )
    assert isinstance(plan, Sort)
    prepared = select_engine(plan, "columnar")
    assert prepared.label == "native+columnar"
    assert prepared.transfers == 1
    assert isinstance(prepared.plan, Sort)
    assert isinstance(prepared.plan.children[0], Transfer)


def test_aggregate_over_bare_scan_stays_native(db):
    plan = plan_sql(db, "SELECT COUNT(*) FROM Proposal")
    prepared = select_engine(plan, "columnar")
    assert prepared.label == "native"
    assert prepared.plan is plan


def test_columnar_engine_rejects_unsupported_nodes(db):
    aggregate = plan_sql(db, "SELECT COUNT(*) FROM Proposal")
    while not isinstance(aggregate, Aggregate):
        aggregate = aggregate.children[0]
    with pytest.raises(PlanError, match="does not support Aggregate"):
        ColumnarEngine().execute(aggregate)


def test_prepared_mixed_plan_is_equivalent(db):
    sql = "SELECT Company FROM Proposal WHERE Funding < 1.0 ORDER BY Company"
    native = run_sql(db, sql, engine="native")
    mixed = run_sql(db, sql, engine="columnar")
    assert native.engine == "native"
    assert mixed.engine == "native+columnar"
    assert [row.values for row in native.rows] == [
        row.values for row in mixed.rows
    ]
    assert [row.lineage for row in native.rows] == [
        row.lineage for row in mixed.rows
    ]
    assert native.confidences(db) == mixed.confidences(db)


# -- kernel edge cases (differential vs native) -----------------------------


def test_distinct_merges_duplicates_with_or_lineage(db):
    native, columnar = assert_equivalent(
        db, "SELECT DISTINCT Company FROM Proposal"
    )
    duplicated = [
        row for row in columnar.rows if row.values == ("B",)
    ]
    assert len(duplicated) == 1
    b_tids = [
        stored.tid
        for stored in db.table("Proposal").scan()
        if stored.values[0] == "B"
    ]
    assert len(b_tids) == 2
    assert duplicated[0].lineage == lineage_or(*(var(tid) for tid in b_tids))


def test_inner_equi_join(db):
    assert_equivalent(
        db,
        "SELECT p.Company, c.Income FROM Proposal AS p "
        "JOIN CompanyInfo AS c ON p.Company = c.Company",
    )


def test_left_join_null_padding(db):
    native, columnar = assert_equivalent(
        db,
        "SELECT p.Company, c.Income FROM Proposal AS p "
        "LEFT JOIN CompanyInfo AS c ON p.Company = c.Company",
    )
    unmatched = [row for row in columnar.rows if row.values[1] is None]
    assert unmatched, "expected at least one unmatched left row"


def test_non_equi_join(db):
    assert_equivalent(
        db,
        "SELECT p.Company, c.Company FROM Proposal AS p "
        "JOIN CompanyInfo AS c ON p.Funding < c.Income",
    )


def test_semi_join_in_subquery(db):
    assert_equivalent(
        db,
        "SELECT Company FROM Proposal WHERE Company IN "
        "(SELECT Company FROM CompanyInfo)",
    )


def test_semi_join_not_in_subquery(db):
    assert_equivalent(
        db,
        "SELECT Company FROM Proposal WHERE Company NOT IN "
        "(SELECT Company FROM CompanyInfo)",
    )


def test_union_deduplicates(db):
    assert_equivalent(
        db,
        "SELECT Company FROM Proposal UNION "
        "SELECT Company FROM CompanyInfo",
    )


def test_union_all_keeps_duplicates(db):
    assert_equivalent(
        db,
        "SELECT Company FROM Proposal UNION ALL "
        "SELECT Company FROM CompanyInfo",
    )


def test_intersect(db):
    assert_equivalent(
        db,
        "SELECT Company FROM Proposal INTERSECT "
        "SELECT Company FROM CompanyInfo",
    )


def test_except(db):
    assert_equivalent(
        db,
        "SELECT Company FROM Proposal EXCEPT "
        "SELECT Company FROM CompanyInfo",
    )


def test_limit_and_offset(db):
    assert_equivalent(db, "SELECT Company FROM Proposal LIMIT 2 OFFSET 1")


def test_projection_expressions(db):
    assert_equivalent(
        db,
        "SELECT Company, Funding * 2 + 1, Funding / 2 FROM Proposal",
    )


def test_filter_error_matches_native():
    db = Database("err")
    t = db.create_table("t", Schema.of(("x", INTEGER)))
    for x in (2, 0, 5):
        t.insert([x], confidence=0.5)
    sql = "SELECT x FROM t WHERE 10 / x > 1"
    with pytest.raises(ExecutionError) as native_error:
        run_sql(db, sql, engine="native")
    with pytest.raises(ExecutionError) as columnar_error:
        run_sql(db, sql, engine="columnar")
    assert str(native_error.value) == str(columnar_error.value)


def test_guarded_filter_short_circuits_on_both_engines():
    db = Database("guard")
    t = db.create_table("t", Schema.of(("x", INTEGER)))
    for x in (2, 0, 5):
        t.insert([x], confidence=0.5)
    sql = "SELECT x FROM t WHERE x <> 0 AND 10 / x > 1"
    native = run_sql(db, sql, engine="native")
    columnar = run_sql(db, sql, engine="columnar")
    assert [row.values for row in native.rows] == [
        row.values for row in columnar.rows
    ] == [(2,), (5,)]


# -- batch confidence evaluation --------------------------------------------


def test_evaluate_many_matches_per_circuit_evaluation():
    pool = CircuitPool()
    formulas = [
        var(("t", 1)),
        lineage_and(var(("t", 1)), var(("t", 2))),
        lineage_or(var(("t", 2)), lineage_not(var(("t", 3)))),
        lineage_and(
            lineage_or(var(("t", 1)), var(("t", 4))),
            lineage_not(var(("t", 2))),
        ),
    ]
    circuits = [pool.compile(formula) for formula in formulas]
    assignment = {("t", 1): 0.2, ("t", 2): 0.5, ("t", 3): 0.7, ("t", 4): 0.9}
    batch = pool.evaluate_many(circuits, assignment)
    assert batch == [circuit.evaluate(assignment) for circuit in circuits]


def test_evaluate_many_empty():
    pool = CircuitPool()
    assert pool.evaluate_many([], {}) == []


def test_merged_order_rejects_foreign_circuits():
    from repro.errors import LineageError

    pool_a, pool_b = CircuitPool(), CircuitPool()
    circuit_a = pool_a.compile(var(("t", 1)))
    circuit_b = pool_b.compile(var(("t", 1)))
    with pytest.raises(LineageError):
        pool_a.merged_order([circuit_a, circuit_b])


def test_result_set_confidences_use_batch_path(db):
    result = run_sql(db, "SELECT Company FROM Proposal", engine="columnar")
    assignment = {
        stored.tid: stored.confidence
        for stored in db.table("Proposal").scan()
    }
    assert result.confidences(db) == [
        row.confidence(assignment) for row in result.rows
    ]


class TestPinnedSelectionStatistics:
    """Regression: engine selection must read each scanned table's size
    exactly once, so the decision cannot straddle concurrent DML."""

    class _FlickeringTable:
        """A table whose reported size changes between ``len`` reads —
        modelling a writer committing between the selection's size checks."""

        def __init__(self, table, sizes):
            self._table = table
            self._sizes = list(sizes)
            self.len_calls = 0

        def __len__(self):
            self.len_calls += 1
            if len(self._sizes) > 1:
                return self._sizes.pop(0)
            return self._sizes[0]

        def __getattr__(self, name):
            return getattr(self._table, name)

    def _flickering_scan(self, sizes):
        db = Database("flicker")
        table = db.create_table(
            "t", Schema.of(("k", INTEGER), ("v", INTEGER))
        )
        for i in range(4):
            table.insert([i, i], confidence=0.5)
        return self._FlickeringTable(table, sizes)

    def test_selection_reads_each_table_once(self):
        flicker = self._flickering_scan([100, 10_000])
        plan = Sort(
            Project(
                Filter(Scan(flicker), Comparison(">", col("t.v"), lit(0))),
                [ProjectItem(col("t.k"))],
            ),
            [SortKey(col("t.k"))],
        )
        prepared = select_engine(plan, "auto")
        # One pinned read: the first observed size (below the threshold)
        # governs every subtree decision, so the whole plan stays native.
        assert flicker.len_calls == 1
        assert prepared.label == "native"
        assert prepared.transfers == 0

    def test_selection_is_deterministic_per_pinned_statistics(self):
        flicker = self._flickering_scan([10_000, 100])
        plan = Sort(
            Project(
                Filter(Scan(flicker), Comparison(">", col("t.v"), lit(0))),
                [ProjectItem(col("t.k"))],
            ),
            [SortKey(col("t.k"))],
        )
        prepared = select_engine(plan, "auto")
        # The pinned (first) size is large, so the supported subtree gets
        # its transfer even though a live re-read would now say "small".
        assert flicker.len_calls == 1
        assert prepared.label == "native+columnar"
        assert prepared.transfers == 1

    def test_explicit_statistics_pin_the_decision(self):
        from repro.engines.select import pin_scan_statistics

        db = Database("pin")
        table = db.create_table("t", Schema.of(("k", INTEGER), ("v", INTEGER)))
        for i in range(4):
            table.insert([i, i], confidence=0.5)
        plan = Filter(Scan(table), Comparison(">", col("t.v"), lit(0)))
        pinned = pin_scan_statistics(plan)
        # Mutations after pinning do not change the decision.
        for i in range(4, 1024):
            table.insert([i, i], confidence=0.5)
        prepared = select_engine(plan, "auto", statistics=pinned)
        assert prepared.label == "native"
        fresh = select_engine(plan, "auto")
        assert fresh.label == "columnar"
