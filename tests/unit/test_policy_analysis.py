"""Unit tests for policy impact analysis."""

import pytest

from repro.cost import LinearCost
from repro.errors import PolicyError
from repro.policy import (
    PolicyStore,
    policy_impact,
    table_confidence_profile,
    threshold_sweep,
)
from repro.sql import run_sql
from repro.storage import Database, REAL, Schema, TEXT


@pytest.fixture
def setup():
    db = Database()
    table = db.create_table("t", Schema.of(("k", TEXT), ("v", REAL)))
    for index, confidence in enumerate([0.1, 0.3, 0.5, 0.7, 0.9]):
        table.insert(
            [f"row{index}", float(index)],
            confidence=confidence,
            cost_model=LinearCost(100.0),
        )
    policies = PolicyStore(default_threshold=0.6)
    policies.add_role("analyst")
    policies.add_purpose("reporting")
    policies.add_user("u", roles=["analyst"])
    return db, policies


class TestConfidenceProfile:
    def test_profile_statistics(self, setup):
        db, _policies = setup
        profile = table_confidence_profile(db.table("t"))
        assert profile.count == 5
        assert profile.mean == pytest.approx(0.5)
        assert profile.minimum == 0.1 and profile.maximum == 0.9
        assert profile.quantiles[1] == pytest.approx(0.5)
        assert sum(profile.histogram) == 5

    def test_empty_table_profile(self):
        db = Database()
        table = db.create_table("e", Schema.of(("x", TEXT)))
        profile = table_confidence_profile(table)
        assert profile.count == 0
        assert profile.fraction_above(0.5) == 1.0

    def test_fraction_above(self, setup):
        db, _policies = setup
        profile = table_confidence_profile(db.table("t"))
        # 0.7 and 0.9 are clearly above 0.6; histogram is approximate.
        assert profile.fraction_above(0.6) == pytest.approx(0.4, abs=0.15)
        assert profile.fraction_above(0.0) == pytest.approx(1.0, abs=0.1)


class TestThresholdSweep:
    def test_monotone_decreasing(self, setup):
        db, _policies = setup
        result = run_sql(db, "SELECT k FROM t")
        points = threshold_sweep(result, db)
        fractions = [fraction for _threshold, fraction in points]
        assert all(b <= a + 1e-9 for a, b in zip(fractions, fractions[1:]))
        assert fractions[0] == 1.0

    def test_custom_thresholds(self, setup):
        db, _policies = setup
        result = run_sql(db, "SELECT k FROM t")
        points = threshold_sweep(result, db, thresholds=[0.0, 0.5, 0.95])
        assert points[0] == (0.0, 1.0)
        assert points[1][1] == pytest.approx(2 / 5)
        assert points[2][1] == 0.0

    def test_invalid_threshold(self, setup):
        db, _policies = setup
        result = run_sql(db, "SELECT k FROM t")
        with pytest.raises(PolicyError):
            threshold_sweep(result, db, thresholds=[1.5])

    def test_empty_result(self, setup):
        db, _policies = setup
        result = run_sql(db, "SELECT k FROM t WHERE v > 100")
        assert threshold_sweep(result, db, thresholds=[0.5]) == [(0.5, 1.0)]


class TestPolicyImpact:
    def test_reports_partition_and_cost(self, setup):
        db, policies = setup
        result = run_sql(db, "SELECT k FROM t")
        impact = policy_impact(db, policies, result, "u", "reporting")
        assert impact.threshold == 0.6
        assert impact.total_results == 5
        assert impact.released == 2
        assert impact.withheld == 3
        # Raising 0.1/0.3/0.5 rows to ~0.6 at 100/unit: 50+30+10 = 90-ish
        # (grid granularity makes it slightly above).
        assert impact.compliance_cost == pytest.approx(110.0, abs=30.0)
        assert impact.compliance_tuples == 3

    def test_zero_cost_when_already_compliant(self, setup):
        db, policies = setup
        result = run_sql(db, "SELECT k FROM t WHERE v > 2.5")
        impact = policy_impact(db, policies, result, "u", "reporting")
        assert impact.withheld == 0
        assert impact.compliance_cost == 0.0
        assert impact.released_fraction == 1.0

    def test_partial_target_fraction(self, setup):
        db, policies = setup
        result = run_sql(db, "SELECT k FROM t")
        full = policy_impact(db, policies, result, "u", "reporting", 1.0)
        partial = policy_impact(db, policies, result, "u", "reporting", 0.6)
        assert partial.compliance_cost < full.compliance_cost

    def test_infeasible_reports_none(self, setup):
        db, policies = setup
        policies.add_purpose("audit")
        policies.add_policy("analyst", "audit", 1.0)
        result = run_sql(db, "SELECT k FROM t")
        impact = policy_impact(db, policies, result, "u", "audit")
        assert impact.compliance_cost is None

    def test_custom_solver(self, setup):
        from repro.increment import solve_heuristic

        db, policies = setup
        result = run_sql(db, "SELECT k FROM t")
        impact = policy_impact(
            db, policies, result, "u", "reporting", solver=solve_heuristic
        )
        greedy_impact = policy_impact(db, policies, result, "u", "reporting")
        assert impact.compliance_cost <= greedy_impact.compliance_cost + 1e-6

    def test_empty_result_is_fully_released(self, setup):
        db, policies = setup
        result = run_sql(db, "SELECT k FROM t WHERE v > 100")
        impact = policy_impact(db, policies, result, "u", "reporting")
        assert impact.released_fraction == 1.0
        assert impact.compliance_cost == 0.0
