"""Regression tests for the swallowed-exception sweep.

Every handler that used to say ``except Exception`` now names the errors
it actually expects.  Each test pins both sides of that contract: the
expected error class is still absorbed (behaviour preserved), and an
unexpected error — the kind the old bare handler silently ate — now
surfaces.
"""

from types import SimpleNamespace

import pytest

from repro.algebra.executor import execute
from repro.algebra.expressions import ColumnRef, Comparison, Literal
from repro.algebra.joins import _resolve_side, reorder_joins
from repro.algebra.optimizer import _references_resolvable
from repro.algebra.plan import Filter, Join, Scan
from repro.errors import (
    BindError,
    ExecutionError,
    PlanError,
    ReproError,
    SchemaError,
    UnknownColumnError,
)
from repro.sql import execute_sql, run_sql
from repro.storage import Database, Schema, TEXT


@pytest.fixture
def db():
    database = Database()
    execute_sql(
        database, "CREATE TABLE items (name TEXT NOT NULL, qty INT, price REAL)"
    )
    execute_sql(
        database,
        "INSERT INTO items VALUES ('apple', 5, 1.5), ('pear', 0, 2.0)",
    )
    return database


class TestFilterPredicateErrors:
    """algebra/executor.py: a predicate blowing up must surface the row."""

    def _exploding_filter(self, db, error):
        node = Filter(
            Scan(db.table("items")),
            Comparison(">", ColumnRef("qty"), Literal(0)),
        )

        def boom(values):
            raise error

        node.bound_predicate = SimpleNamespace(evaluate=boom)
        return node

    def test_type_error_becomes_execution_error_with_row(self, db):
        node = self._exploding_filter(db, TypeError("unorderable types"))
        with pytest.raises(ExecutionError) as excinfo:
            execute(node)
        assert "predicate failed on row" in str(excinfo.value)
        assert "'apple'" in str(excinfo.value)  # the offending row's values
        assert isinstance(excinfo.value, ReproError)

    def test_execution_errors_pass_through_unwrapped(self, db):
        node = self._exploding_filter(db, ExecutionError("division by zero"))
        with pytest.raises(ExecutionError) as excinfo:
            execute(node)
        assert str(excinfo.value) == "division by zero"

    def test_division_by_zero_row_surfaces_end_to_end(self, db):
        with pytest.raises(ExecutionError, match="division by zero"):
            run_sql(db, "SELECT * FROM items WHERE 10 / qty > 1")

    def test_rows_are_never_silently_dropped(self, db):
        # The healthy path still filters normally.
        result = run_sql(db, "SELECT name FROM items WHERE qty > 0")
        assert [row.values for row in result.rows] == [("apple",)]


class TestEquiJoinDetection:
    """algebra/executor.py ``side_index``: only SchemaError means 'not here'."""

    def _join_node(self, condition):
        left = SimpleNamespace(schema=Schema.of(("a", TEXT)).qualify("l"))
        right = SimpleNamespace(schema=Schema.of(("b", TEXT)).qualify("r"))
        return SimpleNamespace(condition=condition, left=left, right=right)

    def test_unknown_column_is_not_an_equi_join(self):
        from repro.algebra.executor import _equi_join_columns

        node = self._join_node(
            Comparison("=", ColumnRef("missing"), ColumnRef("b"))
        )
        assert _equi_join_columns(node) is None

    def test_schema_bugs_surface(self):
        from repro.algebra.executor import _equi_join_columns

        class BrokenSchema:
            def index_of(self, name, table=None):
                raise RuntimeError("corrupted catalog")

        node = SimpleNamespace(
            condition=Comparison("=", ColumnRef("a"), ColumnRef("b")),
            left=SimpleNamespace(schema=BrokenSchema()),
            right=SimpleNamespace(schema=BrokenSchema()),
        )
        with pytest.raises(RuntimeError, match="corrupted catalog"):
            _equi_join_columns(node)

    def test_non_equi_join_still_executes_via_nested_loop(self, db):
        result = run_sql(
            db,
            "SELECT a.name FROM items a JOIN items b ON a.qty > b.qty",
        )
        assert [row.values for row in result.rows] == [("apple",)]


class TestOptimizerResolvability:
    """algebra/optimizer.py: pushdown skips unresolvable, surfaces bugs."""

    def test_unresolvable_reference_blocks_pushdown(self):
        schema = Schema.of(("a", TEXT))
        predicate = Comparison("=", ColumnRef("missing"), Literal("x"))
        assert _references_resolvable(predicate, schema) is False
        assert _references_resolvable(
            Comparison("=", ColumnRef("a"), Literal("x")), schema
        )

    def test_broken_expression_surfaces(self):
        schema = Schema.of(("a", TEXT))

        class BrokenExpression:
            def references(self):
                raise RuntimeError("bad expression node")

        with pytest.raises(RuntimeError, match="bad expression node"):
            _references_resolvable(BrokenExpression(), schema)


class TestJoinReorderGuard:
    """algebra/joins.py: ReproError keeps the original tree, bugs surface."""

    def _three_way_cluster(self, db):
        items = db.table("items")
        scan = lambda alias: Scan(items, alias)
        inner = Join(
            scan("a"),
            scan("b"),
            Comparison("=", ColumnRef("name", "a"), ColumnRef("name", "b")),
        )
        return Join(
            inner,
            scan("c"),
            Comparison("=", ColumnRef("name", "b"), ColumnRef("name", "c")),
        )

    def test_repro_error_falls_back_to_original_plan(self, db, monkeypatch):
        import repro.algebra.joins as joins_module

        def explode(root, extra):
            raise PlanError("estimator corner case")

        monkeypatch.setattr(joins_module, "_try_reorder", explode)
        plan = self._three_way_cluster(db)
        rebuilt = reorder_joins(plan)  # must not raise
        assert isinstance(rebuilt, Join)

    def test_genuine_bug_in_reorder_surfaces(self, db, monkeypatch):
        import repro.algebra.joins as joins_module

        def explode(root, extra):
            raise TypeError("estimator bug")

        monkeypatch.setattr(joins_module, "_try_reorder", explode)
        with pytest.raises(TypeError, match="estimator bug"):
            reorder_joins(self._three_way_cluster(db))

    def test_resolve_side_skips_schema_misses_only(self):
        good = SimpleNamespace(
            plan=SimpleNamespace(schema=Schema.of(("a", TEXT)))
        )

        class BrokenSchema:
            def index_of(self, name, table=None):
                raise ValueError("not a schema error")

        broken = SimpleNamespace(plan=SimpleNamespace(schema=BrokenSchema()))
        assert _resolve_side(ColumnRef("a"), [good]) == 0
        assert _resolve_side(ColumnRef("zzz"), [good]) is None
        with pytest.raises(ValueError, match="not a schema error"):
            _resolve_side(ColumnRef("a"), [broken])


class TestPlannerBindFallbacks:
    """sql/planner.py: only BindError/SchemaError mean 'try another path'."""

    def test_order_by_dropped_column_uses_hidden_projection(self, db):
        result = run_sql(db, "SELECT name FROM items ORDER BY qty DESC")
        assert [row.values for row in result.rows] == [("apple",), ("pear",)]
        assert result.schema.names == ("name",)

    def test_order_by_unknown_column_still_errors(self, db):
        with pytest.raises((BindError, UnknownColumnError)):
            run_sql(db, "SELECT name FROM items ORDER BY nonexistent")

    def test_group_by_expression_reused_in_select(self, db):
        result = run_sql(
            db, "SELECT qty + 1, COUNT(*) FROM items GROUP BY qty + 1"
        )
        assert sorted(row.values for row in result.rows) == [(1, 1), (6, 1)]


class TestCreateViewValidation:
    """sql/dml.py: bad definitions roll back; infrastructure bugs surface."""

    def test_invalid_view_is_unregistered_then_raises(self, db):
        with pytest.raises(ReproError):
            execute_sql(db, "CREATE VIEW v AS SELECT nonexistent FROM items")
        # The half-created view was rolled back: the name is free again.
        execute_sql(db, "CREATE VIEW v AS SELECT name FROM items")
        assert len(run_sql(db, "SELECT * FROM v")) == 2

    def test_non_repro_error_propagates(self, db, monkeypatch):
        import repro.sql.planner as planner_module

        def explode(database, statement):
            raise RuntimeError("planner infrastructure failure")

        monkeypatch.setattr(planner_module, "plan_statement", explode)
        with pytest.raises(RuntimeError, match="infrastructure failure"):
            execute_sql(db, "CREATE VIEW w AS SELECT name FROM items")
