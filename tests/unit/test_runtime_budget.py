"""Unit tests for the solver runtime: budgets, anytime exhaustion, fallback.

The contract under test (docs/ROBUSTNESS.md):

* an unexpired budget never changes solver behaviour;
* exhaustion with a feasible incumbent returns the incumbent
  (``stats.budget_exhausted``), without one raises
  :class:`TimeBudgetExceeded` carrying :class:`PartialProgress`;
* the degradation chain falls through hops on timeout and re-raises the
  last hop's error when every hop times out.
"""

import pytest

from repro.errors import IncrementError, TimeBudgetExceeded
from repro.increment import (
    Budget,
    DegradationChain,
    GreedyOptions,
    HeuristicOptions,
    SolverAttempt,
    as_budgeted,
    solve_dnc,
    solve_greedy,
    solve_heuristic,
    solve_local_search,
)
from repro.increment.problem import SearchState
from repro.increment.runtime import CHECK_INTERVAL, budget_exceeded
from repro.obs import MetricsRegistry, get_tracer, set_metrics
from repro.workload import WorkloadSpec, generate_problem


class FakeClock:
    """Controllable wall clock that counts how often it is read."""

    def __init__(self) -> None:
        self.now = 0.0
        self.reads = 0

    def __call__(self) -> float:
        self.reads += 1
        return self.now


@pytest.fixture
def problem():
    spec = WorkloadSpec(data_size=20, tuples_per_result=4)
    return generate_problem(spec, seed=0).problem


@pytest.fixture
def fresh_metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _greedy_attempt() -> SolverAttempt:
    """Greedy as a chain hop, adapted to the (problem, budget) convention."""
    return SolverAttempt("greedy", as_budgeted(solve_greedy))


class TestBudget:
    def test_unlimited_budget_never_exhausts(self):
        budget = Budget()
        for _ in range(3 * CHECK_INTERVAL):
            assert budget.charge()
            assert budget.charge_probe()
        assert budget.check()
        assert not budget.exhausted
        assert budget.remaining_seconds() is None

    def test_node_limit_is_exact_and_sticky(self):
        budget = Budget(node_limit=3)
        assert budget.charge()
        assert budget.charge()
        assert budget.charge()
        assert not budget.charge()
        assert budget.exhausted
        # Sticky: nothing un-exhausts a budget.
        assert not budget.charge()
        assert not budget.check()

    def test_probe_limit_counts_probes_not_nodes(self):
        budget = Budget(probe_limit=2)
        for _ in range(10):
            assert budget.charge()
        assert budget.charge_probe()
        assert budget.charge_probe()
        assert not budget.charge_probe()

    def test_deadline_read_only_every_check_interval(self):
        clock = FakeClock()
        budget = Budget(deadline_seconds=1.0, clock=clock)
        reads_after_init = clock.reads
        clock.now = 2.0  # already past the deadline
        for _ in range(CHECK_INTERVAL - 1):
            assert budget.charge()
        assert clock.reads == reads_after_init  # no mid-interval reads
        assert not budget.charge()  # the CHECK_INTERVAL-th charge looks
        assert clock.reads == reads_after_init + 1
        assert budget.exhausted

    def test_check_forces_an_immediate_clock_read(self):
        clock = FakeClock()
        budget = Budget(deadline_seconds=1.0, clock=clock)
        assert budget.check()
        clock.now = 5.0
        assert not budget.check()
        assert budget.exhausted

    def test_parent_chaining_propagates_both_ways(self):
        parent = Budget(node_limit=5)
        child = Budget(parent=parent)
        for _ in range(5):
            assert child.charge()
        assert not child.charge()
        assert parent.exhausted and child.exhausted
        assert parent.nodes == 6  # every child charge reached the parent

    def test_parent_deadline_seen_by_child_check(self):
        clock = FakeClock()
        parent = Budget(deadline_seconds=1.0, clock=clock)
        child = Budget(parent=parent)
        assert child.check()
        clock.now = 3.0
        assert not child.check()

    def test_from_deadline_ms_and_remaining(self):
        clock = FakeClock()
        budget = Budget.from_deadline_ms(500.0, clock=clock)
        assert budget.deadline_ms == pytest.approx(500.0)
        assert budget.remaining_seconds() == pytest.approx(0.5)
        clock.now = 0.2
        assert budget.remaining_seconds() == pytest.approx(0.3)
        clock.now = 9.0
        assert budget.remaining_seconds() == 0.0

    def test_negative_deadline_rejected(self):
        with pytest.raises(IncrementError):
            Budget(deadline_seconds=-1.0)


class TestBudgetExceededHelper:
    def test_partial_progress_snapshots_the_state(self, problem):
        state = SearchState(problem)
        error = budget_exceeded("greedy", problem, state)
        assert isinstance(error, TimeBudgetExceeded)
        assert isinstance(error, IncrementError)  # callers catch one type
        assert error.algorithm == "greedy"
        assert error.partial.required_results == problem.required_count
        assert error.partial.cost == state.cost
        assert error.partial.targets == state.snapshot_targets()
        assert str(error.partial.satisfied_results) in str(error)

    def test_no_state_means_empty_progress(self, problem):
        error = budget_exceeded("heuristic", problem, None, message="boom")
        assert error.partial.cost == 0.0
        assert error.partial.targets == {}
        assert str(error) == "boom"


class TestAsBudgeted:
    def test_budget_reaches_a_keyword_budget_solver(self, problem):
        # The adapter must forward by keyword: ``solve_greedy(problem,
        # budget)`` positionally would put the budget in the options slot.
        adapted = as_budgeted(solve_greedy)
        with pytest.raises(TimeBudgetExceeded):
            adapted(problem, Budget(node_limit=0))

        def custom(problem, budget=None):
            return ("plan", budget)

        marker = Budget(node_limit=7)
        assert as_budgeted(custom)(problem, marker) == ("plan", marker)

    def test_two_positional_solver_passes_through(self, problem):
        def positional(problem, limits):
            return ("plan", limits)

        assert as_budgeted(positional) is positional

    def test_single_argument_solver_is_wrapped(self, problem):
        calls = []

        def legacy(problem):
            calls.append(problem)
            return "plan"

        adapted = as_budgeted(legacy)
        assert adapted is not legacy
        assert adapted(problem, Budget(node_limit=1)) == "plan"
        assert calls == [problem]

    def test_unintrospectable_callable_still_runs(self, problem):
        adapted = as_budgeted(len)  # builtins have no retrievable signature
        assert adapted([1, 2], None) == 2


class TestSolverExhaustion:
    """An instantly-exhausted budget raises before any feasible plan."""

    @pytest.mark.parametrize(
        "solve",
        [solve_greedy, solve_dnc, solve_local_search],
        ids=["greedy", "dnc", "local-search"],
    )
    def test_polynomial_solvers_raise_with_partial(self, solve, problem):
        with pytest.raises(TimeBudgetExceeded) as excinfo:
            solve(problem, None, Budget(node_limit=0))
        partial = excinfo.value.partial
        assert partial is not None
        assert partial.required_results == problem.required_count
        assert partial.satisfied_results < partial.required_results

    def test_heuristic_raises_without_incumbent(self, problem):
        with pytest.raises(TimeBudgetExceeded) as excinfo:
            solve_heuristic(problem, HeuristicOptions(), Budget(node_limit=0))
        assert excinfo.value.partial.required_results == problem.required_count

    def test_heuristic_returns_anytime_incumbent(self):
        """Enough nodes to find an incumbent, not enough to finish: the
        plan comes back feasible and monotonically improves with budget."""
        spec = WorkloadSpec(data_size=11, tuples_per_result=4)
        problem = generate_problem(spec, seed=3).problem  # ~450k-node search

        small_budget = Budget(node_limit=20_000)
        small = solve_heuristic(problem, HeuristicOptions.naive(), small_budget)
        assert small_budget.exhausted
        assert small.stats.budget_exhausted
        assert not small.stats.completed
        assert len(small.satisfied_results) >= problem.required_count

        large = solve_heuristic(
            problem, HeuristicOptions.naive(), Budget(node_limit=200_000)
        )
        assert large.stats.budget_exhausted
        assert len(large.satisfied_results) >= problem.required_count
        assert large.total_cost <= small.total_cost + 1e-9

    def test_unexpired_budget_does_not_change_the_plan(self, problem):
        reference = solve_greedy(problem, GreedyOptions())
        budgeted = solve_greedy(problem, GreedyOptions(), Budget())
        assert budgeted.targets == reference.targets
        assert budgeted.total_cost == reference.total_cost
        assert not budgeted.stats.budget_exhausted
        assert budgeted.stats.completed


class TestDegradationChain:
    def _timeout_solver(self, name="late"):
        def solve(problem, budget=None):
            raise budget_exceeded(name, problem, None)

        return SolverAttempt(name, solve)

    def test_needs_at_least_one_attempt(self):
        with pytest.raises(IncrementError):
            DegradationChain([])

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(IncrementError):
            DegradationChain([self._timeout_solver()], deadline_ms=0)

    def test_single_attempt_returns_its_plan(self, problem, fresh_metrics):
        chain = DegradationChain([_greedy_attempt()])
        plan = chain.solve(problem)
        assert plan.targets == solve_greedy(problem).targets
        assert fresh_metrics.snapshot().get("pcqe.fallback_hops") is None

    def test_timeout_falls_through_to_next_hop(self, problem, fresh_metrics):
        chain = DegradationChain(
            [self._timeout_solver(), _greedy_attempt()]
        )
        plan = chain.solve(problem)
        assert plan.algorithm.startswith("greedy")
        snapshot = fresh_metrics.snapshot()
        assert snapshot["pcqe.fallback_hops"] == 1
        assert snapshot["pcqe.fallback_successes"] == 1

    def test_all_hops_exhausted_reraises_last_error(self, problem):
        chain = DegradationChain(
            [self._timeout_solver("first"), self._timeout_solver("second")]
        )
        with pytest.raises(TimeBudgetExceeded) as excinfo:
            chain.solve(problem)
        assert excinfo.value.algorithm == "second"

    def test_non_timeout_errors_propagate_immediately(self, problem):
        def broken(problem, budget=None):
            raise ValueError("not a timeout")

        chain = DegradationChain(
            [SolverAttempt("broken", broken), _greedy_attempt()]
        )
        with pytest.raises(ValueError):
            chain.solve(problem)

    def test_attempt_spans_record_the_fallback(self, problem, fresh_metrics):
        chain = DegradationChain(
            [self._timeout_solver(), _greedy_attempt()],
            deadline_ms=10_000.0,
        )
        with get_tracer().capture() as sink:
            chain.solve(problem)
        attempts = sink.find("pcqe.solver_attempt")
        assert [span.attributes["hop"] for span in attempts] == [0, 1]
        assert attempts[0].attributes["timed_out"] is True
        assert attempts[0].attributes["fallback_to"] == "greedy"
        assert attempts[1].attributes["budget.exhausted"] is False
        assert attempts[1].attributes["cost"] == pytest.approx(
            solve_greedy(problem).total_cost
        )

    def test_worker_thread_spans_nest_under_the_attempt(self, problem):
        """contextvars are copied into the worker, so solver spans keep
        their parent across the thread hop."""

        def traced(problem, budget=None):
            with get_tracer().span("custom.inner"):
                return solve_greedy(problem, None, budget)

        chain = DegradationChain([SolverAttempt("traced", traced)])
        with get_tracer().capture() as sink:
            chain.solve(problem)
        (attempt,) = sink.find("pcqe.solver_attempt")
        (inner,) = sink.find("custom.inner")
        assert inner.parent_id == attempt.span_id

    def test_each_hop_gets_a_fresh_budget(self, problem):
        """The fallback must not inherit the exhausted budget."""
        seen = []

        def recorder(problem, budget=None):
            seen.append(budget)
            if len(seen) == 1:
                raise budget_exceeded("first", problem, None)
            return solve_greedy(problem, None, None)

        chain = DegradationChain(
            [SolverAttempt("a", recorder), SolverAttempt("b", recorder)],
            deadline_ms=60_000.0,
        )
        chain.solve(problem)
        first, second = seen
        assert first is not second
        assert not second.exhausted
