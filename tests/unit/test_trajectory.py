"""Unit tests for the BENCH_*.json performance trajectory tool."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "trajectory",
    Path(__file__).resolve().parents[2] / "benchmarks" / "trajectory.py",
)
trajectory = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("trajectory", trajectory)
_SPEC.loader.exec_module(trajectory)


ENVIRONMENT = {
    "python_version": "3.12.0",
    "python_implementation": "CPython",
    "machine": "x86_64",
    "full_profile": False,
}


def results_file(tmp_path, panel_seconds, environment=None, name="results.json"):
    path = tmp_path / name
    path.write_text(
        json.dumps(
            {
                "schema_version": 1,
                "environment": environment or ENVIRONMENT,
                "panel_seconds": panel_seconds,
                "series": {"fig11b greedy": [{"n": 100, "seconds": 0.5}]},
            }
        )
    )
    return str(path)


def run(argv):
    return trajectory.main(argv)


class TestRecord:
    def test_creates_schema_versioned_trajectory(self, tmp_path, capsys):
        results = results_file(tmp_path, {"fig11be": 1.5})
        assert run(["record", results, "--bench-dir", str(tmp_path)]) == 0
        data = json.loads((tmp_path / "BENCH_fig11be.json").read_text())
        assert (
            data["trajectory_schema_version"]
            == trajectory.TRAJECTORY_SCHEMA_VERSION
        )
        assert data["panel"] == "fig11be"
        (record,) = data["runs"]
        assert record["panel_seconds"] == 1.5
        assert record["environment"] == ENVIRONMENT
        # The fig11b series rides along under the fig11be panel.
        assert "fig11b greedy" in record["series"]

    def test_appends_and_prunes_to_keep(self, tmp_path):
        results = results_file(tmp_path, {"tables": 0.2})
        for _ in range(4):
            run(["record", results, "--bench-dir", str(tmp_path), "--keep", "3"])
        data = json.loads((tmp_path / "BENCH_tables.json").read_text())
        assert len(data["runs"]) == 3

    def test_panel_name_is_sanitized(self, tmp_path):
        results = results_file(tmp_path, {"a/b c": 0.1})
        run(["record", results, "--bench-dir", str(tmp_path)])
        assert (tmp_path / "BENCH_a_b_c.json").exists()

    def test_rejects_non_harness_files(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit):
            run(["record", str(bad), "--bench-dir", str(tmp_path)])

    def test_rejects_unknown_trajectory_schema(self, tmp_path):
        results = results_file(tmp_path, {"tables": 0.2})
        (tmp_path / "BENCH_tables.json").write_text(
            json.dumps({"trajectory_schema_version": 999, "runs": []})
        )
        with pytest.raises(SystemExit):
            run(["record", results, "--bench-dir", str(tmp_path)])


class TestCheck:
    def seed(self, tmp_path, seconds_history):
        for index, seconds in enumerate(seconds_history):
            results = results_file(
                tmp_path, {"tables": seconds}, name=f"seed{index}.json"
            )
            run(["record", results, "--bench-dir", str(tmp_path)])

    def test_passes_within_threshold(self, tmp_path):
        self.seed(tmp_path, [1.0, 1.1, 0.9])
        candidate = results_file(tmp_path, {"tables": 1.1}, name="cand.json")
        assert run(["check", candidate, "--bench-dir", str(tmp_path)]) == 0

    def test_fails_beyond_threshold(self, tmp_path, capsys):
        self.seed(tmp_path, [1.0, 1.0, 1.0])
        candidate = results_file(tmp_path, {"tables": 1.3}, name="cand.json")
        assert run(["check", candidate, "--bench-dir", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_is_configurable(self, tmp_path):
        self.seed(tmp_path, [1.0])
        candidate = results_file(tmp_path, {"tables": 1.3}, name="cand.json")
        assert (
            run(
                [
                    "check",
                    candidate,
                    "--bench-dir",
                    str(tmp_path),
                    "--threshold",
                    "0.5",
                ]
            )
            == 0
        )

    def test_no_trajectory_file_passes(self, tmp_path, capsys):
        candidate = results_file(tmp_path, {"tables": 9.9}, name="cand.json")
        assert run(["check", candidate, "--bench-dir", str(tmp_path)]) == 0
        assert "no trajectory file" in capsys.readouterr().out

    def test_foreign_fingerprint_is_not_a_baseline(self, tmp_path, capsys):
        """A fast dev machine's history must not gate a slow CI runner."""
        self.seed(tmp_path, [0.1, 0.1])
        other = dict(ENVIRONMENT, machine="arm64")
        candidate = results_file(
            tmp_path, {"tables": 5.0}, environment=other, name="cand.json"
        )
        assert run(["check", candidate, "--bench-dir", str(tmp_path)]) == 0
        assert "no baseline for this environment" in capsys.readouterr().out

    def test_median_absorbs_one_noisy_run(self, tmp_path):
        self.seed(tmp_path, [1.0, 1.0, 30.0])
        candidate = results_file(tmp_path, {"tables": 1.1}, name="cand.json")
        assert run(["check", candidate, "--bench-dir", str(tmp_path)]) == 0

    def test_min_slack_floor_tolerates_millisecond_jitter(self, tmp_path):
        """+60% on an 8 ms panel is scheduler noise, not a regression."""
        self.seed(tmp_path, [0.008, 0.008])
        candidate = results_file(tmp_path, {"tables": 0.013}, name="cand.json")
        assert run(["check", candidate, "--bench-dir", str(tmp_path)]) == 0

    def test_min_slack_zero_restores_the_pure_relative_gate(
        self, tmp_path, capsys
    ):
        self.seed(tmp_path, [0.008, 0.008])
        candidate = results_file(tmp_path, {"tables": 0.013}, name="cand.json")
        argv = [
            "check", candidate, "--bench-dir", str(tmp_path),
            "--min-slack", "0",
        ]
        assert run(argv) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_min_slack_does_not_mask_real_regressions(self, tmp_path):
        """The floor only covers jitter-sized deltas, never 2x slowdowns."""
        self.seed(tmp_path, [1.0, 1.0])
        candidate = results_file(tmp_path, {"tables": 2.0}, name="cand.json")
        assert run(["check", candidate, "--bench-dir", str(tmp_path)]) == 1
