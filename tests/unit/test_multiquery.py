"""Unit tests for the multi-query extension (paper §4, last paragraph).

Multiple queries contribute requirement groups to one increment problem;
a solution must satisfy every query's requirement simultaneously, and the
search space is the union of all queries' base tuples.
"""

import pytest

from repro import PCQEngine, QueryRequest, QueryStatus
from repro.cost import LinearCost
from repro.errors import IncrementError, InfeasibleIncrementError
from repro.increment import (
    BaseTupleState,
    IncrementProblem,
    SearchState,
    solve_dnc,
    solve_greedy,
    solve_heuristic,
)
from repro.lineage import ConfidenceFunction, lineage_or, var
from repro.policy import PolicyStore
from repro.storage import Database, REAL, Schema, TEXT, TupleId

A, B, C, D = (TupleId("t", i) for i in range(4))


def multi_problem():
    """Two 'queries': group 0 = results {0, 1}, group 1 = results {1, 2}."""
    states = {
        A: BaseTupleState(A, 0.1, LinearCost(100.0)),
        B: BaseTupleState(B, 0.1, LinearCost(10.0)),
        C: BaseTupleState(C, 0.1, LinearCost(50.0)),
    }
    results = [
        ConfidenceFunction(var(A), "q0-only"),
        ConfidenceFunction(var(B), "shared"),
        ConfidenceFunction(var(C), "q1-only"),
    ]
    return IncrementProblem(
        results,
        states,
        threshold=0.5,
        delta=0.1,
        requirement_groups=[([0, 1], 1), ([1, 2], 1)],
    )


class TestProblemGroups:
    def test_required_count_is_sum(self):
        problem = multi_problem()
        assert problem.is_multi_requirement
        assert problem.required_count == 2

    def test_groups_by_result(self):
        problem = multi_problem()
        assert problem.groups_by_result == [[0], [0, 1], [1]]

    def test_requirements_met(self):
        problem = multi_problem()
        assert problem.requirements_met([False, True, False])  # shared covers both
        assert not problem.requirements_met([True, False, False])
        assert problem.requirements_met([True, False, True])

    def test_group_count_validation(self):
        states = {A: BaseTupleState(A, 0.1, LinearCost(1.0))}
        results = [ConfidenceFunction(var(A))]
        with pytest.raises(InfeasibleIncrementError):
            IncrementProblem(
                results, states, 0.5, requirement_groups=[([0], 2)]
            )
        with pytest.raises(IncrementError):
            IncrementProblem(
                results, states, 0.5, requirement_groups=[([0, 7], 1)]
            )
        with pytest.raises(IncrementError):
            IncrementProblem(
                results, states, 0.5, requirement_groups=[([0], -1)]
            )

    def test_check_feasible_per_group(self):
        states = {
            A: BaseTupleState(A, 0.1, LinearCost(1.0, max_confidence=0.3)),
            B: BaseTupleState(B, 0.1, LinearCost(1.0)),
        }
        results = [ConfidenceFunction(var(A)), ConfidenceFunction(var(B))]
        problem = IncrementProblem(
            results,
            states,
            0.5,
            requirement_groups=[([0], 1), ([1], 1)],
        )
        with pytest.raises(InfeasibleIncrementError):
            problem.check_feasible()

    def test_clamped_to_achievable(self):
        states = {
            A: BaseTupleState(A, 0.1, LinearCost(1.0, max_confidence=0.3)),
            B: BaseTupleState(B, 0.1, LinearCost(1.0)),
        }
        results = [ConfidenceFunction(var(A)), ConfidenceFunction(var(B))]
        problem = IncrementProblem(
            results, states, 0.5,
            requirement_groups=[([0], 1), ([1], 1)],
        )
        clamped = problem.clamped_to_achievable()
        clamped.check_feasible()  # no longer raises
        assert clamped.requirement_groups[0][1] == 0
        assert clamped.requirement_groups[1][1] == 1


class TestSearchStateGroups:
    def test_group_counters_track_flips(self):
        problem = multi_problem()
        state = SearchState(problem)
        assert state.unmet_groups == 2
        state.set_value(B, 0.6)  # satisfies the shared result
        assert state.unmet_groups == 0
        assert state.is_satisfied()
        assert state.group_counts == [1, 1]

    def test_undo_restores_groups(self):
        problem = multi_problem()
        state = SearchState(problem)
        old = state.value_of(B)
        undo = state.set_value(B, 0.6)
        state.undo(B, old, undo)
        assert state.unmet_groups == 2
        assert state.group_counts == [0, 0]

    def test_result_needed(self):
        problem = multi_problem()
        state = SearchState(problem)
        assert state.result_needed(0)
        state.set_value(A, 0.6)  # group 0 met
        assert not state.result_needed(0)  # satisfied itself
        assert state.result_needed(2)  # group 1 still unmet
        assert state.result_needed(1)  # below β and in unmet group 1


class TestSolversOnMultiProblems:
    @pytest.mark.parametrize(
        "solve", [solve_heuristic, solve_greedy, solve_dnc]
    )
    def test_plan_meets_every_group(self, solve):
        problem = multi_problem()
        plan = solve(problem)
        assignment = problem.initial_assignment()
        assignment.update(plan.targets)
        flags = [
            problem.satisfied(result.evaluate(assignment))
            for result in problem.results
        ]
        assert problem.requirements_met(flags)

    def test_shared_result_is_cheapest_answer(self):
        # Lifting the shared result (B at 10/unit) covers both queries —
        # all solvers should find that over lifting A (100) and C (50).
        problem = multi_problem()
        for solve in (solve_heuristic, solve_greedy, solve_dnc):
            plan = solve(problem)
            assert set(plan.targets) == {B}, solve.__name__
            # B rises from 0.1 to the 0.5 threshold at 10 per unit.
            assert plan.total_cost == pytest.approx(10.0 * 0.4)

    def test_subproblem_maps_groups_proportionally(self):
        problem = multi_problem()
        sub = problem.subproblem([1, 2])
        assert sub.is_multi_requirement
        # Group 0 keeps its shared member; group 1 keeps both members.
        assert len(sub.requirement_groups) == 2


class TestEngineBatch:
    def _setup(self):
        db = Database()
        table = db.create_table("m", Schema.of(("k", TEXT), ("grp", TEXT)))
        for key, group in [("a", "g1"), ("b", "g1"), ("c", "g2"), ("d", "g2")]:
            table.insert(
                [key, group], confidence=0.2, cost_model=LinearCost(100.0)
            )
        policies = PolicyStore(default_threshold=0.5)
        policies.add_role("r")
        policies.add_purpose("p")
        policies.add_user("u", roles=["r"])
        return db, policies

    def test_batch_improves_all_queries_with_one_receipt(self):
        db, policies = self._setup()
        engine = PCQEngine(db, policies, solver="greedy")
        batch = engine.execute_many(
            [
                QueryRequest("SELECT k FROM m WHERE grp = 'g1'", "p", 1.0),
                QueryRequest("SELECT k FROM m WHERE grp = 'g2'", "p", 0.5),
            ],
            user="u",
        )
        assert batch.improved
        assert len(batch.results) == 2
        assert batch.results[0].released_fraction == 1.0
        assert batch.results[1].released_fraction >= 0.5
        # One receipt covers both queries.
        assert batch.receipt is not None
        assert batch.quote.shortfall == 3  # 2 for g1 + 1 for g2

    def test_batch_without_shortfall_skips_solver(self):
        db, policies = self._setup()
        for row in list(db.table("m").scan()):
            db.set_confidence(row.tid, 0.9)
        engine = PCQEngine(db, policies)
        batch = engine.execute_many(
            [QueryRequest("SELECT k FROM m", "p", 1.0)], user="u"
        )
        assert not batch.improved
        assert batch.quote is None
        assert batch.results[0].status is QueryStatus.SATISFIED

    def test_batch_declined_quote(self):
        db, policies = self._setup()
        engine = PCQEngine(
            db, policies, solver="greedy", approval=lambda _q: False
        )
        batch = engine.execute_many(
            [QueryRequest("SELECT k FROM m", "p", 1.0)], user="u"
        )
        assert not batch.improved
        assert batch.quote is not None
        assert all(r.status is QueryStatus.QUOTED for r in batch.results)
        # Database untouched.
        assert all(row.confidence == 0.2 for row in db.table("m").scan())
