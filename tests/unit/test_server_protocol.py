"""Wire framing: round trips, limits, torn frames, bad payloads."""

from __future__ import annotations

import asyncio
import socket
import struct

import pytest

from repro.errors import ProtocolError
from repro.server import encode_frame
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)


def test_encode_frame_is_length_prefixed_json():
    frame = encode_frame({"op": "hello", "n": 1})
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    assert frame[4:].decode("utf-8") == '{"op":"hello","n":1}'


def test_blocking_round_trip_over_socketpair():
    left, right = socket.socketpair()
    try:
        message = {"op": "ask", "sql": "SELECT 1", "values": [1, 2.5, None, "x"]}
        send_frame(left, message)
        send_frame(left, {"op": "bye"})
        assert recv_frame(right) == message
        assert recv_frame(right) == {"op": "bye"}
    finally:
        left.close()
        right.close()


def test_oversize_frame_is_rejected_before_send():
    with pytest.raises(ProtocolError):
        encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})


def test_announced_oversize_length_is_rejected_on_read():
    left, right = socket.socketpair()
    try:
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1) + b"{}")
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_non_json_and_non_object_frames_are_rejected():
    for body in (b"not json at all", b'["a", "list"]', b"\xff\xfe"):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError):
                recv_frame(right)
        finally:
            left.close()
            right.close()


def test_closed_connection_raises_protocol_error():
    left, right = socket.socketpair()
    left.close()
    try:
        with pytest.raises(ProtocolError, match="closed"):
            recv_frame(right)
    finally:
        right.close()


def test_async_read_frame_round_trip_and_clean_eof():
    async def scenario():
        server_done = asyncio.Event()
        received = []

        async def handle(reader, writer):
            received.append(await read_frame(reader))
            await write_frame(writer, {"ok": True})
            received.append(await read_frame(reader))  # None on clean EOF
            writer.close()
            server_done.set()

        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        host, port = server.sockets[0].getsockname()[:2]
        reader, writer = await asyncio.open_connection(host, port)
        await write_frame(writer, {"op": "ping"})
        reply = await read_frame(reader)
        writer.close()
        await writer.wait_closed()
        await asyncio.wait_for(server_done.wait(), timeout=5)
        server.close()
        await server.wait_closed()
        return received, reply

    received, reply = asyncio.run(scenario())
    assert received == [{"op": "ping"}, None]
    assert reply == {"ok": True}


def test_async_read_frame_torn_header_raises():
    async def scenario():
        outcome = []

        async def handle(reader, writer):
            try:
                await read_frame(reader)
            except ProtocolError as error:
                outcome.append(str(error))
            writer.close()

        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        host, port = server.sockets[0].getsockname()[:2]
        _reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"\x00\x00")  # half a length prefix, then hang up
        await writer.drain()
        writer.close()
        await writer.wait_closed()
        server.close()
        await server.wait_closed()
        await asyncio.sleep(0.05)
        return outcome

    outcome = asyncio.run(scenario())
    assert outcome and "mid-header" in outcome[0]
