"""Unit tests for repro.storage.schema."""

import pytest

from repro.errors import (
    AmbiguousColumnError,
    DuplicateColumnError,
    SchemaError,
    UnknownColumnError,
)
from repro.storage import Column, Schema
from repro.storage.types import INTEGER, REAL, TEXT


@pytest.fixture
def proposal_schema() -> Schema:
    return Schema.of(
        ("Company", TEXT), ("Proposal", TEXT), ("Funding", REAL),
        table="Proposal",
    )


class TestColumn:
    def test_qualified_name(self):
        assert Column("c", TEXT, "t").qualified_name == "t.c"
        assert Column("c", TEXT).qualified_name == "c"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", TEXT)

    def test_with_table(self):
        column = Column("c", TEXT, "t").with_table("u")
        assert column.table == "u"
        assert column.dtype is TEXT

    def test_renamed(self):
        column = Column("c", TEXT, "t").renamed("d")
        assert column.name == "d"
        assert column.table == "t"


class TestSchemaConstruction:
    def test_of_builds_ordered_columns(self, proposal_schema):
        assert proposal_schema.names == ("Company", "Proposal", "Funding")
        assert proposal_schema.types == (TEXT, TEXT, REAL)

    def test_duplicate_qualified_names_rejected(self):
        with pytest.raises(DuplicateColumnError):
            Schema.of(("a", TEXT), ("a", INTEGER))

    def test_same_name_different_qualifier_allowed(self):
        schema = Schema(
            [Column("Company", TEXT, "p"), Column("Company", TEXT, "c")]
        )
        assert len(schema) == 2

    def test_qualify_and_unqualified(self, proposal_schema):
        aliased = proposal_schema.qualify("p")
        assert all(column.table == "p" for column in aliased)
        assert all(column.table is None for column in aliased.unqualified())

    def test_concat(self, proposal_schema):
        other = Schema.of(("Income", REAL), table="CompanyInfo")
        joined = proposal_schema.concat(other)
        assert len(joined) == 4
        assert joined[3].name == "Income"

    def test_project(self, proposal_schema):
        projected = proposal_schema.project([2, 0])
        assert projected.names == ("Funding", "Company")


class TestSchemaLookup:
    def test_unqualified_lookup(self, proposal_schema):
        assert proposal_schema.index_of("Funding") == 2

    def test_case_insensitive(self, proposal_schema):
        assert proposal_schema.index_of("funding") == 2
        assert proposal_schema.index_of("Funding", "proposal") == 2

    def test_qualified_lookup(self, proposal_schema):
        assert proposal_schema.index_of("Company", "Proposal") == 0

    def test_unknown_column(self, proposal_schema):
        with pytest.raises(UnknownColumnError):
            proposal_schema.index_of("Missing")

    def test_unknown_qualifier(self, proposal_schema):
        with pytest.raises(UnknownColumnError):
            proposal_schema.index_of("Company", "Other")

    def test_ambiguous_lookup(self):
        schema = Schema(
            [Column("Company", TEXT, "p"), Column("Company", TEXT, "c")]
        )
        with pytest.raises(AmbiguousColumnError):
            schema.index_of("Company")
        # Qualified lookup disambiguates.
        assert schema.index_of("Company", "c") == 1

    def test_has_column(self, proposal_schema):
        assert proposal_schema.has_column("Company")
        assert not proposal_schema.has_column("Missing")

    def test_has_column_false_on_ambiguity(self):
        schema = Schema(
            [Column("x", TEXT, "a"), Column("x", TEXT, "b")]
        )
        assert not schema.has_column("x")

    def test_column_accessor(self, proposal_schema):
        assert proposal_schema.column("Funding").dtype is REAL


class TestSchemaEquality:
    def test_equal_schemas(self):
        a = Schema.of(("x", TEXT), ("y", REAL))
        b = Schema.of(("x", TEXT), ("y", REAL))
        assert a == b
        assert hash(a) == hash(b)

    def test_order_matters(self):
        a = Schema.of(("x", TEXT), ("y", REAL))
        b = Schema.of(("y", REAL), ("x", TEXT))
        assert a != b

    def test_iteration(self):
        schema = Schema.of(("x", TEXT), ("y", REAL))
        assert [column.name for column in schema] == ["x", "y"]
