"""Overload management: load shedding, circuit breaker, idempotency LRU.

White-box tests against an un-started :class:`PCQEServer` (admission is
pure bookkeeping — no socket needed) plus the two helper classes with
injected clocks.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    CircuitOpenError,
    OverloadError,
    RequestTimeoutError,
    ServerDrainingError,
)
from repro.obs import get_metrics
from repro.policy import PolicyStore
from repro.server import PCQEServer, PRIORITY_CLASSES
from repro.server.server import _ConnectionBreaker, _IdempotencyCache
from repro.storage import Database


@pytest.fixture()
def server():
    # Never started: _admit/_finish are plain thread-safe bookkeeping.
    return PCQEServer(Database("t"), PolicyStore(default_threshold=0.0))


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestLoadShedding:
    def test_asks_shed_first_at_two_times_workers(self, server):
        server._inflight = server.workers * 2
        try:
            with pytest.raises(OverloadError) as info:
                server._admit("ask", None)
        finally:
            server._inflight = 0
        error = info.value
        assert error.retryable
        assert error.details() == {
            "op": "ask",
            "priority": 0,
            "queue_depth": server.workers * 2,
            "limit": server.workers * 2,
        }

    def test_sql_survives_until_four_times_workers(self, server):
        server._inflight = server.workers * 2
        try:
            assert server._admit("sql", None) is None
            server._inflight = server.workers * 4
            with pytest.raises(OverloadError):
                server._admit("sql", None)
        finally:
            server._inflight = 0

    def test_metrics_and_refresh_are_never_shed(self, server):
        server._inflight = server.workers * 100
        try:
            for op in ("metrics", "refresh"):
                assert server._admit(op, None) is None
                server._inflight = server.workers * 100
        finally:
            server._inflight = 0

    def test_priority_classes_order_sheds_ask_before_sql(self):
        assert PRIORITY_CLASSES["ask"] < PRIORITY_CLASSES["sql"]
        assert PRIORITY_CLASSES["sql"] < PRIORITY_CLASSES["metrics"]

    def test_shed_counter_moves(self, server):
        counter = get_metrics().counter("server.shed")
        before = counter.value
        server._inflight = server.workers * 2
        try:
            with pytest.raises(OverloadError):
                server._admit("ask", None)
        finally:
            server._inflight = 0
        assert counter.value == before + 1

    def test_custom_multipliers_and_disabling(self):
        strict = PCQEServer(
            Database("t"),
            PolicyStore(default_threshold=0.0),
            shed_multipliers={0: 1.0},
        )
        strict._inflight = strict.workers
        try:
            with pytest.raises(OverloadError):
                strict._admit("ask", None)
            # sql has no entry in this map: never shed.
            assert strict._admit("sql", None) is None
        finally:
            strict._inflight = 0

    def test_draining_rejects_before_any_other_gate(self, server):
        server._draining = True
        try:
            with pytest.raises(ServerDrainingError) as info:
                server._admit("metrics", None)
        finally:
            server._draining = False
        assert info.value.retryable


class TestConnectionBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = _Clock()
        breaker = _ConnectionBreaker(3, 1.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.allow() == (True, 0.0)
        breaker.record_failure()
        assert breaker.state == "open"
        allowed, retry_after = breaker.allow()
        assert not allowed and retry_after == pytest.approx(1.0)
        breaker.discard()

    def test_success_resets_the_failure_streak(self):
        breaker = _ConnectionBreaker(3, 1.0, clock=_Clock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.discard()

    def test_half_open_probe_closes_on_success(self):
        clock = _Clock()
        breaker = _ConnectionBreaker(1, 2.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.now = 2.5
        assert breaker.allow() == (True, 0.0)
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.discard()

    def test_half_open_probe_failure_reopens(self):
        clock = _Clock()
        breaker = _ConnectionBreaker(5, 1.0, clock=clock)
        for _ in range(5):
            breaker.record_failure()
        clock.now = 1.5
        breaker.allow()
        assert breaker.state == "half_open"
        breaker.record_failure()  # a single probe failure re-opens
        assert breaker.state == "open"
        assert breaker.opened_at == 1.5
        breaker.discard()

    def test_zero_threshold_disables_the_breaker(self):
        breaker = _ConnectionBreaker(0, 1.0, clock=_Clock())
        for _ in range(100):
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow() == (True, 0.0)

    def test_gauge_tracks_open_breakers_and_discard(self):
        gauge = get_metrics().gauge("server.breaker.open")
        base = gauge.value
        clock = _Clock()
        breaker = _ConnectionBreaker(1, 1.0, clock=clock)
        breaker.record_failure()
        assert gauge.value == base + 1
        # Connection teardown must not leave the gauge stuck high.
        breaker.discard()
        assert gauge.value == base

    def test_error_classification_over_the_gates(self):
        assert CircuitOpenError("x", failures=3, retry_after_ms=10.0).retryable
        assert RequestTimeoutError("x", op="ask", timeout_ms=50.0).retryable


class TestIdempotencyCache:
    def test_lru_evicts_the_oldest_entry(self):
        cache = _IdempotencyCache(2)
        cache.put(("c", "a"), 1)
        cache.put(("c", "b"), 2)
        cache.put(("c", "c"), 3)
        assert cache.get(("c", "a")) is None
        assert cache.get(("c", "b")) == 2
        assert len(cache) == 2

    def test_get_refreshes_recency(self):
        cache = _IdempotencyCache(2)
        cache.put(("c", "a"), 1)
        cache.put(("c", "b"), 2)
        cache.get(("c", "a"))  # a is now the most recent
        cache.put(("c", "c"), 3)
        assert cache.get(("c", "a")) == 1
        assert cache.get(("c", "b")) is None

    def test_keys_are_scoped_per_client(self):
        cache = _IdempotencyCache(8)
        cache.put(("alice", "k"), "hers")
        cache.put(("bob", "k"), "his")
        assert cache.get(("alice", "k")) == "hers"
        assert cache.get(("bob", "k")) == "his"

    def test_drop_is_idempotent(self):
        cache = _IdempotencyCache(8)
        cache.put(("c", "k"), 1)
        cache.drop(("c", "k"))
        cache.drop(("c", "k"))
        assert cache.get(("c", "k")) is None
        assert len(cache) == 0
