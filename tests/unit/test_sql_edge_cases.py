"""Edge-case tests across the SQL engine: self-joins, NULL handling,
nested derived tables, implicit joins, and lineage subtleties."""

import pytest

from repro.lineage import And, Var
from repro.sql import run_sql
from repro.storage import Database, INTEGER, REAL, Schema, TEXT


@pytest.fixture
def db() -> Database:
    database = Database()
    emp = database.create_table(
        "emp",
        Schema.of(("name", TEXT), ("boss", TEXT), ("salary", REAL)),
    )
    for name, boss, salary, conf in [
        ("ann", None, 100.0, 0.9),
        ("bob", "ann", 80.0, 0.8),
        ("cat", "ann", 70.0, 0.7),
        ("dan", "bob", 60.0, 0.6),
    ]:
        emp.insert([name, boss, salary], confidence=conf)
    return database


class TestSelfJoin:
    def test_self_join_with_aliases(self, db):
        result = run_sql(
            db,
            "SELECT e.name, m.name FROM emp e JOIN emp m ON e.boss = m.name",
        )
        pairs = sorted(result.values())
        assert pairs == [("bob", "ann"), ("cat", "ann"), ("dan", "bob")]

    def test_self_join_lineage_is_conjunction_of_two_tuples(self, db):
        result = run_sql(
            db,
            "SELECT e.name FROM emp e JOIN emp m ON e.boss = m.name "
            "WHERE e.name = 'dan'",
        )
        lineage = result.rows[0].lineage
        assert isinstance(lineage, And)
        assert len(lineage.variables) == 2  # dan's row AND bob's row

    def test_tuple_joined_with_itself_collapses(self, db):
        # name = boss never holds here; build one where it does.
        table = db.create_table("loop", Schema.of(("a", TEXT), ("b", TEXT)))
        table.insert(["x", "x"], confidence=0.5)
        result = run_sql(
            db, "SELECT l.a FROM loop l JOIN loop r ON l.a = r.b"
        )
        # AND(v, v) simplifies to v: confidence is 0.5, not 0.25.
        assert isinstance(result.rows[0].lineage, Var)
        assert result.confidences(db) == [0.5]


class TestNullHandling:
    def test_null_join_key_never_matches(self, db):
        result = run_sql(
            db, "SELECT e.name FROM emp e JOIN emp m ON e.boss = m.name"
        )
        assert all(row.values[0] != "ann" for row in result)

    def test_is_null_finds_root(self, db):
        result = run_sql(db, "SELECT name FROM emp WHERE boss IS NULL")
        assert result.values() == [("ann",)]

    def test_left_join_null_padding_filterable(self, db):
        result = run_sql(
            db,
            "SELECT e.name, m.salary FROM emp e "
            "LEFT JOIN emp m ON e.boss = m.name "
            "WHERE m.salary IS NULL",
        )
        names = {row.values[0] for row in result}
        assert "ann" in names

    def test_count_star_vs_count_column(self, db):
        result = run_sql(db, "SELECT COUNT(*), COUNT(boss) FROM emp")
        assert result.rows[0].values == (4, 3)

    def test_order_by_with_nulls(self, db):
        result = run_sql(db, "SELECT boss FROM emp ORDER BY boss")
        assert result.rows[0].values[0] is None  # NULLs first ascending
        result = run_sql(db, "SELECT boss FROM emp ORDER BY boss DESC")
        assert result.rows[-1].values[0] is None  # NULLs last descending


class TestNestedQueries:
    def test_doubly_nested_derived_table(self, db):
        result = run_sql(
            db,
            "SELECT outerq.name FROM ("
            "  SELECT innerq.name FROM ("
            "    SELECT name, salary FROM emp WHERE salary > 65"
            "  ) innerq WHERE innerq.salary < 90"
            ") outerq",
        )
        assert sorted(row.values[0] for row in result) == ["bob", "cat"]

    def test_aggregate_over_derived_table(self, db):
        result = run_sql(
            db,
            "SELECT COUNT(*) FROM "
            "(SELECT DISTINCT boss FROM emp WHERE boss IS NOT NULL) bosses",
        )
        assert result.rows[0].values == (2,)

    def test_join_of_two_derived_tables(self, db):
        result = run_sql(
            db,
            "SELECT a.name FROM "
            "(SELECT name FROM emp WHERE salary > 75) a JOIN "
            "(SELECT name FROM emp WHERE salary < 85) b ON a.name = b.name",
        )
        assert result.values() == [("bob",)]

    def test_union_of_derived(self, db):
        result = run_sql(
            db,
            "SELECT name FROM emp WHERE salary > 90 "
            "UNION SELECT boss FROM emp WHERE boss IS NOT NULL",
        )
        assert sorted(row.values[0] for row in result) == ["ann", "bob"]


class TestImplicitJoin:
    def test_comma_join_with_where_behaves_like_inner(self, db):
        implicit = run_sql(
            db,
            "SELECT e.name, m.name FROM emp e, emp m WHERE e.boss = m.name",
        )
        explicit = run_sql(
            db,
            "SELECT e.name, m.name FROM emp e JOIN emp m ON e.boss = m.name",
        )
        assert sorted(implicit.values()) == sorted(explicit.values())

    def test_implicit_join_lineage_matches_explicit(self, db):
        implicit = run_sql(
            db,
            "SELECT e.name FROM emp e, emp m "
            "WHERE e.boss = m.name AND e.name = 'dan'",
        )
        explicit = run_sql(
            db,
            "SELECT e.name FROM emp e JOIN emp m ON e.boss = m.name "
            "WHERE e.name = 'dan'",
        )
        assert implicit.rows[0].lineage == explicit.rows[0].lineage


class TestExpressionsInSql:
    def test_arithmetic_in_where(self, db):
        result = run_sql(db, "SELECT name FROM emp WHERE salary * 2 > 150")
        assert sorted(row.values[0] for row in result) == ["ann", "bob"]

    def test_string_escape_roundtrip(self, db):
        table = db.create_table("notes", Schema.of(("text", TEXT)))
        table.insert(["it's fine"])
        result = run_sql(db, "SELECT text FROM notes WHERE text = 'it''s fine'")
        assert len(result) == 1

    def test_not_in(self, db):
        result = run_sql(
            db, "SELECT name FROM emp WHERE name NOT IN ('ann', 'bob')"
        )
        assert sorted(row.values[0] for row in result) == ["cat", "dan"]

    def test_between_in_where(self, db):
        result = run_sql(
            db, "SELECT name FROM emp WHERE salary BETWEEN 65 AND 85"
        )
        assert sorted(row.values[0] for row in result) == ["bob", "cat"]

    def test_case_insensitive_keywords_and_columns(self, db):
        result = run_sql(db, "select NAME from EMP where SALARY > 90")
        assert result.values() == [("ann",)]

    def test_unary_minus_in_comparison(self, db):
        result = run_sql(db, "SELECT name FROM emp WHERE -salary < -90")
        assert result.values() == [("ann",)]

    def test_function_in_projection(self, db):
        result = run_sql(db, "SELECT UPPER(name) AS loud FROM emp WHERE salary > 90")
        assert result.values() == [("ANN",)]


class TestConfidenceThroughComplexQueries:
    def test_distinct_union_chain_confidence_monotone(self, db):
        base = run_sql(db, "SELECT boss FROM emp WHERE boss IS NOT NULL")
        merged = run_sql(
            db, "SELECT DISTINCT boss FROM emp WHERE boss IS NOT NULL"
        )
        best: dict[str, float] = {}
        for row, confidence in base.with_confidences(db):
            key = row.values[0]
            best[key] = max(best.get(key, 0.0), confidence)
        for row, confidence in merged.with_confidences(db):
            assert confidence >= best[row.values[0]] - 1e-9

    def test_aggregate_group_confidence(self, db):
        result = run_sql(
            db,
            "SELECT boss, COUNT(*) FROM emp WHERE boss IS NOT NULL GROUP BY boss",
        )
        confidences = {
            row.values[0]: confidence
            for row, confidence in result.with_confidences(db)
        }
        # ann group: bob (0.8) OR cat (0.7) => 1 - 0.2*0.3 = 0.94
        assert confidences["ann"] == pytest.approx(0.94)
        assert confidences["bob"] == pytest.approx(0.6)

    def test_integer_schema_widening_through_union(self, db):
        ints = db.create_table("ints", Schema.of(("v", INTEGER)))
        ints.insert([3])
        result = run_sql(db, "SELECT v FROM ints UNION ALL SELECT salary FROM emp")
        assert all(isinstance(row.values[0], float) for row in result)
