"""Unit tests for repro.storage.database and csvio."""

import io

import pytest

from repro.cost import LinearCost
from repro.errors import (
    DuplicateTableError,
    InvalidConfidenceError,
    SchemaError,
    UnknownTableError,
)
from repro.storage import (
    CONFIDENCE_COLUMN,
    Database,
    REAL,
    Schema,
    TEXT,
    dump_csv,
    load_csv,
)


@pytest.fixture
def db() -> Database:
    database = Database("test")
    table = database.create_table(
        "items", Schema.of(("name", TEXT), ("price", REAL))
    )
    table.insert(["apple", 1.0], confidence=0.5, cost_model=LinearCost(10.0))
    table.insert(["pear", 2.0], confidence=0.9)
    return database


class TestCatalog:
    def test_create_and_lookup(self, db):
        assert db.table("items").name == "items"
        assert db.has_table("ITEMS")  # case-insensitive

    def test_duplicate_rejected(self, db):
        with pytest.raises(DuplicateTableError):
            db.create_table("Items", Schema.of(("x", TEXT)))

    def test_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.table("missing")

    def test_drop_table(self, db):
        db.drop_table("items")
        assert not db.has_table("items")
        with pytest.raises(UnknownTableError):
            db.drop_table("items")

    def test_table_names(self, db):
        db.create_table("other", Schema.of(("x", TEXT)))
        assert db.table_names() == ["items", "other"]


class TestTupleResolution:
    def test_resolve_and_confidence(self, db):
        table = db.table("items")
        tid = next(iter(table.scan())).tid
        assert db.resolve(tid).values == ("apple", 1.0)
        assert db.confidence_of(tid) == 0.5

    def test_confidences_batch(self, db):
        tids = [row.tid for row in db.table("items").scan()]
        confidences = db.confidences(tids)
        assert confidences[tids[0]] == 0.5
        assert confidences[tids[1]] == 0.9

    def test_set_confidence(self, db):
        tid = next(iter(db.table("items").scan())).tid
        db.set_confidence(tid, 0.8)
        assert db.confidence_of(tid) == 0.8

    def test_apply_confidences_all_or_nothing(self, db):
        tids = [row.tid for row in db.table("items").scan()]
        with pytest.raises(InvalidConfidenceError):
            db.apply_confidences({tids[0]: 0.9, tids[1]: 1.5})
        # Nothing was applied.
        assert db.confidence_of(tids[0]) == 0.5

    def test_apply_confidences_success(self, db):
        tids = [row.tid for row in db.table("items").scan()]
        db.apply_confidences({tids[0]: 0.6, tids[1]: 0.95})
        assert db.confidence_of(tids[0]) == 0.6


class TestCsvIO:
    def test_roundtrip_preserves_confidence(self, db):
        buffer = io.StringIO()
        count = dump_csv(db.table("items"), buffer)
        assert count == 2
        target = Database("copy")
        table = target.create_table(
            "items", Schema.of(("name", TEXT), ("price", REAL))
        )
        buffer.seek(0)
        loaded = load_csv(table, buffer)
        assert loaded == 2
        rows = list(table.scan())
        assert rows[0].values == ("apple", 1.0)
        assert rows[0].confidence == 0.5
        assert rows[1].confidence == 0.9

    def test_load_without_confidence_column(self):
        db = Database()
        table = db.create_table("t", Schema.of(("name", TEXT), ("price", REAL)))
        source = io.StringIO("name,price\nfig,3.5\n")
        load_csv(table, source, default_confidence=0.42)
        row = next(iter(table.scan()))
        assert row.confidence == 0.42

    def test_load_parses_nulls(self):
        db = Database()
        table = db.create_table("t", Schema.of(("name", TEXT), ("price", REAL)))
        load_csv(table, io.StringIO("name,price\nfig,\n"))
        assert next(iter(table.scan())).values == ("fig", None)

    def test_load_missing_column_rejected(self):
        db = Database()
        table = db.create_table("t", Schema.of(("name", TEXT), ("price", REAL)))
        with pytest.raises(SchemaError):
            load_csv(table, io.StringIO("name\nfig\n"))

    def test_load_extra_column_rejected(self):
        db = Database()
        table = db.create_table("t", Schema.of(("name", TEXT)))
        with pytest.raises(SchemaError):
            load_csv(table, io.StringIO("name,bogus\nfig,1\n"))

    def test_empty_file(self):
        db = Database()
        table = db.create_table("t", Schema.of(("name", TEXT)))
        assert load_csv(table, io.StringIO("")) == 0

    def test_confidence_header_written(self, db):
        buffer = io.StringIO()
        dump_csv(db.table("items"), buffer)
        header = buffer.getvalue().splitlines()[0]
        assert CONFIDENCE_COLUMN in header

    def test_boolean_parsing(self):
        from repro.storage import BOOLEAN

        db = Database()
        table = db.create_table("t", Schema.of(("flag", BOOLEAN)))
        load_csv(table, io.StringIO("flag\ntrue\nno\n1\n"))
        assert [row.values[0] for row in table.scan()] == [True, False, True]

    def test_bad_boolean_rejected(self):
        from repro.storage import BOOLEAN

        db = Database()
        table = db.create_table("t", Schema.of(("flag", BOOLEAN)))
        with pytest.raises(SchemaError):
            load_csv(table, io.StringIO("flag\nmaybe\n"))
