"""Unit tests for the SQL parser (AST shape, not execution)."""

import pytest

from repro.algebra.expressions import (
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
)
from repro.errors import SqlSyntaxError
from repro.sql import parse
from repro.sql.ast import (
    AggregateCall,
    DerivedTable,
    NamedTable,
    SelectStatement,
    SetStatement,
    Star,
)


class TestSelectCore:
    def test_star(self):
        statement = parse("SELECT * FROM t")
        assert isinstance(statement, SelectStatement)
        assert isinstance(statement.items[0].expression, Star)
        assert statement.from_tables == [NamedTable("t", None)]

    def test_qualified_star(self):
        statement = parse("SELECT p.* FROM proposal p")
        star = statement.items[0].expression
        assert isinstance(star, Star) and star.table == "p"

    def test_column_aliases(self):
        statement = parse("SELECT a AS x, b y, c FROM t")
        assert [item.alias for item in statement.items] == ["x", "y", None]

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct
        assert not parse("SELECT ALL a FROM t").distinct

    def test_table_alias(self):
        statement = parse("SELECT a FROM t AS u")
        assert statement.from_tables == [NamedTable("t", "u")]

    def test_comma_join(self):
        statement = parse("SELECT a FROM t, u")
        assert len(statement.from_tables) == 2

    def test_derived_table(self):
        statement = parse("SELECT a FROM (SELECT b FROM t) AS sub")
        derived = statement.from_tables[0]
        assert isinstance(derived, DerivedTable)
        assert derived.alias == "sub"

    def test_derived_table_requires_alias(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM (SELECT b FROM t)")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t extra garbage ,")


class TestJoins:
    def test_inner_join(self):
        statement = parse("SELECT a FROM t JOIN u ON t.id = u.id")
        assert statement.joins[0].kind == "inner"
        assert isinstance(statement.joins[0].condition, Comparison)

    def test_explicit_inner(self):
        assert parse("SELECT a FROM t INNER JOIN u ON t.x = u.x").joins[0].kind == "inner"

    def test_left_outer_join(self):
        assert parse("SELECT a FROM t LEFT OUTER JOIN u ON t.x = u.x").joins[0].kind == "left"
        assert parse("SELECT a FROM t LEFT JOIN u ON t.x = u.x").joins[0].kind == "left"

    def test_cross_join_no_condition(self):
        join = parse("SELECT a FROM t CROSS JOIN u").joins[0]
        assert join.kind == "cross" and join.condition is None

    def test_join_requires_on(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t JOIN u")

    def test_multiple_joins(self):
        statement = parse(
            "SELECT a FROM t JOIN u ON t.x = u.x LEFT JOIN v ON u.y = v.y"
        )
        assert [join.kind for join in statement.joins] == ["inner", "left"]


class TestExpressions:
    def where(self, condition):
        return parse(f"SELECT a FROM t WHERE {condition}").where

    def test_precedence_or_and(self):
        expression = self.where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expression, LogicalOr)
        assert isinstance(expression.right, LogicalAnd)

    def test_not_precedence(self):
        expression = self.where("NOT a = 1 AND b = 2")
        assert isinstance(expression, LogicalAnd)
        assert isinstance(expression.left, LogicalNot)

    def test_arithmetic_precedence(self):
        expression = self.where("a + b * c = 7")
        assert isinstance(expression, Comparison)
        assert expression.left.op == "+"
        assert expression.left.right.op == "*"

    def test_parentheses(self):
        expression = self.where("(a + b) * c = 7")
        assert expression.left.op == "*"

    def test_not_equal_normalized(self):
        assert self.where("a != 1").op == "<>"

    def test_is_null_and_not_null(self):
        assert isinstance(self.where("a IS NULL"), IsNull)
        expression = self.where("a IS NOT NULL")
        assert isinstance(expression, IsNull) and expression.negated

    def test_like_and_not_like(self):
        like = self.where("a LIKE 'x%'")
        assert isinstance(like, Like) and like.pattern == "x%"
        assert self.where("a NOT LIKE 'x%'").negated

    def test_in_list(self):
        expression = self.where("a IN (1, 2, 3)")
        assert isinstance(expression, InList)
        assert len(expression.options) == 3

    def test_not_in(self):
        assert self.where("a NOT IN (1)").negated

    def test_between(self):
        expression = self.where("a BETWEEN 1 AND 5")
        assert isinstance(expression, Between)

    def test_not_without_predicate_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t WHERE a NOT 5")

    def test_literals(self):
        expression = self.where("a = 'text'")
        assert isinstance(expression.right, Literal)
        assert self.where("a = NULL").right.value is None
        assert self.where("a = TRUE").right.value is True
        assert self.where("a = FALSE").right.value is False

    def test_qualified_column(self):
        expression = self.where("t.a = 1")
        assert isinstance(expression.left, ColumnRef)
        assert expression.left.table == "t"

    def test_unary_minus(self):
        from repro.algebra.expressions import Negate

        assert isinstance(self.where("a = -1").right, Negate)

    def test_function_call(self):
        from repro.algebra.expressions import FunctionCall

        expression = self.where("LENGTH(a) > 3")
        assert isinstance(expression.left, FunctionCall)

    def test_concat_becomes_plus(self):
        expression = self.where("a || 'x' = 'yx'")
        assert expression.left.op == "+"


class TestAggregates:
    def test_count_star(self):
        statement = parse("SELECT COUNT(*) FROM t")
        call = statement.items[0].expression
        assert isinstance(call, AggregateCall)
        assert call.function == "COUNT" and call.argument is None

    def test_count_distinct(self):
        call = parse("SELECT COUNT(DISTINCT a) FROM t").items[0].expression
        assert call.distinct

    def test_aggregate_in_arithmetic(self):
        expression = parse("SELECT SUM(a) / COUNT(*) FROM t").items[0].expression
        assert expression.op == "/"
        assert isinstance(expression.left, AggregateCall)

    def test_group_by_and_having(self):
        statement = parse(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None


class TestSetOperationsAndTrailers:
    def test_union(self):
        statement = parse("SELECT a FROM t UNION SELECT a FROM u")
        assert isinstance(statement, SetStatement)
        assert statement.kind == "union"

    def test_union_all(self):
        assert parse("SELECT a FROM t UNION ALL SELECT a FROM u").kind == "union_all"

    def test_intersect_and_except(self):
        assert parse("SELECT a FROM t INTERSECT SELECT a FROM u").kind == "intersect"
        assert parse("SELECT a FROM t EXCEPT SELECT a FROM u").kind == "except"

    def test_chained_set_operations_left_associative(self):
        statement = parse(
            "SELECT a FROM t UNION SELECT a FROM u EXCEPT SELECT a FROM v"
        )
        assert statement.kind == "except"
        assert isinstance(statement.left, SetStatement)

    def test_order_by(self):
        statement = parse("SELECT a FROM t ORDER BY a DESC, b ASC, 2")
        assert statement.order_by[0].descending
        assert not statement.order_by[1].descending
        assert statement.order_by[2].expression == 2

    def test_limit_offset(self):
        statement = parse("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert statement.limit == 10 and statement.offset == 5

    def test_order_attaches_to_set_statement(self):
        statement = parse("SELECT a FROM t UNION SELECT a FROM u ORDER BY 1 LIMIT 3")
        assert isinstance(statement, SetStatement)
        assert statement.limit == 3
        assert len(statement.order_by) == 1

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t LIMIT 'x'")
