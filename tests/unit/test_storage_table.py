"""Unit tests for repro.storage tables, tuples and indexes."""

import pytest

from repro.cost import LinearCost, LogarithmicCost
from repro.errors import (
    InvalidConfidenceError,
    SchemaError,
    UnknownTupleError,
)
from repro.storage import REAL, Schema, Table, TEXT, TupleId
from repro.storage.tuples import StoredTuple


@pytest.fixture
def table() -> Table:
    return Table("t", Schema.of(("name", TEXT), ("value", REAL)))


class TestTupleId:
    def test_string_roundtrip(self):
        tid = TupleId("Proposal", 2)
        assert str(tid) == "Proposal:2"
        assert TupleId.parse("Proposal:2") == tid

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            TupleId.parse("nocolon")
        with pytest.raises(ValueError):
            TupleId.parse("t:notanumber")

    def test_ordering(self):
        assert TupleId("a", 1) < TupleId("a", 2) < TupleId("b", 0)


class TestStoredTuple:
    def test_confidence_validated(self):
        with pytest.raises(InvalidConfidenceError):
            StoredTuple(TupleId("t", 0), ("x",), confidence=1.5)

    def test_confidence_above_cap_rejected(self):
        model = LinearCost(10.0, max_confidence=0.8)
        with pytest.raises(InvalidConfidenceError):
            StoredTuple(TupleId("t", 0), ("x",), confidence=0.9, cost_model=model)

    def test_set_confidence_respects_cap(self):
        model = LinearCost(10.0, max_confidence=0.8)
        row = StoredTuple(TupleId("t", 0), ("x",), confidence=0.5, cost_model=model)
        row.set_confidence(0.8)
        assert row.confidence == 0.8
        with pytest.raises(InvalidConfidenceError):
            row.set_confidence(0.9)

    def test_improvement_cost_delegates_to_model(self):
        row = StoredTuple(
            TupleId("t", 0), ("x",), confidence=0.3, cost_model=LinearCost(100.0)
        )
        assert row.improvement_cost(0.5) == pytest.approx(20.0)

    def test_sequence_protocol(self):
        row = StoredTuple(TupleId("t", 0), ("a", 2.0))
        assert len(row) == 2
        assert row[0] == "a"
        assert list(row) == ["a", 2.0]


class TestTableInsert:
    def test_insert_assigns_sequential_ids(self, table):
        first = table.insert(["a", 1.0])
        second = table.insert(["b", 2.0])
        assert first == TupleId("t", 0)
        assert second == TupleId("t", 1)
        assert len(table) == 2

    def test_insert_validates_arity(self, table):
        with pytest.raises(SchemaError):
            table.insert(["only-one"])

    def test_insert_validates_types(self, table):
        from repro.errors import TypeMismatchError

        with pytest.raises(TypeMismatchError):
            table.insert(["a", "not-a-number"])

    def test_insert_widens_int_for_real(self, table):
        tid = table.insert(["a", 3])
        assert table.get(tid).values == ("a", 3.0)

    def test_insert_many(self, table):
        ids = table.insert_many([["a", 1.0], ["b", 2.0]], confidence=0.5)
        assert len(ids) == 2
        assert all(table.confidence_of(tid) == 0.5 for tid in ids)

    def test_not_null_enforced(self):
        from repro.storage import Column

        table = Table("t", Schema([Column("x", TEXT, nullable=False)]))
        with pytest.raises(SchemaError):
            table.insert([None])

    def test_ids_stable_across_deletes(self, table):
        first = table.insert(["a", 1.0])
        table.insert(["b", 2.0])
        table.delete(first)
        third = table.insert(["c", 3.0])
        assert third == TupleId("t", 2)


class TestTableAccess:
    def test_get_unknown_raises(self, table):
        with pytest.raises(UnknownTupleError):
            table.get(TupleId("t", 99))

    def test_get_wrong_table_raises(self, table):
        table.insert(["a", 1.0])
        with pytest.raises(UnknownTupleError):
            table.get(TupleId("other", 0))

    def test_scan_in_insertion_order(self, table):
        table.insert(["b", 2.0])
        table.insert(["a", 1.0])
        assert table.rows() == [("b", 2.0), ("a", 1.0)]

    def test_set_confidence(self, table):
        tid = table.insert(["a", 1.0], confidence=0.2)
        table.set_confidence(tid, 0.7)
        assert table.confidence_of(tid) == 0.7

    def test_assign_confidences(self, table):
        table.insert(["a", 1.0])
        table.insert(["b", 2.0])
        table.assign_confidences(lambda row: 0.25)
        assert all(row.confidence == 0.25 for row in table.scan())


class TestTableIndex:
    def test_lookup_without_index(self, table):
        table.insert(["a", 1.0])
        table.insert(["b", 2.0])
        table.insert(["a", 3.0])
        matches = table.lookup("name", "a")
        assert [row.values[1] for row in matches] == [1.0, 3.0]

    def test_index_backfills_existing_rows(self, table):
        table.insert(["a", 1.0])
        table.create_index("name")
        table.insert(["a", 2.0])
        assert len(table.lookup("name", "a")) == 2
        assert table.index_on("name") is not None

    def test_index_updates_on_delete(self, table):
        tid = table.insert(["a", 1.0])
        table.create_index("name")
        table.delete(tid)
        assert table.lookup("name", "a") == []

    def test_create_index_idempotent(self, table):
        table.create_index("name")
        table.create_index("name")
        assert table.index_on("name") is not None

    def test_index_on_unknown_column_returns_none(self, table):
        assert table.index_on("missing") is None
