"""Unit tests for provenance-based confidence assignment."""

import pytest

from repro.storage import Database, Schema, TEXT
from repro.trust import (
    CollectionMethod,
    ConfidenceAssigner,
    DataSource,
    ProvenanceError,
    ProvenanceRecord,
)


@pytest.fixture
def sources():
    return {
        "gov": DataSource("census-bureau", trust=0.9),
        "blog": DataSource("random-blog", trust=0.2),
        "vendor": DataSource("data-vendor", trust=0.6),
    }


@pytest.fixture
def methods():
    return {
        "api": CollectionMethod("automated-feed", reliability=0.95),
        "manual": CollectionMethod("manual-entry", reliability=0.6),
    }


class TestModels:
    def test_trust_validated(self):
        with pytest.raises(ProvenanceError):
            DataSource("x", trust=1.2)

    def test_reliability_validated(self):
        with pytest.raises(ProvenanceError):
            CollectionMethod("x", reliability=-0.1)

    def test_empty_names_rejected(self):
        with pytest.raises(ProvenanceError):
            DataSource("", 0.5)
        with pytest.raises(ProvenanceError):
            CollectionMethod("", 0.5)

    def test_negative_age_rejected(self, sources, methods):
        with pytest.raises(ProvenanceError):
            ProvenanceRecord(sources["gov"], methods["api"], age_days=-1)


class TestScoring:
    def test_single_source(self, sources, methods):
        assigner = ConfidenceAssigner(half_life_days=None)
        record = ProvenanceRecord(sources["gov"], methods["api"])
        assert assigner.score(record) == pytest.approx(0.9 * 0.95)

    def test_corroboration_raises_confidence(self, sources, methods):
        assigner = ConfidenceAssigner(half_life_days=None)
        alone = ProvenanceRecord(sources["blog"], methods["api"])
        backed = ProvenanceRecord(
            sources["blog"], methods["api"], corroborations=(sources["vendor"],)
        )
        assert assigner.score(backed) > assigner.score(alone)

    def test_corroboration_is_noisy_or(self, sources, methods):
        assigner = ConfidenceAssigner(half_life_days=None)
        record = ProvenanceRecord(
            sources["blog"], methods["api"], corroborations=(sources["vendor"],)
        )
        rel = 0.95
        expected = 1 - (1 - 0.2 * rel) * (1 - 0.6 * rel)
        assert assigner.score(record) == pytest.approx(expected)

    def test_age_decay(self, sources, methods):
        assigner = ConfidenceAssigner(half_life_days=100.0, decay=0.5)
        fresh = ProvenanceRecord(sources["gov"], methods["api"], age_days=0)
        stale = ProvenanceRecord(sources["gov"], methods["api"], age_days=100)
        assert assigner.score(stale) == pytest.approx(assigner.score(fresh) / 2)

    def test_floor(self, sources, methods):
        assigner = ConfidenceAssigner(floor=0.05, half_life_days=1.0)
        ancient = ProvenanceRecord(sources["blog"], methods["manual"], age_days=10_000)
        assert assigner.score(ancient) == 0.05

    def test_never_exceeds_one(self, methods):
        assigner = ConfidenceAssigner(half_life_days=None)
        perfect = DataSource("oracle", 1.0)
        record = ProvenanceRecord(
            perfect, CollectionMethod("m", 1.0), corroborations=(perfect, perfect)
        )
        assert assigner.score(record) == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ProvenanceError):
            ConfidenceAssigner(half_life_days=0.0)
        with pytest.raises(ProvenanceError):
            ConfidenceAssigner(decay=0.0)
        with pytest.raises(ProvenanceError):
            ConfidenceAssigner(floor=2.0)


class TestAssignToTable:
    def test_assigns_and_respects_caps(self, sources, methods):
        from repro.cost import LinearCost

        db = Database()
        table = db.create_table("t", Schema.of(("x", TEXT)))
        capped = table.insert(
            ["a"], confidence=0.1, cost_model=LinearCost(1.0, max_confidence=0.5)
        )
        free = table.insert(["b"], confidence=0.1)
        assigner = ConfidenceAssigner(half_life_days=None)
        record = ProvenanceRecord(sources["gov"], methods["api"])  # 0.855
        applied = assigner.assign(
            table, {capped: record, free: record}
        )
        assert applied[capped] == 0.5  # clamped to the cost model's cap
        assert applied[free] == pytest.approx(0.855)

    def test_missing_records_keep_confidence(self, sources, methods):
        db = Database()
        table = db.create_table("t", Schema.of(("x", TEXT)))
        tid = table.insert(["a"], confidence=0.33)
        assigner = ConfidenceAssigner()
        applied = assigner.assign(table, {})
        assert applied == {}
        assert table.confidence_of(tid) == 0.33

    def test_default_record_used(self, sources, methods):
        db = Database()
        table = db.create_table("t", Schema.of(("x", TEXT)))
        table.insert(["a"], confidence=0.9)
        assigner = ConfidenceAssigner(half_life_days=None)
        default = ProvenanceRecord(sources["blog"], methods["manual"])
        applied = assigner.assign(table, {}, default=default)
        assert len(applied) == 1
        assert list(applied.values())[0] == pytest.approx(0.2 * 0.6)
