"""Unit tests for the three strategy-finding solvers (paper §4)."""

import math

import pytest

from repro.cost import LinearCost
from repro.errors import IncrementError, InfeasibleIncrementError
from repro.increment import (
    BaseTupleState,
    DncOptions,
    GreedyOptions,
    HeuristicOptions,
    IncrementProblem,
    cost_beta,
    solve_dnc,
    solve_greedy,
    solve_heuristic,
)
from repro.lineage import ConfidenceFunction, lineage_and, lineage_or, var
from repro.storage import TupleId
from repro.workload import WorkloadSpec, generate_problem

A, B, C, D = (TupleId("t", i) for i in range(4))


def simple_problem(threshold=0.5, required=1):
    """Two results over three tuples with asymmetric costs."""
    states = {
        A: BaseTupleState(A, 0.1, LinearCost(1000.0)),  # expensive
        B: BaseTupleState(B, 0.1, LinearCost(100.0)),
        C: BaseTupleState(C, 0.1, LinearCost(10.0)),  # cheap
    }
    results = [
        ConfidenceFunction(lineage_or(var(A), var(C)), "r0"),
        ConfidenceFunction(lineage_and(var(B), var(C)), "r1"),
    ]
    return IncrementProblem(results, states, threshold, required, delta=0.1)


ALL_SOLVERS = [
    ("heuristic", lambda p: solve_heuristic(p)),
    ("greedy", lambda p: solve_greedy(p)),
    ("dnc", lambda p: solve_dnc(p)),
]


class TestAllSolversAgreeOnBasics:
    @pytest.mark.parametrize("name,solve", ALL_SOLVERS)
    def test_trivial_problem_returns_empty_plan(self, name, solve):
        states = {A: BaseTupleState(A, 0.9, LinearCost(10.0))}
        problem = IncrementProblem([ConfidenceFunction(var(A))], states, 0.5, 1)
        plan = solve(problem)
        assert plan.total_cost == 0.0
        assert plan.targets == {}
        assert plan.satisfied_results == (0,)

    @pytest.mark.parametrize("name,solve", ALL_SOLVERS)
    def test_plan_actually_satisfies(self, name, solve):
        problem = simple_problem()
        plan = solve(problem)
        assignment = problem.initial_assignment()
        assignment.update(plan.targets)
        assert problem.satisfied_count(assignment) >= problem.required_count

    @pytest.mark.parametrize("name,solve", ALL_SOLVERS)
    def test_reported_cost_matches_targets(self, name, solve):
        problem = simple_problem()
        plan = solve(problem)
        recomputed = sum(
            problem.tuples[tid].cost_to(target)
            for tid, target in plan.targets.items()
        )
        assert plan.total_cost == pytest.approx(recomputed)

    @pytest.mark.parametrize("name,solve", ALL_SOLVERS)
    def test_infeasible_raises(self, name, solve):
        states = {
            A: BaseTupleState(A, 0.1, LinearCost(1.0, max_confidence=0.3))
        }
        problem = IncrementProblem([ConfidenceFunction(var(A))], states, 0.9, 1)
        with pytest.raises(InfeasibleIncrementError):
            solve(problem)

    @pytest.mark.parametrize("name,solve", ALL_SOLVERS)
    def test_respects_max_confidence_caps(self, name, solve):
        states = {
            A: BaseTupleState(A, 0.1, LinearCost(10.0, max_confidence=0.7)),
            B: BaseTupleState(B, 0.1, LinearCost(10.0, max_confidence=0.7)),
        }
        problem = IncrementProblem(
            [ConfidenceFunction(lineage_or(var(A), var(B)))], states, 0.8, 1
        )
        plan = solve(problem)
        for tid, target in plan.targets.items():
            assert target <= states[tid].maximum + 1e-9


class TestHeuristicSolver:
    def test_optimal_on_paper_example(self, paper_increment_problem):
        problem, refs = paper_increment_problem
        plan = solve_heuristic(problem)
        assert plan.total_cost == pytest.approx(10.0)

    def test_optimal_beats_or_ties_approximations(self):
        for seed in range(5):
            spec = WorkloadSpec(
                data_size=8, tuples_per_result=4, theta=0.5, threshold=0.5
            )
            problem = generate_problem(spec, seed=seed).problem
            exact = solve_heuristic(problem)
            greedy = solve_greedy(problem)
            dnc = solve_dnc(problem)
            assert exact.total_cost <= greedy.total_cost + 1e-6
            assert exact.total_cost <= dnc.total_cost + 1e-6

    def test_all_heuristics_preserve_optimality(self):
        problem = generate_problem(
            WorkloadSpec(data_size=8, tuples_per_result=4, threshold=0.5),
            seed=11,
        ).problem
        baseline = solve_heuristic(problem, HeuristicOptions.naive())
        for name in ("h1", "h2", "h3", "h4"):
            plan = solve_heuristic(problem, HeuristicOptions.only(name))
            assert plan.total_cost == pytest.approx(baseline.total_cost)
        full = solve_heuristic(problem)
        assert full.total_cost == pytest.approx(baseline.total_cost)

    def test_heuristics_prune_nodes(self):
        problem = generate_problem(
            WorkloadSpec(data_size=10, tuples_per_result=5, threshold=0.5),
            seed=2,
        ).problem
        naive = solve_heuristic(problem, HeuristicOptions.naive())
        full = solve_heuristic(problem)
        assert full.stats.nodes_explored <= naive.stats.nodes_explored

    def test_node_limit_degrades_gracefully(self):
        problem = generate_problem(
            WorkloadSpec(data_size=10, tuples_per_result=5, threshold=0.5),
            seed=2,
        ).problem
        unlimited = solve_heuristic(problem, HeuristicOptions.naive())
        limited = solve_heuristic(
            problem,
            HeuristicOptions(
                use_h1=False,
                use_h2=False,
                use_h3=False,
                use_h4=False,
                node_limit=unlimited.stats.nodes_explored // 2,
            ),
        )
        assert not limited.stats.completed
        assert limited.total_cost >= unlimited.total_cost - 1e-9

    def test_upper_bound_below_optimum_raises(self, paper_increment_problem):
        problem, _refs = paper_increment_problem
        with pytest.raises(IncrementError):
            solve_heuristic(problem, HeuristicOptions(initial_upper_bound=5.0))

    def test_unknown_heuristic_name(self):
        with pytest.raises(IncrementError):
            HeuristicOptions.only("h9")

    def test_cost_beta_prefers_cheap_effective_tuples(self):
        problem = simple_problem()
        # C is cheap and can satisfy r0 alone; A is expensive.
        assert cost_beta(problem, C) < cost_beta(problem, A)

    def test_cost_beta_penalises_unreachable(self):
        states = {
            A: BaseTupleState(A, 0.1, LinearCost(10.0)),
            B: BaseTupleState(B, 0.1, LinearCost(10.0)),
        }
        problem = IncrementProblem(
            [ConfidenceFunction(lineage_and(var(A), var(B)))], states, 0.9, 1
        )
        # Neither tuple alone can push the AND above 0.9.
        score = cost_beta(problem, A)
        assert math.isfinite(score)
        assert score > states[A].cost_to(1.0)


class TestGreedySolver:
    def test_two_phase_never_worse_than_one_phase(self):
        for seed in range(5):
            problem = generate_problem(
                WorkloadSpec(data_size=40, tuples_per_result=4, threshold=0.5),
                seed=seed,
            ).problem
            one = solve_greedy(problem, GreedyOptions(two_phase=False))
            two = solve_greedy(problem, GreedyOptions(two_phase=True))
            assert two.total_cost <= one.total_cost + 1e-6

    def test_full_and_incremental_modes_agree(self):
        problem = generate_problem(
            WorkloadSpec(data_size=30, tuples_per_result=3, threshold=0.5),
            seed=4,
        ).problem
        incremental = solve_greedy(problem, GreedyOptions(recompute="incremental"))
        full = solve_greedy(problem, GreedyOptions(recompute="full"))
        assert incremental.total_cost == pytest.approx(full.total_cost)

    def test_gain_scope_all_still_satisfies(self):
        problem = simple_problem()
        plan = solve_greedy(problem, GreedyOptions(gain_scope="all"))
        assignment = problem.initial_assignment()
        assignment.update(plan.targets)
        assert problem.satisfied_count(assignment) >= 1

    def test_invalid_options(self):
        with pytest.raises(IncrementError):
            GreedyOptions(gain_scope="bogus")
        with pytest.raises(IncrementError):
            GreedyOptions(recompute="bogus")

    def test_phase2_reductions_counted(self):
        problem = generate_problem(
            WorkloadSpec(data_size=60, tuples_per_result=4, threshold=0.5),
            seed=9,
        ).problem
        plan = solve_greedy(problem)
        assert plan.stats.phase2_reductions >= 0
        assert plan.stats.gain_evaluations > 0

    def test_prefers_cheap_tuple(self):
        # One result (A OR C): C costs 10/unit, A costs 1000/unit.
        states = {
            A: BaseTupleState(A, 0.1, LinearCost(1000.0)),
            C: BaseTupleState(C, 0.1, LinearCost(10.0)),
        }
        problem = IncrementProblem(
            [ConfidenceFunction(lineage_or(var(A), var(C)))], states, 0.6, 1
        )
        plan = solve_greedy(problem)
        assert set(plan.targets) == {C}


class TestDncSolver:
    def test_satisfies_requirement(self):
        problem = generate_problem(
            WorkloadSpec(data_size=100, tuples_per_result=5, threshold=0.5),
            seed=6,
        ).problem
        plan = solve_dnc(problem)
        assignment = problem.initial_assignment()
        assignment.update(plan.targets)
        assert problem.satisfied_count(assignment) >= problem.required_count

    def test_paper_allocation_mode(self):
        problem = generate_problem(
            WorkloadSpec(data_size=60, tuples_per_result=4, threshold=0.5),
            seed=6,
        ).problem
        plan = solve_dnc(problem, DncOptions(allocation="paper"))
        assignment = problem.initial_assignment()
        assignment.update(plan.targets)
        assert problem.satisfied_count(assignment) >= problem.required_count

    def test_refinement_reduces_or_keeps_cost(self):
        problem = generate_problem(
            WorkloadSpec(data_size=80, tuples_per_result=4, threshold=0.5),
            seed=3,
        ).problem
        unrefined = solve_dnc(problem, DncOptions(refine=False))
        refined = solve_dnc(problem, DncOptions(refine=True))
        assert refined.total_cost <= unrefined.total_cost + 1e-6

    def test_group_count_reported(self):
        problem = generate_problem(
            WorkloadSpec(data_size=100, tuples_per_result=5, threshold=0.5),
            seed=6,
        ).problem
        plan = solve_dnc(problem)
        assert plan.stats.groups >= 1

    def test_invalid_allocation(self):
        with pytest.raises(IncrementError):
            DncOptions(allocation="bogus")

    def test_tau_zero_disables_exact_refinement(self):
        problem = generate_problem(
            WorkloadSpec(data_size=50, tuples_per_result=4, threshold=0.5),
            seed=5,
        ).problem
        plan = solve_dnc(problem, DncOptions(tau=0))
        assignment = problem.initial_assignment()
        assignment.update(plan.targets)
        assert problem.satisfied_count(assignment) >= problem.required_count


class TestPlanDescription:
    def test_describe_mentions_targets(self, paper_increment_problem):
        problem, _refs = paper_increment_problem
        plan = solve_heuristic(problem)
        text = plan.describe(problem)
        assert "cost=10.00" in text
        assert "->" in text
