"""Unit tests for repro.lineage.formula."""

import pytest

from repro.errors import LineageError
from repro.lineage import (
    BOTTOM,
    TOP,
    And,
    Not,
    Or,
    Var,
    lineage_and,
    lineage_not,
    lineage_or,
    restrict,
    var,
)
from repro.storage import TupleId

A = TupleId("t", 0)
B = TupleId("t", 1)
C = TupleId("t", 2)


class TestSmartConstructors:
    def test_empty_and_is_top(self):
        assert lineage_and() is TOP

    def test_empty_or_is_bottom(self):
        assert lineage_or() is BOTTOM

    def test_single_child_unwrapped(self):
        assert lineage_and(var(A)) == var(A)
        assert lineage_or(var(A)) == var(A)

    def test_bottom_annihilates_and(self):
        assert lineage_and(var(A), BOTTOM) is BOTTOM

    def test_top_annihilates_or(self):
        assert lineage_or(var(A), TOP) is TOP

    def test_neutral_elements_dropped(self):
        assert lineage_and(var(A), TOP) == var(A)
        assert lineage_or(var(A), BOTTOM) == var(A)

    def test_flattening(self):
        nested = lineage_and(lineage_and(var(A), var(B)), var(C))
        assert isinstance(nested, And)
        assert len(nested.children) == 3

    def test_deduplication(self):
        assert lineage_and(var(A), var(A)) == var(A)
        formula = lineage_or(var(A), var(B), var(A))
        assert isinstance(formula, Or)
        assert len(formula.children) == 2

    def test_double_negation(self):
        assert lineage_not(lineage_not(var(A))) == var(A)

    def test_negated_constants(self):
        assert lineage_not(TOP) is BOTTOM
        assert lineage_not(BOTTOM) is TOP

    def test_operator_sugar(self):
        formula = (var(A) & var(B)) | ~var(C)
        assert isinstance(formula, Or)
        assert formula.variables == {A, B, C}


class TestStructuralEquality:
    def test_equal_formulas_equal_hash(self):
        left = lineage_and(var(A), var(B))
        right = lineage_and(var(A), var(B))
        assert left == right
        assert hash(left) == hash(right)

    def test_and_or_differ(self):
        assert lineage_and(var(A), var(B)) != lineage_or(var(A), var(B))

    def test_variables_collected(self):
        formula = lineage_and(lineage_or(var(A), var(B)), var(C))
        assert formula.variables == frozenset({A, B, C})


class TestBooleanEvaluation:
    def test_truth_table_and(self):
        formula = lineage_and(var(A), var(B))
        assert formula.evaluate({A: True, B: True})
        assert not formula.evaluate({A: True, B: False})

    def test_truth_table_or(self):
        formula = lineage_or(var(A), var(B))
        assert formula.evaluate({A: False, B: True})
        assert not formula.evaluate({A: False, B: False})

    def test_not(self):
        assert Not(var(A)).evaluate({A: False})

    def test_missing_variable_raises(self):
        with pytest.raises(LineageError):
            var(A).evaluate({})

    def test_constants(self):
        assert TOP.evaluate({})
        assert not BOTTOM.evaluate({})


class TestRestrict:
    def test_restrict_var(self):
        assert restrict(var(A), A, True) is TOP
        assert restrict(var(A), A, False) is BOTTOM

    def test_restrict_untouched_formula_identity(self):
        formula = lineage_and(var(A), var(B))
        assert restrict(formula, C, True) is formula

    def test_restrict_simplifies(self):
        formula = lineage_and(var(A), var(B))
        assert restrict(formula, A, True) == var(B)
        assert restrict(formula, A, False) is BOTTOM

    def test_restrict_or(self):
        formula = lineage_or(var(A), var(B))
        assert restrict(formula, A, True) is TOP
        assert restrict(formula, A, False) == var(B)

    def test_restrict_through_not(self):
        formula = lineage_not(lineage_and(var(A), var(B)))
        assert restrict(formula, A, False) is TOP

    def test_restrict_paper_formula(self):
        # (A OR B) AND C restricted on C=False is BOTTOM.
        formula = lineage_and(lineage_or(var(A), var(B)), var(C))
        assert restrict(formula, C, False) is BOTTOM
        assert restrict(formula, C, True) == lineage_or(var(A), var(B))
