"""The retrying client: error classification, backoff, idempotency, rids.

Every test runs against a real served socket; fault injection (where
used) is the deterministic seeded injector, never timing games.
"""

from __future__ import annotations

import pytest

from repro.obs import get_metrics
from repro.server import (
    PCQEServer,
    RetriesExhaustedError,
    RetryingClient,
    ServerReplyError,
)
from repro.workload import venture_capital_database


@pytest.fixture()
def served():
    scenario = venture_capital_database()
    server = PCQEServer(scenario.db, scenario.policies, port=0).start()
    yield server, scenario
    server.stop()


def _client(server, **kwargs) -> RetryingClient:
    kwargs.setdefault("user", "bob")
    kwargs.setdefault("purpose", "investment")
    kwargs.setdefault("sleep", lambda _s: None)  # no real backoff in tests
    return RetryingClient(server.host, server.port, **kwargs)


class TestClassification:
    def test_terminal_errors_raise_immediately(self, served):
        server, _ = served
        retries = get_metrics().counter("server.retries")
        before = retries.value
        with _client(server) as client:
            with pytest.raises(ServerReplyError) as info:
                client.sql("SELECT nonsense FROM nowhere")
        assert retries.value == before  # not a single retry burned
        assert info.value.error.get("retryable", False) is False

    def test_retryable_rejection_retries_without_reconnecting(self, served):
        server, _ = served
        with _client(server, attempts=2) as client:
            server._inflight = server.workers * 4  # sheds sql (class 1)
            try:
                with pytest.raises(RetriesExhaustedError) as info:
                    client.sql("SELECT * FROM Proposal")
            finally:
                server._inflight = 0
            assert isinstance(info.value.last_error, ServerReplyError)
            assert info.value.last_error.type == "OverloadError"
            # Overload left the socket healthy: no reconnect, and the
            # connection still works once the pressure is gone.
            assert client.reconnects == 0
            assert client.sql("SELECT * FROM Proposal")["count"] == 6

    def test_wire_payload_carries_structured_overload_details(self, served):
        server, _ = served
        with _client(server, attempts=1) as client:
            server._inflight = server.workers * 4
            try:
                with pytest.raises(RetriesExhaustedError) as info:
                    client.sql("SELECT * FROM Proposal")
            finally:
                server._inflight = 0
            payload = info.value.last_error.error
            assert payload["retryable"] is True
            assert payload["priority"] == 1
            assert payload["queue_depth"] == server.workers * 4

    def test_dead_server_exhausts_retries(self):
        scenario = venture_capital_database()
        server = PCQEServer(scenario.db, scenario.policies, port=0).start()
        client = _client(server, attempts=3)
        host, port = server.host, server.port
        server.stop()
        del host, port
        with pytest.raises(RetriesExhaustedError) as info:
            client.sql("SELECT * FROM Proposal")
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, (OSError, Exception))
        client.close()


class TestTransportRecovery:
    def test_send_fault_reconnects_and_succeeds(self, served, network_fault):
        server, _ = served
        # Occurrence 2: the hello leaves cleanly, the first request dies.
        injector = network_fault("client.send", "disconnect", occurrence=2)
        retries = get_metrics().counter("server.retries")
        before = retries.value
        with _client(server, faults=injector) as client:
            reply = client.sql("SELECT * FROM Proposal")
        assert reply["count"] == 6
        assert injector.tripped
        assert client.reconnects == 1
        assert retries.value == before + 1

    def test_duplicated_reply_is_discarded_by_rid(self, served):
        scenario = venture_capital_database()
        from repro.server import NetworkFaultInjector, NetworkFaultSpec

        injector = NetworkFaultInjector(
            NetworkFaultSpec("server.write", "dup", occurrence=2)
        )
        server = PCQEServer(
            scenario.db, scenario.policies, port=0, faults=injector
        ).start()
        stale = get_metrics().counter("client.stale_replies")
        before = stale.value
        try:
            with _client(server) as client:
                first = client.sql("SELECT * FROM Proposal")
                second = client.sql("SELECT * FROM CompanyInfo")
            assert first["count"] == 6
            assert second["count"] == 5
            assert injector.tripped
            # The duplicate of the first reply was read and dropped while
            # waiting for the second reply's rid.
            assert stale.value == before + 1
        finally:
            server.stop()


class TestIdempotency:
    def test_same_key_replays_the_completed_reply(self, served):
        server, _ = served
        with _client(server) as client:
            message = {
                "op": "sql",
                "sql": "INSERT INTO Proposal VALUES ('Idem', 'P1', 1.0)",
                "idempotency_key": "fixed-key",
            }
            first = client.request(dict(message))
            again = client.request(dict(message))
            client.refresh()
            count = client.sql(
                "SELECT * FROM Proposal WHERE Company = 'Idem'"
            )["count"]
        assert first.get("idempotent_replay") is None
        assert again["idempotent_replay"] is True
        assert again["result"] == first["result"]
        assert count == 1  # executed exactly once

    def test_distinct_requests_mint_distinct_keys(self, served):
        server, _ = served
        with _client(server) as client:
            client.sql("INSERT INTO Proposal VALUES ('D1', 'P1', 1.0)")
            client.sql("INSERT INTO Proposal VALUES ('D2', 'P1', 1.0)")
            client.refresh()
            count = client.sql(
                "SELECT * FROM Proposal WHERE Proposal = 'P1'"
            )["count"]
        assert count == 2  # no accidental dedup across requests

    def test_keys_are_scoped_by_client_id(self, served):
        server, _ = served
        with _client(server, client_id="a") as alice, _client(
            server, client_id="b"
        ) as bob:
            message = {
                "op": "sql",
                "sql": "INSERT INTO Proposal VALUES ('Scoped', 'P1', 1.0)",
                "idempotency_key": "shared",
            }
            alice.request(dict(message))
            reply = bob.request(dict(message))
            bob.refresh()
            count = bob.sql(
                "SELECT * FROM Proposal WHERE Company = 'Scoped'"
            )["count"]
        assert reply.get("idempotent_replay") is None
        assert count == 2  # same key, different clients: both execute

    def test_failed_attempts_are_not_pinned(self, served):
        server, _ = served
        with _client(server) as client:
            message = {
                "op": "sql",
                "sql": "SELECT broken FROM nowhere",
                "idempotency_key": "will-fail",
            }
            with pytest.raises(ServerReplyError):
                client.request(dict(message))
            # The error was not cached: a corrected statement under the
            # same key executes instead of replaying the failure.
            fixed = client.request(
                {
                    "op": "sql",
                    "sql": "SELECT * FROM Proposal",
                    "idempotency_key": "will-fail",
                }
            )
        assert fixed["count"] == 6
        assert fixed.get("idempotent_replay") is None


class TestSurfaceParity:
    def test_ask_profile_and_metrics_work_through_the_retry_layer(
        self, served
    ):
        server, scenario = served
        with _client(server) as client:
            ask = client.ask(scenario.QUERY, fraction=0.0)
            assert ask["status"] == "satisfied"
            profile = client.profile(scenario.QUERY, fraction=0.0)
            assert "pcqe.execute" in profile["profile"]
            assert "server_requests" in client.metrics()
            assert client.refresh() >= 1
