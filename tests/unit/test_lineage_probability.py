"""Unit tests for exact probability, compilation and Monte-Carlo."""

import itertools
import random

import pytest

from repro.errors import LineageError
from repro.lineage import (
    BOTTOM,
    TOP,
    ConfidenceFunction,
    estimate_probability,
    lineage_and,
    lineage_not,
    lineage_or,
    probability,
    sensitivity,
    var,
)
from repro.lineage.probability import compile_probability
from repro.storage import TupleId

A, B, C, D = (TupleId("t", i) for i in range(4))


def brute_force(formula, probs):
    """Reference probability by full world enumeration."""
    variables = sorted(formula.variables)
    total = 0.0
    for bits in itertools.product([False, True], repeat=len(variables)):
        world = dict(zip(variables, bits))
        weight = 1.0
        for tid, bit in world.items():
            weight *= probs[tid] if bit else 1.0 - probs[tid]
        if formula.evaluate(world):
            total += weight
    return total


class TestExactProbability:
    def test_constants(self):
        assert probability(TOP, {}) == 1.0
        assert probability(BOTTOM, {}) == 0.0

    def test_single_var(self):
        assert probability(var(A), {A: 0.3}) == 0.3

    def test_negation(self):
        assert probability(lineage_not(var(A)), {A: 0.3}) == pytest.approx(0.7)

    def test_independent_and(self):
        formula = lineage_and(var(A), var(B))
        assert probability(formula, {A: 0.5, B: 0.4}) == pytest.approx(0.2)

    def test_independent_or(self):
        formula = lineage_or(var(A), var(B))
        assert probability(formula, {A: 0.3, B: 0.4}) == pytest.approx(
            0.3 + 0.4 - 0.12
        )

    def test_paper_running_example(self):
        formula = lineage_and(lineage_or(var(A), var(B)), var(C))
        probs = {A: 0.3, B: 0.4, C: 0.1}
        assert probability(formula, probs) == pytest.approx(0.058)

    def test_shared_variable_needs_shannon(self):
        # (A AND B) OR (A AND C) = A AND (B OR C)
        formula = lineage_or(
            lineage_and(var(A), var(B)), lineage_and(var(A), var(C))
        )
        probs = {A: 0.3, B: 0.4, C: 0.1}
        expected = 0.3 * (1 - 0.6 * 0.9)
        assert probability(formula, probs) == pytest.approx(expected)

    def test_matches_brute_force_on_entangled_formula(self):
        formula = lineage_or(
            lineage_and(var(A), var(B), var(C)),
            lineage_and(var(B), var(D)),
            lineage_and(lineage_not(var(A)), var(D)),
        )
        probs = {A: 0.2, B: 0.7, C: 0.5, D: 0.4}
        assert probability(formula, probs) == pytest.approx(
            brute_force(formula, probs)
        )

    def test_missing_probability_raises(self):
        with pytest.raises(LineageError):
            probability(var(A), {})

    def test_out_of_range_probability_raises(self):
        with pytest.raises(LineageError):
            probability(var(A), {A: 1.5})

    def test_result_clamped(self):
        # Many ORs of high probabilities must not exceed 1.0.
        formula = lineage_or(var(A), var(B), var(C), var(D))
        probs = {tid: 0.999 for tid in (A, B, C, D)}
        assert probability(formula, probs) <= 1.0


class TestCompiledProbability:
    def test_matches_interpreter(self):
        formula = lineage_or(
            lineage_and(var(A), var(B)),
            lineage_and(var(A), var(C)),
            var(D),
        )
        compiled = compile_probability(formula)
        rng = random.Random(5)
        for _ in range(25):
            probs = {tid: rng.random() for tid in (A, B, C, D)}
            assert compiled(probs) == pytest.approx(probability(formula, probs))

    def test_constants_compiled(self):
        assert compile_probability(TOP)({}) == 1.0
        assert compile_probability(BOTTOM)({}) == 0.0

    def test_missing_variable_raises(self):
        compiled = compile_probability(var(A))
        with pytest.raises(LineageError):
            compiled({})


class TestSensitivity:
    def test_linear_in_each_variable(self):
        formula = lineage_and(lineage_or(var(A), var(B)), var(C))
        probs = {A: 0.3, B: 0.4, C: 0.1}
        # dF/dC = P(A or B) = 0.58
        assert sensitivity(formula, probs, C) == pytest.approx(0.58)
        # dF/dA = (1 - p_B) * p_C = 0.6 * 0.1
        assert sensitivity(formula, probs, A) == pytest.approx(0.06)

    def test_absent_variable_zero(self):
        assert sensitivity(var(A), {A: 0.5}, B) == 0.0

    def test_finite_difference_agreement(self):
        formula = lineage_or(lineage_and(var(A), var(B)), var(C))
        probs = {A: 0.2, B: 0.6, C: 0.3}
        slope = sensitivity(formula, probs, A)
        eps = 1e-6
        bumped = dict(probs)
        bumped[A] += eps
        numeric = (probability(formula, bumped) - probability(formula, probs)) / eps
        assert slope == pytest.approx(numeric, rel=1e-4)


class TestConfidenceFunction:
    def test_evaluate_and_cache(self):
        formula = lineage_and(var(A), var(B))
        function = ConfidenceFunction(formula, "f")
        probs = {A: 0.5, B: 0.4, C: 0.9}  # extra variable ignored
        assert function.evaluate(probs) == pytest.approx(0.2)
        assert function.evaluate(probs) == pytest.approx(0.2)  # cached path

    def test_variables_sorted(self):
        formula = lineage_or(var(C), var(A))
        assert ConfidenceFunction(formula).variables == (A, C)

    def test_delta(self):
        formula = lineage_and(lineage_or(var(A), var(B)), var(C))
        function = ConfidenceFunction(formula)
        probs = {A: 0.3, B: 0.4, C: 0.1}
        assert function.delta(probs, B, 0.5) == pytest.approx(0.065 - 0.058)

    def test_delta_for_unrelated_tuple_is_zero(self):
        function = ConfidenceFunction(var(A))
        assert function.delta({A: 0.5}, B, 0.9) == 0.0

    def test_max_value(self):
        formula = lineage_and(var(A), var(B))
        function = ConfidenceFunction(formula)
        assert function.max_value({A: 0.1, B: 0.1}) == pytest.approx(1.0)
        ceilings = {A: 0.8, B: 0.5}
        assert function.max_value({A: 0.1, B: 0.1}, ceilings) == pytest.approx(0.4)

    def test_derivative(self):
        formula = lineage_and(var(A), var(B))
        function = ConfidenceFunction(formula)
        assert function.derivative({A: 0.3, B: 0.7}, A) == pytest.approx(0.7)


class TestMonteCarlo:
    def test_estimate_close_to_exact(self):
        formula = lineage_and(lineage_or(var(A), var(B)), var(C))
        probs = {A: 0.3, B: 0.4, C: 0.5}
        exact = probability(formula, probs)
        estimate = estimate_probability(
            formula, probs, samples=20_000, rng=random.Random(1)
        )
        low, high = estimate.confidence_interval()
        assert low <= exact <= high

    def test_deterministic_default_rng(self):
        formula = lineage_or(var(A), var(B))
        probs = {A: 0.3, B: 0.4}
        first = estimate_probability(formula, probs, samples=100)
        second = estimate_probability(formula, probs, samples=100)
        assert first.probability == second.probability

    def test_invalid_samples(self):
        with pytest.raises(LineageError):
            estimate_probability(var(A), {A: 0.5}, samples=0)

    def test_missing_probability(self):
        with pytest.raises(LineageError):
            estimate_probability(var(A), {}, samples=10)

    def test_standard_error_shrinks(self):
        formula = var(A)
        small = estimate_probability(formula, {A: 0.5}, samples=100)
        large = estimate_probability(formula, {A: 0.5}, samples=10_000)
        assert large.standard_error < small.standard_error
