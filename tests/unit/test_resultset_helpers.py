"""Unit tests for ResultSet convenience helpers (top-k, table rendering)."""

import pytest

from repro.sql import run_sql
from repro.storage import Database, REAL, Schema, TEXT


@pytest.fixture
def db() -> Database:
    database = Database()
    table = database.create_table("t", Schema.of(("k", TEXT), ("v", REAL)))
    for key, value, confidence in [
        ("a", 1.0, 0.9),
        ("b", 2.0, 0.3),
        ("c", None, 0.6),
        ("d", 4.0, 0.1),
    ]:
        table.insert([key, value], confidence=confidence)
    return database


class TestTopK:
    def test_orders_by_confidence_desc(self, db):
        result = run_sql(db, "SELECT k FROM t")
        top = result.top_k_by_confidence(db, 2)
        assert [row.values[0] for row, _ in top] == ["a", "c"]
        assert [round(c, 1) for _, c in top] == [0.9, 0.6]

    def test_k_larger_than_result(self, db):
        result = run_sql(db, "SELECT k FROM t")
        assert len(result.top_k_by_confidence(db, 99)) == 4

    def test_k_zero_or_negative(self, db):
        result = run_sql(db, "SELECT k FROM t")
        assert result.top_k_by_confidence(db, 0) == []
        assert result.top_k_by_confidence(db, -3) == []


class TestToTable:
    def test_renders_headers_and_nulls(self, db):
        result = run_sql(db, "SELECT k, v FROM t ORDER BY k")
        text = result.to_table()
        lines = text.splitlines()
        assert lines[0].split() == ["k", "v"]
        assert "NULL" in text

    def test_confidence_column_when_source_given(self, db):
        result = run_sql(db, "SELECT k FROM t ORDER BY k")
        text = result.to_table(db)
        assert "confidence" in text.splitlines()[0]
        assert "0.900" in text

    def test_truncation(self, db):
        for index in range(100):
            db.table("t").insert([f"x{index}", float(index)])
        result = run_sql(db, "SELECT k FROM t")
        text = result.to_table(max_rows=5)
        assert "rows total" in text
        assert len(text.splitlines()) == 8  # header + rule + 5 rows + marker

    def test_empty_result(self, db):
        result = run_sql(db, "SELECT k FROM t WHERE v > 99")
        text = result.to_table(db)
        assert text.splitlines()[0].startswith("k")
        assert len(text.splitlines()) == 2
