"""Unit tests for Database.clone (what-if analysis support)."""

import pytest

from repro.cost import LinearCost
from repro.sql import execute_sql, run_sql
from repro.storage import Database, REAL, Schema, TEXT


@pytest.fixture
def db() -> Database:
    database = Database("orig")
    table = database.create_table(
        "t", Schema.of(("k", TEXT), ("v", REAL))
    )
    table.create_index("k")
    first = table.insert(["a", 1.0], confidence=0.3, cost_model=LinearCost(10.0))
    table.insert(["b", 2.0], confidence=0.5)
    table.delete(first)  # leave an ordinal gap
    table.insert(["c", 3.0], confidence=0.7)
    database.create_view("view_t", "SELECT k FROM t WHERE v > 1.5")
    return database


class TestClone:
    def test_values_and_annotations_copied(self, db):
        copy = db.clone()
        original = {row.tid: row for row in db.table("t").scan()}
        cloned = {row.tid: row for row in copy.table("t").scan()}
        assert set(original) == set(cloned)  # tuple ids preserved
        for tid, row in original.items():
            assert cloned[tid].values == row.values
            assert cloned[tid].confidence == row.confidence
            assert cloned[tid].cost_model is row.cost_model

    def test_ordinal_gaps_preserved(self, db):
        copy = db.clone()
        new_tid = copy.table("t").insert(["d", 4.0])
        # Next ordinal continues after the original's counter (no reuse of
        # the deleted slot, no collision with existing tuples).
        assert new_tid.ordinal == 3

    def test_mutating_clone_leaves_original_alone(self, db):
        copy = db.clone()
        tid = next(iter(copy.table("t").scan())).tid
        copy.set_confidence(tid, 0.99)
        execute_sql(copy, "INSERT INTO t VALUES ('z', 9.0)")
        assert db.confidence_of(tid) != 0.99
        assert len(db.table("t")) == 2
        assert len(copy.table("t")) == 3

    def test_indexes_work_on_clone(self, db):
        copy = db.clone()
        matches = copy.table("t").lookup("k", "b")
        assert len(matches) == 1
        assert copy.table("t").index_on("k") is not None

    def test_views_copied(self, db):
        copy = db.clone()
        assert run_sql(copy, "SELECT k FROM view_t").values() == run_sql(
            db, "SELECT k FROM view_t"
        ).values()

    def test_clone_name(self, db):
        assert db.clone().name == "orig-clone"
        assert db.clone("scenario-b").name == "scenario-b"

    def test_what_if_improvement_preview(self, db):
        """The motivating use: apply a plan to a clone, compare outcomes."""
        from repro.increment import (
            IncrementProblem,
            SimulatedImprovementService,
            solve_greedy,
        )

        result = run_sql(db, "SELECT k FROM t")
        problem = IncrementProblem.from_results(
            [row.lineage for row in result.rows],
            db,
            threshold=0.6,
            required_count=2,
        )
        plan = solve_greedy(problem)
        preview = db.clone()
        SimulatedImprovementService().apply(preview, plan)
        improved = sum(
            1 for c in run_sql(preview, "SELECT k FROM t").confidences(preview)
            if c >= 0.6
        )
        assert improved >= 2
        # The original database is untouched.
        assert sorted(run_sql(db, "SELECT k FROM t").confidences(db)) == [
            0.5,
            0.7,
        ]
