"""Unit tests for the durability layer: checksums, atomic writes, retry,
the WAL file format, snapshots, and the manager's journaling."""

from __future__ import annotations

import json
import os

import pytest

from repro.cost import FreeCost, LinearCost, TabulatedCost
from repro.errors import (
    CorruptLogError,
    CorruptSnapshotError,
    DurabilityError,
    StorageError,
)
from repro.storage import Database
from repro.storage.durability import (
    RetryPolicy,
    WAL_MAGIC,
    WriteAheadLog,
    atomic_text_writer,
    atomic_write_bytes,
    atomic_write_text,
    crc32c,
    decode_cost_model,
    decode_op,
    encode_cost_model,
    encode_op,
    load_snapshot,
    recover,
    scan_wal,
    write_snapshot,
)
from repro.storage.durability.wal import truncate_torn_tail
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType


def _schema(*names: str) -> Schema:
    return Schema([Column(name, DataType.INTEGER) for name in names])


# -- crc32c ----------------------------------------------------------------


def test_crc32c_known_vectors():
    # The canonical CRC-32C (Castagnoli) check value.
    assert crc32c(b"123456789") == 0xE3069283
    assert crc32c(b"") == 0
    # 32 zero bytes, per RFC 3720 appendix B.4.
    assert crc32c(bytes(32)) == 0x8A9136AA


def test_crc32c_is_incremental():
    whole = crc32c(b"hello world")
    assert crc32c(b" world", crc32c(b"hello")) == whole


# -- atomic writes ---------------------------------------------------------


def test_atomic_write_bytes_replaces_and_survives(tmp_path):
    target = tmp_path / "data.bin"
    atomic_write_bytes(target, b"one")
    atomic_write_bytes(target, b"two")
    assert target.read_bytes() == b"two"
    assert list(tmp_path.iterdir()) == [target]  # no stray temp files


def test_atomic_write_text(tmp_path):
    target = tmp_path / "data.txt"
    atomic_write_text(target, "héllo")
    assert target.read_text(encoding="utf-8") == "héllo"


def test_atomic_text_writer_discards_on_error(tmp_path):
    target = tmp_path / "data.txt"
    target.write_text("previous")
    with pytest.raises(RuntimeError):
        with atomic_text_writer(target) as handle:
            handle.write("partial")
            raise RuntimeError("boom")
    assert target.read_text() == "previous"
    assert list(tmp_path.iterdir()) == [target]


# -- retry policy ----------------------------------------------------------


def test_retry_policy_retries_transient_oserror():
    sleeps: list[float] = []
    attempts = {"n": 0}

    def flaky() -> str:
        attempts["n"] += 1
        if attempts["n"] < 3:
            raise OSError("transient")
        return "ok"

    policy = RetryPolicy(
        attempts=3, base_delay=0.01, jitter=0.0, sleep=sleeps.append
    )
    assert policy.call(flaky) == "ok"
    assert attempts["n"] == 3
    assert sleeps == [0.01, 0.02]  # capped exponential backoff


def test_retry_policy_reraises_after_last_attempt():
    policy = RetryPolicy(attempts=2, base_delay=0.0, sleep=lambda _s: None)
    with pytest.raises(OSError):
        policy.call(lambda: (_ for _ in ()).throw(OSError("persistent")))


def test_retry_policy_does_not_catch_other_errors():
    policy = RetryPolicy(attempts=3, base_delay=0.0, sleep=lambda _s: None)
    calls = {"n": 0}

    def bad() -> None:
        calls["n"] += 1
        raise ValueError("not io")

    with pytest.raises(ValueError):
        policy.call(bad)
    assert calls["n"] == 1


def test_retry_policy_jitter_is_seeded():
    def delays(seed: int) -> list[float]:
        sleeps: list[float] = []
        state = {"n": 0}

        def flaky() -> None:
            state["n"] += 1
            if state["n"] < 4:
                raise OSError("x")

        RetryPolicy(
            attempts=4, base_delay=0.01, jitter=0.5, seed=seed,
            sleep=sleeps.append,
        ).call(flaky)
        return sleeps

    assert delays(7) == delays(7)
    assert delays(7) != delays(8)


# -- WAL -------------------------------------------------------------------


def test_wal_append_and_scan_roundtrip(tmp_path):
    path = str(tmp_path / "wal.log")
    log = WriteAheadLog(path)
    payloads = [b"alpha", b"", b"x" * 1000]
    for payload in payloads:
        log.append(payload)
    log.close()
    assert scan_wal(path).payloads == payloads


def test_wal_scan_truncates_torn_tail_only(tmp_path):
    path = str(tmp_path / "wal.log")
    log = WriteAheadLog(path)
    log.append(b"first")
    log.append(b"second")
    log.close()
    # Tear the last record: drop its final 3 bytes.
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size - 3)
    scan = scan_wal(path)
    assert scan.payloads == [b"first"]
    assert scan.torn_bytes > 0
    removed = truncate_torn_tail(path, scan)
    assert removed == scan.torn_bytes
    # Idempotent: a rescan finds an intact log.
    rescan = scan_wal(path)
    assert rescan.payloads == [b"first"]
    assert rescan.torn_bytes == 0


def test_wal_scan_raises_on_mid_log_corruption(tmp_path):
    path = str(tmp_path / "wal.log")
    log = WriteAheadLog(path)
    log.append(b"first-record-payload")
    log.append(b"second")
    log.close()
    data = bytearray(open(path, "rb").read())
    # Flip one bit inside the *first* record's payload: a complete record
    # with a bad checksum is corruption, never a torn write.
    data[len(WAL_MAGIC) + 12 + 2] ^= 0x04
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    with pytest.raises(CorruptLogError):
        scan_wal(path)


def test_wal_scan_rejects_foreign_file(tmp_path):
    path = tmp_path / "wal.log"
    path.write_bytes(b"NOTAWAL0" + b"junk")
    with pytest.raises(CorruptLogError):
        scan_wal(str(path))


def test_wal_scan_accepts_torn_magic(tmp_path):
    # A crash during the very first header write leaves a magic prefix.
    path = tmp_path / "wal.log"
    path.write_bytes(WAL_MAGIC[:3])
    scan = scan_wal(str(path))
    assert scan.payloads == []
    assert scan.torn_bytes == 3


def test_wal_rotate_resets_log(tmp_path):
    path = str(tmp_path / "wal.log")
    log = WriteAheadLog(path)
    log.append(b"old")
    log.rotate()
    log.append(b"new")
    log.close()
    assert scan_wal(path).payloads == [b"new"]


def test_wal_append_retries_without_duplicating_records(tmp_path):
    path = str(tmp_path / "wal.log")
    log = WriteAheadLog(
        path,
        retry=RetryPolicy(attempts=3, base_delay=0.0, sleep=lambda _s: None),
    )
    real_write = log._file.write
    state = {"failed": False}

    def flaky_write(data: bytes) -> None:
        if not state["failed"] and data != WAL_MAGIC:
            state["failed"] = True
            real_write(data[:5])  # a partial first attempt lands
            raise OSError("transient")
        real_write(data)

    log._file.write = flaky_write  # type: ignore[method-assign]
    log.append(b"payload-after-retry")
    log.close()
    assert scan_wal(path).payloads == [b"payload-after-retry"]


# -- cost-model / op codec -------------------------------------------------


def test_cost_model_codec_roundtrip_all_families():
    models = [
        FreeCost(),
        FreeCost(max_confidence=0.8),
        LinearCost(2.5),
        LinearCost(1.0, max_confidence=0.9),
        TabulatedCost([(0.1, 1.0), (0.5, 3.0)], max_confidence=0.5),
    ]
    for model in models:
        decoded = decode_cost_model(encode_cost_model(model))
        assert type(decoded) is type(model)
        assert decoded.max_confidence == model.max_confidence
    assert encode_cost_model(FreeCost()) is None  # the compact default


def test_cost_model_codec_rejects_unknown():
    class Custom(FreeCost):
        pass

    with pytest.raises(DurabilityError):
        encode_cost_model(Custom())
    with pytest.raises(DurabilityError):
        decode_cost_model({"kind": "mystery"})


def test_op_codec_validates_kind():
    with pytest.raises(DurabilityError):
        encode_op({"op": "nonsense"})
    with pytest.raises(DurabilityError):
        decode_op({"op": "nonsense"})
    with pytest.raises(DurabilityError):
        decode_op({"op": "batch", "ops": "not-a-list"})


def test_op_codec_makes_ops_jsonable():
    encoded = encode_op(
        {
            "op": "insert",
            "table": "t",
            "ordinal": 0,
            "values": (1, "x", None),
            "confidence": 0.5,
            "cost_model": LinearCost(2.0),
        }
    )
    json.dumps(encoded)  # must not raise
    assert encoded["values"] == [1, "x", None]
    assert encoded["cost_model"]["kind"] == "linear"


# -- snapshots -------------------------------------------------------------


def _sample_db() -> Database:
    db = Database("snaptest")
    table = db.create_table(
        "t",
        Schema(
            [
                Column("a", DataType.INTEGER),
                Column("b", DataType.TEXT, nullable=True),
            ]
        ),
    )
    table.insert([1, "x"], confidence=0.25, cost_model=LinearCost(3.0))
    table.insert([2, None], confidence=1.0)
    tid = table.insert([3, "z"])
    table.delete(tid)  # leaves an ordinal gap the snapshot must keep
    table.create_index("a")
    db.create_view("v", "SELECT a FROM t")
    return db


def test_snapshot_roundtrip_preserves_everything(tmp_path):
    db = _sample_db()
    path = str(tmp_path / "snapshot.snap")
    write_snapshot(db, path, wal_seq=42)
    restored, wal_seq = load_snapshot(path)
    assert wal_seq == 42
    table = restored.table("t")
    assert table.rows() == [(1, "x"), (2, None)]
    assert table.get(next(iter(table.scan())).tid).confidence == 0.25
    assert table._next_ordinal == 3  # the deleted ordinal is not reused
    assert table.index_on("a") is not None
    assert restored.view_definition("v") == "SELECT a FROM t"
    model = next(iter(table.scan())).cost_model
    assert isinstance(model, LinearCost) and model.rate == 3.0


def test_snapshot_detects_bitflip(tmp_path):
    db = _sample_db()
    path = str(tmp_path / "snapshot.snap")
    write_snapshot(db, path, wal_seq=1)
    data = bytearray(open(path, "rb").read())
    data[len(data) // 2] ^= 0x10
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    with pytest.raises(CorruptSnapshotError):
        load_snapshot(path)


def test_snapshot_detects_truncation(tmp_path):
    db = _sample_db()
    path = str(tmp_path / "snapshot.snap")
    write_snapshot(db, path, wal_seq=1)
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size - 10)
    with pytest.raises(CorruptSnapshotError):
        load_snapshot(path)


def test_snapshot_rejects_empty_file(tmp_path):
    # The state a lost-fsync + rename leaves behind.
    path = tmp_path / "snapshot.snap"
    path.write_bytes(b"")
    with pytest.raises(CorruptSnapshotError):
        load_snapshot(str(path))


# -- Database.open / manager ----------------------------------------------


def test_database_open_journal_and_reopen(tmp_path):
    data_dir = str(tmp_path / "state")
    db = Database.open(data_dir)
    assert db.is_durable
    table = db.create_table("t", _schema("a"))
    table.insert([1], confidence=0.5)
    table.insert([2])
    db.close()
    assert not db.is_durable  # close detaches the manager

    db2 = Database.open(data_dir)
    assert db2.table("t").rows() == [(1,), (2,)]
    assert next(iter(db2.table("t").scan())).confidence == 0.5
    db2.close()


def test_database_checkpoint_compacts_wal(tmp_path):
    data_dir = str(tmp_path / "state")
    db = Database.open(data_dir)
    table = db.create_table("t", _schema("a"))
    for value in range(20):
        table.insert([value])
    before = db._durability.wal_size_bytes
    db.checkpoint()
    after = db._durability.wal_size_bytes
    assert after == len(WAL_MAGIC) < before
    table.insert([99])
    db.close()

    db2, report = recover(data_dir)
    assert report.snapshot_loaded
    assert report.records_replayed == 1  # only the post-checkpoint insert
    assert len(db2.table("t")) == 21


def test_database_open_batches_are_single_records(tmp_path):
    data_dir = str(tmp_path / "state")
    db = Database.open(data_dir)
    table = db.create_table("t", _schema("a"))
    with db.durability_batch():
        table.insert([1])
        table.insert([2])
        table.insert([3])
    db.close()
    payloads = scan_wal(os.path.join(data_dir, "wal.log")).payloads
    records = [json.loads(p) for p in payloads]
    kinds = [record["op"] for record in records]
    assert kinds == ["create_table", "batch"]
    assert [sub["op"] for sub in records[1]["ops"]] == ["insert"] * 3


def test_apply_confidences_is_one_record(tmp_path):
    data_dir = str(tmp_path / "state")
    db = Database.open(data_dir)
    table = db.create_table("t", _schema("a"))
    tids = [table.insert([value], confidence=0.1) for value in range(3)]
    db.apply_confidences({tid: 0.9 for tid in tids})
    db.close()
    payloads = scan_wal(os.path.join(data_dir, "wal.log")).payloads
    records = [json.loads(p) for p in payloads]
    confidence_records = [r for r in records if r["op"] == "confidences"]
    assert len(confidence_records) == 1
    assert len(confidence_records[0]["updates"]) == 3

    db2, _report = recover(data_dir)
    assert all(row.confidence == 0.9 for row in db2.table("t").scan())


def test_recover_rejects_unknown_table_reference(tmp_path):
    data_dir = str(tmp_path / "state")
    db = Database.open(data_dir)
    db.create_table("t", _schema("a")).insert([1])
    db.close()
    # Forge a record against a table the log never created.
    log = WriteAheadLog(os.path.join(data_dir, "wal.log"))
    log.append(
        json.dumps(
            {"op": "delete", "table": "ghost", "ordinal": 0, "seq": 99}
        ).encode()
    )
    log.close()
    with pytest.raises(CorruptLogError):
        recover(data_dir)


def test_recover_empty_directory_is_first_boot(tmp_path):
    db, report = recover(str(tmp_path / "fresh"))
    assert list(db.tables()) == []
    assert not report.snapshot_loaded
    assert report.records_replayed == 0
    assert "snapshot: none" in report.format()


def test_in_memory_database_durability_is_noop():
    db = Database("mem")
    assert not db.is_durable
    assert db.checkpoint() == 0
    db.close()
    with db.durability_batch():
        db.create_table("t", _schema("a")).insert([1])
    assert db.table("t").rows() == [(1,)]


def test_clone_of_durable_database_is_not_journaled(tmp_path):
    data_dir = str(tmp_path / "state")
    db = Database.open(data_dir)
    db.create_table("t", _schema("a")).insert([1])
    clone = db.clone()
    clone.table("t").insert([2])  # must not reach the WAL
    db.close()
    db2, _report = recover(data_dir)
    assert db2.table("t").rows() == [(1,)]


# -- WAL concurrency -------------------------------------------------------


def test_concurrent_appends_do_not_interleave_frames(tmp_path):
    import threading

    path = str(tmp_path / "wal.log")
    log = WriteAheadLog(path, sync=False)
    threads, per_thread = 8, 50
    barrier = threading.Barrier(threads)
    errors: list[BaseException] = []

    def appender(worker: int) -> None:
        barrier.wait()
        try:
            for i in range(per_thread):
                log.append(f"w{worker}:{i}".encode() * 20)
        except BaseException as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    workers = [
        threading.Thread(target=appender, args=(w,)) for w in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    log.close()
    assert not errors
    scan = scan_wal(path)  # raises CorruptLogError on interleaved frames
    assert scan.torn_bytes == 0
    expected = {
        f"w{w}:{i}".encode() * 20 for w in range(threads) for i in range(per_thread)
    }
    assert set(scan.payloads) == expected
    assert len(scan.payloads) == threads * per_thread


def test_reentrant_append_raises_instead_of_deadlocking(tmp_path):
    path = str(tmp_path / "wal.log")
    log = WriteAheadLog(path, sync=False)
    log.append(b"warmup")
    failures: list[DurabilityError] = []

    class _JournalingFile:
        """Wraps the WAL's file; its write() journals — the forbidden cycle."""

        def __init__(self, inner):
            self._inner = inner
            self.armed = False

        def write(self, data):
            if self.armed:
                self.armed = False
                with pytest.raises(DurabilityError) as info:
                    log.append(b"from-inside-a-write")
                failures.append(info.value)
            return self._inner.write(data)

        def __getattr__(self, name):
            return getattr(self._inner, name)

    hooked = _JournalingFile(log._file)
    log._file = hooked
    hooked.armed = True
    log.append(b"outer")
    assert len(failures) == 1
    assert "re-entrant" in str(failures[0])
    log.close()
    scan = scan_wal(path)
    assert scan.payloads == [b"warmup", b"outer"]
