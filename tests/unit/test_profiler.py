"""Unit tests for the sampling profiler (repro.obs.profiler)."""

import time
from collections import Counter

import pytest

from repro.obs import SamplingProfiler, StackProfile
from repro.obs.profile import ProfileReport
from repro.obs.profiler import stage_of_module


def spin(deadline: float) -> int:
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestSamplingProfiler:
    def test_samples_a_busy_calling_thread(self):
        with SamplingProfiler(hz=400) as profiler:
            spin(time.perf_counter() + 0.25)
        profile = profiler.profile
        assert profile is not None
        assert profile.total_samples > 0
        assert profile.wall_seconds >= 0.2
        # The busy loop dominates; its frame must appear somewhere.
        frames = {frame for stack in profile.samples for frame in stack}
        assert any(frame.endswith(":spin") for frame in frames)

    def test_collapsed_lines_are_flamegraph_format(self):
        with SamplingProfiler(hz=400) as profiler:
            spin(time.perf_counter() + 0.1)
        for line in profiler.profile.collapsed():
            stacks, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert all(":" in frame for frame in stacks.split(";"))

    def test_by_function_self_and_total(self):
        profile = StackProfile(
            Counter(
                {
                    ("m:outer", "m:inner"): 3,
                    ("m:outer",): 1,
                }
            ),
            hz=99.0,
            wall_seconds=1.0,
        )
        rows = {frame: (own, total) for frame, own, total in profile.by_function()}
        assert rows["m:inner"] == (3, 3)
        assert rows["m:outer"] == (1, 4)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)

    def test_double_start_and_unstarted_stop_raise(self):
        profiler = SamplingProfiler(hz=50)
        with pytest.raises(RuntimeError):
            profiler.stop()
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()

    def test_format_mentions_stages_and_frames(self):
        with SamplingProfiler(hz=400) as profiler:
            spin(time.perf_counter() + 0.1)
        text = profiler.profile.format()
        assert "sampling profile:" in text
        assert "hottest frames" in text


class TestStageAttribution:
    def test_module_prefixes_map_to_stages(self):
        assert stage_of_module("repro.sql.parser") == "query_evaluation"
        assert stage_of_module("repro.lineage") == "confidence"
        assert stage_of_module("repro.policy.store") == "policy_enforcement"
        assert stage_of_module("repro.increment.greedy") == "strategy_finding"
        assert stage_of_module("repro.storage.table") == "storage"
        assert stage_of_module("numpy.core") == "other"
        # A prefix must match on a module boundary, not mid-name.
        assert stage_of_module("repro.sqlish") == "other"

    def test_by_stage_uses_the_innermost_frame(self):
        profile = StackProfile(
            Counter(
                {
                    ("repro.core:execute", "repro.increment.greedy:solve"): 5,
                    ("repro.core:execute", "repro.sql.executor:scan"): 2,
                }
            ),
            hz=99.0,
            wall_seconds=1.0,
        )
        assert profile.by_stage() == {
            "strategy_finding": 5,
            "query_evaluation": 2,
        }

    def test_reconcile_lines_up_spans_and_samples(self):
        profile = StackProfile(
            Counter({("repro.increment.greedy:solve",): 8}),
            hz=99.0,
            wall_seconds=1.0,
        )
        report = ProfileReport(
            root="pcqe.ask",
            total_seconds=2.0,
            stages={"pcqe.strategy_finding": 1.5, "pcqe.query_evaluation": 0.5},
        )
        rows = {row["span"]: row for row in profile.reconcile(report)}
        finding = rows["pcqe.strategy_finding"]
        assert finding["stage"] == "strategy_finding"
        assert finding["span_share"] == pytest.approx(0.75)
        assert finding["sample_share"] == pytest.approx(1.0)
        assert rows["pcqe.query_evaluation"]["sample_share"] == 0.0
