"""Unit tests for SQL DML/DDL: CREATE/DROP TABLE, INSERT, UPDATE, DELETE."""

import pytest

from repro.errors import (
    SchemaError,
    SqlError,
    SqlSyntaxError,
    UnknownTableError,
)
from repro.sql import DmlResult, execute_sql, parse_command
from repro.sql.ast import (
    CreateTableStatement,
    DeleteStatement,
    InsertStatement,
    UpdateStatement,
)
from repro.storage import Database


@pytest.fixture
def db() -> Database:
    database = Database()
    execute_sql(
        database,
        "CREATE TABLE items (name TEXT NOT NULL, qty INT, price REAL)",
    )
    execute_sql(
        database,
        "INSERT INTO items VALUES ('apple', 5, 1.5), ('pear', 2, 2.0) "
        "WITH CONFIDENCE 0.5",
    )
    return database


class TestParseCommand:
    def test_create_parses(self):
        command = parse_command("CREATE TABLE t (a TEXT, b INT NOT NULL)")
        assert isinstance(command, CreateTableStatement)
        assert command.columns[1].nullable is False

    def test_insert_parses(self):
        command = parse_command(
            "INSERT INTO t (a, b) VALUES (1, 2), (3, 4) WITH CONFIDENCE 0.3"
        )
        assert isinstance(command, InsertStatement)
        assert command.columns == ["a", "b"]
        assert len(command.rows) == 2
        assert command.confidence is not None

    def test_update_parses(self):
        command = parse_command("UPDATE t SET a = 1, b = b + 1 WHERE a > 0")
        assert isinstance(command, UpdateStatement)
        assert len(command.assignments) == 2

    def test_delete_parses(self):
        command = parse_command("DELETE FROM t WHERE a = 1")
        assert isinstance(command, DeleteStatement)

    def test_select_still_parses(self):
        from repro.sql.ast import SelectStatement

        assert isinstance(parse_command("SELECT a FROM t"), SelectStatement)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_command("DELETE FROM t WHERE a = 1 nonsense")

    def test_missing_values_keyword(self):
        with pytest.raises(SqlSyntaxError):
            parse_command("INSERT INTO t (1, 2)")


class TestCreateDrop:
    def test_create_types_and_not_null(self, db):
        table = db.table("items")
        assert table.schema.types[0].value == "TEXT"
        assert not table.schema[0].nullable
        with pytest.raises(SchemaError):
            execute_sql(db, "INSERT INTO items VALUES (NULL, 1, 1.0)")

    def test_unknown_type_rejected(self, db):
        with pytest.raises(SqlError):
            execute_sql(db, "CREATE TABLE bad (x QUATERNION)")

    def test_type_synonyms(self, db):
        execute_sql(
            db,
            "CREATE TABLE syn (a STRING, b INTEGER, c DOUBLE, d BOOLEAN)",
        )
        assert [t.value for t in db.table("syn").schema.types] == [
            "TEXT",
            "INTEGER",
            "REAL",
            "BOOLEAN",
        ]

    def test_drop(self, db):
        execute_sql(db, "DROP TABLE items")
        with pytest.raises(UnknownTableError):
            db.table("items")


class TestInsert:
    def test_values_and_confidence(self, db):
        rows = list(db.table("items").scan())
        assert rows[0].values == ("apple", 5, 1.5)
        assert rows[0].confidence == 0.5

    def test_default_confidence_is_one(self, db):
        result = execute_sql(db, "INSERT INTO items VALUES ('fig', 1, 0.5)")
        assert isinstance(result, DmlResult)
        assert db.resolve(result.tuple_ids[0]).confidence == 1.0

    def test_partial_column_list_pads_nulls(self, db):
        result = execute_sql(db, "INSERT INTO items (name) VALUES ('kiwi')")
        stored = db.resolve(result.tuple_ids[0])
        assert stored.values == ("kiwi", None, None)

    def test_constant_expressions_allowed(self, db):
        result = execute_sql(
            db, "INSERT INTO items VALUES ('melon', 2 + 3, 1.5 * 2)"
        )
        assert db.resolve(result.tuple_ids[0]).values == ("melon", 5, 3.0)

    def test_column_reference_rejected(self, db):
        from repro.errors import BindError

        with pytest.raises(BindError):
            execute_sql(db, "INSERT INTO items VALUES (name, 1, 1.0)")

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(SqlError):
            execute_sql(db, "INSERT INTO items (name, qty) VALUES ('x')")

    def test_duplicate_column_rejected(self, db):
        with pytest.raises(SqlError):
            execute_sql(db, "INSERT INTO items (name, name) VALUES ('x', 'y')")

    def test_confidence_out_of_range(self, db):
        with pytest.raises(SqlError):
            execute_sql(
                db, "INSERT INTO items VALUES ('x', 1, 1.0) WITH CONFIDENCE 1.5"
            )


class TestUpdate:
    def test_update_values(self, db):
        result = execute_sql(
            db, "UPDATE items SET qty = qty * 2 WHERE name = 'apple'"
        )
        assert result.rows_affected == 1
        values = execute_sql(
            db, "SELECT qty FROM items WHERE name = 'apple'"
        ).values()
        assert values == [(10,)]

    def test_update_all_rows(self, db):
        result = execute_sql(db, "UPDATE items SET price = 0.0")
        assert result.rows_affected == 2

    def test_update_confidence(self, db):
        execute_sql(
            db,
            "UPDATE items SET qty = 9 WHERE name = 'pear' WITH CONFIDENCE 0.9",
        )
        pear = db.table("items").lookup("name", "pear")[0]
        assert pear.confidence == 0.9
        apple = db.table("items").lookup("name", "apple")[0]
        assert apple.confidence == 0.5  # untouched

    def test_update_keeps_tuple_identity(self, db):
        before = [row.tid for row in db.table("items").scan()]
        execute_sql(db, "UPDATE items SET qty = 0")
        after = [row.tid for row in db.table("items").scan()]
        assert before == after

    def test_update_maintains_index(self, db):
        db.table("items").create_index("name")
        execute_sql(db, "UPDATE items SET name = 'renamed' WHERE qty = 5")
        assert len(db.table("items").lookup("name", "renamed")) == 1
        assert db.table("items").lookup("name", "apple") == []

    def test_double_assignment_rejected(self, db):
        with pytest.raises(SqlError):
            execute_sql(db, "UPDATE items SET qty = 1, qty = 2")

    def test_where_must_be_boolean(self, db):
        with pytest.raises(SqlError):
            execute_sql(db, "UPDATE items SET qty = 1 WHERE qty + 1")


class TestDelete:
    def test_delete_where(self, db):
        result = execute_sql(db, "DELETE FROM items WHERE qty < 3")
        assert result.rows_affected == 1
        remaining = execute_sql(db, "SELECT name FROM items").values()
        assert remaining == [("apple",)]

    def test_delete_all(self, db):
        result = execute_sql(db, "DELETE FROM items")
        assert result.rows_affected == 2
        assert len(db.table("items")) == 0

    def test_delete_null_predicate_keeps_row(self, db):
        execute_sql(db, "INSERT INTO items (name) VALUES ('nullqty')")
        execute_sql(db, "DELETE FROM items WHERE qty < 100")
        names = {row.values[0] for row in db.table("items").scan()}
        assert names == {"nullqty"}  # NULL comparison is not TRUE


class TestCliIntegration:
    def test_shell_runs_dml(self):
        from repro.cli import CommandShell

        shell = CommandShell()
        shell.execute_line("sql CREATE TABLE t (a TEXT)")
        output = shell.execute_line(
            "sql INSERT INTO t VALUES ('x') WITH CONFIDENCE 0.3"
        )
        assert "INSERT: 1 row(s)" in output
        listing = shell.execute_line("sql SELECT a FROM t")
        assert "x | 0.300" in listing
