"""Session semantics: pinning, policy context, read-your-own-writes."""

from __future__ import annotations

import pytest

from repro.errors import SessionClosedError, UnknownUserError
from repro.server import MVCCDatabase, Session
from repro.sql import DmlResult
from repro.workload import venture_capital_database


@pytest.fixture()
def serving():
    scenario = venture_capital_database()
    return MVCCDatabase(scenario.db), scenario


def _session(serving, user="bob", purpose="investment") -> Session:
    mvcc, _scenario = serving
    return Session(mvcc, serving[1].policies, user, purpose)


class TestSessionLifecycle:
    def test_session_resolves_policy_context(self, serving):
        with _session(serving) as session:
            assert session.context.user == "bob"
            assert session.context.purpose == "investment"
            assert session.context.role == "Manager"

    def test_unknown_user_is_rejected_at_session_start(self, serving):
        with pytest.raises(UnknownUserError):
            _session(serving, user="mallory")

    def test_closed_session_raises_on_use(self, serving):
        session = _session(serving)
        session.close()
        with pytest.raises(SessionClosedError):
            session.run_sql("SELECT * FROM Proposal")
        session.close()  # idempotent

    def test_session_close_releases_the_pin(self, serving):
        mvcc, _ = serving
        session = _session(serving)
        pinned = session.seq
        mvcc.commit(lambda db: db.table("Proposal").insert(["X", "P", 1.0]))
        assert set(mvcc.generation_seqs()) == {pinned, mvcc.current_seq}
        session.close()
        assert mvcc.generation_seqs() == [mvcc.current_seq]


class TestSessionReads:
    def test_select_reads_the_pinned_snapshot(self, serving):
        mvcc, _ = serving
        with _session(serving) as session:
            before = session.run_sql("SELECT * FROM Proposal")
            mvcc.commit(
                lambda db: db.table("Proposal").insert(["NewCo", "P9", 5.0])
            )
            again = session.run_sql("SELECT * FROM Proposal")
            assert len(again) == len(before)  # still the pinned generation
            session.refresh()
            assert len(session.run_sql("SELECT * FROM Proposal")) == len(before) + 1

    def test_ask_runs_the_full_pipeline_on_the_snapshot(self, serving):
        _, scenario = serving
        with _session(serving) as session:
            result = session.ask(scenario.QUERY, required_fraction=0.0)
            assert result.status.value == "satisfied"
            assert result.threshold == pytest.approx(0.06)

    def test_ask_is_deterministic_while_writers_commit(self, serving):
        mvcc, scenario = serving
        with _session(serving) as session:
            first = session.ask(scenario.QUERY, required_fraction=0.0)
            mvcc.commit(
                lambda db: db.table("Proposal").insert(["NewCo", "P9", 0.5])
            )
            second = session.ask(scenario.QUERY, required_fraction=0.0)
            assert [r.values for r, _c in first.released] == [
                r.values for r, _c in second.released
            ]
            assert [c for _r, c in first.released] == [
                c for _r, c in second.released
            ]


class TestSessionWrites:
    def test_dml_commits_and_advances_the_pin(self, serving):
        mvcc, _ = serving
        with _session(serving) as session:
            before_seq = session.seq
            result = session.run_sql(
                "INSERT INTO Proposal VALUES ('NewCo', 'P9', 5.0)"
            )
            assert isinstance(result, DmlResult)
            assert session.seq > before_seq  # read-your-own-writes
            rows = session.run_sql(
                "SELECT * FROM Proposal WHERE Company = 'NewCo'"
            )
            assert len(rows) == 1
            # ...and the commit is visible to fresh snapshots of everyone.
            fresh = mvcc.snapshot()
            assert any(
                row.values[0] == "NewCo" for row in fresh.db.table("Proposal").scan()
            )
            fresh.release()

    def test_improvement_writeback_lands_and_repins(self, serving):
        mvcc, scenario = serving
        observer = Session(mvcc, scenario.policies, "alice", "investment")
        with _session(serving) as session:
            pinned = session.seq
            result = session.ask(scenario.QUERY, required_fraction=1.0)
            assert result.status.value == "improved"
            assert session.seq > pinned  # the write-back re-pinned us
        # The observer's older pin never moved...
        assert observer.seq == pinned
        # ...but a refresh shows the committed write-back.
        observer.refresh()
        assert observer.seq == mvcc.current_seq
        observer.close()
