"""Unit tests for the iterated-local-search solver (extension)."""

import pytest

from repro.cost import LinearCost
from repro.errors import IncrementError
from repro.increment import (
    BaseTupleState,
    IncrementPlan,
    IncrementProblem,
    LocalSearchOptions,
    SolverStats,
    solve_greedy,
    solve_local_search,
)
from repro.lineage import ConfidenceFunction, lineage_or, var
from repro.storage import TupleId
from repro.workload import WorkloadSpec, generate_problem

A, B = TupleId("t", 0), TupleId("t", 1)


class TestOptions:
    def test_validation(self):
        with pytest.raises(IncrementError):
            LocalSearchOptions(restarts=0)
        with pytest.raises(IncrementError):
            LocalSearchOptions(swap_attempts=-1)


class TestSolveLocalSearch:
    def test_never_worse_than_greedy(self):
        for seed in (1, 4, 9):
            problem = generate_problem(
                WorkloadSpec(data_size=60, tuples_per_result=4, threshold=0.6),
                seed=seed,
            ).problem
            greedy = solve_greedy(problem)
            local = solve_local_search(problem)
            assert local.total_cost <= greedy.total_cost + 1e-6

    def test_plan_is_feasible(self):
        problem = generate_problem(
            WorkloadSpec(data_size=80, tuples_per_result=4, threshold=0.6),
            seed=2,
        ).problem
        plan = solve_local_search(problem)
        assignment = problem.initial_assignment()
        assignment.update(plan.targets)
        assert problem.satisfied_count(assignment) >= problem.required_count

    def test_deterministic_for_seed(self):
        problem = generate_problem(
            WorkloadSpec(data_size=60, tuples_per_result=4, threshold=0.6),
            seed=3,
        ).problem
        first = solve_local_search(problem, LocalSearchOptions(seed=5))
        second = solve_local_search(problem, LocalSearchOptions(seed=5))
        assert first.total_cost == second.total_cost
        assert first.targets == second.targets

    def test_swap_escapes_greedy_local_optimum(self):
        # One result (A OR B).  A is cheap per step early but capped at a
        # value where it alone cannot reach the threshold without the last
        # expensive step; B alone is cheaper overall.  Greedy may mix; the
        # swap move can consolidate spending onto one tuple.
        states = {
            A: BaseTupleState(A, 0.1, LinearCost(100.0)),
            B: BaseTupleState(B, 0.1, LinearCost(90.0)),
        }
        problem = IncrementProblem(
            [ConfidenceFunction(lineage_or(var(A), var(B)))], states, 0.6, 1
        )
        plan = solve_local_search(
            problem, LocalSearchOptions(restarts=4, swap_attempts=200)
        )
        # Optimal: raise only B (cheaper rate) to 0.6 => 45.0.
        assert plan.total_cost == pytest.approx(90.0 * 0.5)

    def test_initial_plan_seeding(self):
        problem = generate_problem(
            WorkloadSpec(data_size=60, tuples_per_result=4, threshold=0.6),
            seed=8,
        ).problem
        from repro.increment import solve_dnc

        dnc_plan = solve_dnc(problem)
        polished = solve_local_search(
            problem, LocalSearchOptions(initial_plan=dnc_plan, restarts=2)
        )
        assert polished.total_cost <= dnc_plan.total_cost + 1e-6

    def test_infeasible_initial_plan_rejected(self):
        problem = generate_problem(
            WorkloadSpec(data_size=20, tuples_per_result=3, threshold=0.6),
            seed=1,
        ).problem
        empty = IncrementPlan({}, 0.0, (), "empty", SolverStats())
        with pytest.raises(IncrementError):
            solve_local_search(
                problem, LocalSearchOptions(initial_plan=empty)
            )

    def test_trivial_problem(self):
        states = {A: BaseTupleState(A, 0.9, LinearCost(10.0))}
        problem = IncrementProblem(
            [ConfidenceFunction(var(A))], states, 0.5, 1
        )
        plan = solve_local_search(problem)
        assert plan.total_cost == 0.0

    def test_make_solver_knows_local_search(self):
        from repro import make_solver

        problem = generate_problem(
            WorkloadSpec(data_size=20, tuples_per_result=3, threshold=0.6),
            seed=1,
        ).problem
        plan = make_solver("local-search", restarts=1)(problem)
        assert plan.algorithm == "local-search"
