"""Unit tests for the SQL planner (SQL text → results via run_sql)."""

import pytest

from repro.errors import BindError, PlanError, UnknownTableError
from repro.sql import plan_sql, run_sql


class TestProjectionPlanning:
    def test_star_expansion(self, proposal_db):
        result = run_sql(proposal_db, "SELECT * FROM Proposal")
        assert result.schema.names == ("Company", "Proposal", "Funding")
        assert len(result) == 5

    def test_qualified_star(self, proposal_db):
        result = run_sql(
            proposal_db,
            "SELECT p.* FROM Proposal p JOIN CompanyInfo c ON p.Company = c.Company",
        )
        assert result.schema.names == ("Company", "Proposal", "Funding")

    def test_star_with_unknown_qualifier(self, proposal_db):
        with pytest.raises(PlanError):
            plan_sql(proposal_db, "SELECT zzz.* FROM Proposal")

    def test_expression_select(self, proposal_db):
        result = run_sql(
            proposal_db, "SELECT Funding * 2 AS double FROM Proposal"
        )
        assert result.schema.names == ("double",)

    def test_unknown_table(self, proposal_db):
        with pytest.raises(UnknownTableError):
            plan_sql(proposal_db, "SELECT * FROM missing")

    def test_unknown_column(self, proposal_db):
        from repro.errors import UnknownColumnError

        with pytest.raises(UnknownColumnError):
            plan_sql(proposal_db, "SELECT bogus FROM Proposal")


class TestWhereAndJoin:
    def test_where(self, proposal_db):
        result = run_sql(
            proposal_db, "SELECT Company FROM Proposal WHERE Funding < 1.0"
        )
        assert sorted(row.values[0] for row in result) == ["B", "B", "D"]

    def test_join_on(self, proposal_db):
        result = run_sql(
            proposal_db,
            "SELECT p.Company, c.Income FROM Proposal p "
            "JOIN CompanyInfo c ON p.Company = c.Company",
        )
        assert len(result) == 4  # A, B, B, C match

    def test_left_join_includes_unmatched(self, proposal_db):
        result = run_sql(
            proposal_db,
            "SELECT p.Company, c.Income FROM Proposal p "
            "LEFT JOIN CompanyInfo c ON p.Company = c.Company",
        )
        unmatched = [row for row in result if row.values[1] is None]
        assert any(row.values[0] == "D" for row in unmatched)

    def test_comma_cross_product(self, proposal_db):
        result = run_sql(
            proposal_db, "SELECT p.Company FROM Proposal p, CompanyInfo c"
        )
        assert len(result) == 20

    def test_derived_table(self, proposal_db):
        result = run_sql(
            proposal_db,
            "SELECT cand.Company FROM "
            "(SELECT DISTINCT Company FROM Proposal WHERE Funding < 1.0) cand",
        )
        assert sorted(row.values[0] for row in result) == ["B", "D"]


class TestAggregatePlanning:
    def test_group_by_with_aliases(self, proposal_db):
        result = run_sql(
            proposal_db,
            "SELECT Company, COUNT(*) AS n, SUM(Funding) AS total "
            "FROM Proposal GROUP BY Company",
        )
        by_company = {row.values[0]: row.values[1:] for row in result}
        assert by_company["B"] == (2, pytest.approx(1.7))

    def test_having(self, proposal_db):
        result = run_sql(
            proposal_db,
            "SELECT Company FROM Proposal GROUP BY Company HAVING COUNT(*) > 1",
        )
        assert [row.values[0] for row in result] == ["B"]

    def test_aggregate_arithmetic(self, proposal_db):
        result = run_sql(
            proposal_db,
            "SELECT SUM(Funding) / COUNT(*) AS mean FROM Proposal",
        )
        assert result.rows[0].values[0] == pytest.approx(5.0 / 5)

    def test_global_aggregate(self, proposal_db):
        result = run_sql(proposal_db, "SELECT COUNT(*) FROM Proposal")
        assert result.rows[0].values == (5,)
        assert result.schema.names == ("COUNT(*)",)

    def test_bare_column_outside_group_by_rejected(self, proposal_db):
        with pytest.raises(BindError):
            plan_sql(
                proposal_db,
                "SELECT Funding, COUNT(*) FROM Proposal GROUP BY Company",
            )

    def test_nested_aggregate_rejected(self, proposal_db):
        with pytest.raises(PlanError):
            plan_sql(proposal_db, "SELECT SUM(COUNT(*)) FROM Proposal")

    def test_qualified_group_key(self, proposal_db):
        result = run_sql(
            proposal_db,
            "SELECT p.Company, COUNT(*) FROM Proposal p GROUP BY p.Company",
        )
        assert len(result) == 4

    def test_count_distinct(self, proposal_db):
        result = run_sql(
            proposal_db, "SELECT COUNT(DISTINCT Company) FROM Proposal"
        )
        assert result.rows[0].values == (4,)


class TestSetAndTrailerPlanning:
    def test_union_distinct(self, proposal_db):
        result = run_sql(
            proposal_db,
            "SELECT Company FROM Proposal UNION SELECT Company FROM CompanyInfo",
        )
        assert sorted(row.values[0] for row in result) == ["A", "B", "C", "D", "E"]

    def test_except(self, proposal_db):
        result = run_sql(
            proposal_db,
            "SELECT Company FROM Proposal EXCEPT SELECT Company FROM CompanyInfo",
        )
        values = sorted(row.values[0] for row in result)
        # D never appears in CompanyInfo; A/B/C survive probabilistically.
        assert "D" in values

    def test_order_by_name(self, proposal_db):
        result = run_sql(
            proposal_db, "SELECT Company FROM Proposal ORDER BY Company DESC"
        )
        assert result.rows[0].values[0] == "D"

    def test_order_by_position(self, proposal_db):
        result = run_sql(
            proposal_db, "SELECT Company, Funding FROM Proposal ORDER BY 2"
        )
        assert result.rows[0].values[1] == 0.6

    def test_order_by_position_out_of_range(self, proposal_db):
        with pytest.raises(PlanError):
            plan_sql(proposal_db, "SELECT Company FROM Proposal ORDER BY 5")

    def test_limit_offset(self, proposal_db):
        result = run_sql(
            proposal_db,
            "SELECT Company FROM Proposal ORDER BY Company LIMIT 2 OFFSET 1",
        )
        assert [row.values[0] for row in result] == ["B", "B"]

    def test_offset_without_limit(self, proposal_db):
        result = run_sql(
            proposal_db,
            "SELECT Company FROM Proposal ORDER BY Company LIMIT 100 OFFSET 4",
        )
        assert len(result) == 1

    def test_order_inside_set_operand_rejected(self, proposal_db):
        from repro.sql import parse, plan_statement
        from repro.sql.ast import SetStatement

        left = parse("SELECT Company FROM Proposal ORDER BY 1")
        right = parse("SELECT Company FROM CompanyInfo")
        with pytest.raises(PlanError):
            plan_statement(proposal_db, SetStatement(left, right, "union"))

    def test_order_by_dropped_input_column(self, proposal_db):
        # ORDER BY may reference a column the SELECT list dropped.
        result = run_sql(
            proposal_db,
            "SELECT Company FROM Proposal ORDER BY Funding DESC",
        )
        assert result.schema.names == ("Company",)
        assert result.rows[0].values[0] == "A"  # funding 1.5 first

    def test_order_by_expression_over_input(self, proposal_db):
        result = run_sql(
            proposal_db,
            "SELECT Company FROM Proposal ORDER BY Funding * -1",
        )
        assert result.rows[0].values[0] == "A"

    def test_order_by_unknown_column_still_errors(self, proposal_db):
        from repro.errors import UnknownColumnError

        with pytest.raises(UnknownColumnError):
            run_sql(
                proposal_db, "SELECT Company FROM Proposal ORDER BY bogus"
            )

    def test_order_by_input_column_with_distinct_rejected(self, proposal_db):
        # DISTINCT output has no stable mapping to dropped input columns.
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_sql(
                proposal_db,
                "SELECT DISTINCT Company FROM Proposal ORDER BY Funding",
            )

    def test_optimized_and_raw_plans_agree(self, proposal_db):
        sql = (
            "SELECT p.Company FROM Proposal p "
            "JOIN CompanyInfo c ON p.Company = c.Company "
            "WHERE p.Funding < 1.2 AND c.Income > 0.5"
        )
        optimized = run_sql(proposal_db, sql, optimized=True)
        raw = run_sql(proposal_db, sql, optimized=False)
        assert sorted(optimized.values()) == sorted(raw.values())
