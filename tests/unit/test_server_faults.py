"""The network fault injector: specs, decisions, and the faulty socket.

The injector is pure decision logic shared by the asyncio server and the
blocking client, so its contract — fire exactly once, at the armed
(point, occurrence), with seeded randomness — is tested here without any
real server in the loop.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.server.faults import (
    NETWORK_FAULT_POINTS,
    FaultySocket,
    NetworkFaultInjector,
    NetworkFaultSpec,
    iter_network_fault_specs,
)


class TestSpecValidation:
    def test_unknown_point_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            NetworkFaultSpec("server.think", "disconnect")

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            NetworkFaultSpec("server.write", "explode")

    def test_mode_must_be_meaningful_at_the_point(self):
        # torn_frame makes no sense on the read side.
        with pytest.raises(ValueError, match="not meaningful"):
            NetworkFaultSpec("server.read", "torn_frame")

    def test_occurrence_and_delay_bounds(self):
        with pytest.raises(ValueError, match="occurrence"):
            NetworkFaultSpec("server.write", "delay", occurrence=0)
        with pytest.raises(ValueError, match="delay_s"):
            NetworkFaultSpec("server.write", "delay", delay_s=-0.1)

    def test_matrix_iterator_covers_every_cell(self):
        specs = list(iter_network_fault_specs(seed=3, occurrence=2))
        expected = sum(len(modes) for _p, modes in NETWORK_FAULT_POINTS)
        assert len(specs) == expected
        assert {(s.point, s.mode) for s in specs} == {
            (point, mode)
            for point, modes in NETWORK_FAULT_POINTS
            for mode in modes
        }
        assert all(s.occurrence == 2 and s.seed == 3 for s in specs)


class TestInjectorDecisions:
    def test_fires_exactly_at_the_armed_occurrence(self, network_fault):
        injector = network_fault("server.write", "disconnect", occurrence=3)
        assert injector.decide("server.write", 100) is None
        assert injector.decide("server.read") is None  # other point
        assert injector.decide("server.write", 100) is None
        assert not injector.tripped
        action = injector.decide("server.write", 100)
        assert action is not None and action.mode == "disconnect"
        assert injector.tripped
        # One-shot: the occurrence has passed, later hits are clean.
        assert injector.decide("server.write", 100) is None

    def test_other_points_do_not_advance_the_count(self, network_fault):
        injector = network_fault("client.send", "disconnect", occurrence=2)
        for _ in range(5):
            assert injector.decide("client.recv", 64) is None
        assert injector.decide("client.send", 64) is None
        assert injector.decide("client.send", 64) is not None

    def test_torn_frame_cut_is_strictly_inside_the_frame(self, network_fault):
        for seed in range(16):
            injector = network_fault("server.write", "torn_frame", seed=seed)
            action = injector.decide("server.write", 100)
            assert action.mode == "torn_frame"
            assert 1 <= action.cut < 100

    def test_torn_frame_is_deterministic_per_seed(self, network_fault):
        cuts = [
            network_fault("server.write", "torn_frame", seed=7)
            .decide("server.write", 5000)
            .cut
            for _ in range(3)
        ]
        assert cuts[0] == cuts[1] == cuts[2]

    def test_slow_write_chunks_the_frame(self, network_fault):
        injector = network_fault("server.write", "slow_write", delay_s=0.08)
        action = injector.decide("server.write", 800)
        assert action.mode == "slow_write"
        assert action.chunk == 100  # nbytes // 8
        assert action.delay_s == pytest.approx(0.01)

    def test_delay_carries_the_spec_delay(self, network_fault):
        injector = network_fault("server.write", "delay", delay_s=0.2)
        action = injector.decide("server.write", 10)
        assert action.delay_s == pytest.approx(0.2)


class _Peer:
    """A socketpair peer draining bytes on a thread."""

    def __init__(self):
        self.local, self.remote = socket.socketpair()
        self.received = b""
        self._thread = threading.Thread(target=self._drain, daemon=True)
        self._thread.start()

    def _drain(self):
        while True:
            try:
                chunk = self.remote.recv(4096)
            except OSError:
                return
            if not chunk:
                return
            self.received += chunk

    def close(self):
        self.local.close()
        self.remote.close()
        self._thread.join(timeout=5.0)


class TestFaultySocket:
    def test_clean_passthrough_below_the_occurrence(self, network_fault):
        peer = _Peer()
        try:
            sock = FaultySocket(
                peer.local, network_fault("client.send", "disconnect", 2)
            )
            sock.sendall(b"hello")
            peer.local.shutdown(socket.SHUT_WR)
            peer._thread.join(timeout=5.0)
            assert peer.received == b"hello"
        finally:
            peer.close()

    def test_torn_send_delivers_a_prefix_then_dies(self, network_fault):
        peer = _Peer()
        try:
            injector = network_fault("client.send", "torn_frame", seed=1)
            sock = FaultySocket(peer.local, injector)
            with pytest.raises(ConnectionResetError):
                sock.sendall(b"x" * 64)
            peer._thread.join(timeout=5.0)
            assert injector.tripped
            assert 1 <= len(peer.received) < 64
            # The underlying socket is dead for the caller too.
            with pytest.raises(OSError):
                peer.local.send(b"more")
        finally:
            peer.close()

    def test_send_disconnect_delivers_nothing(self, network_fault):
        peer = _Peer()
        try:
            sock = FaultySocket(
                peer.local, network_fault("client.send", "disconnect")
            )
            with pytest.raises(ConnectionResetError):
                sock.sendall(b"x" * 64)
            peer._thread.join(timeout=5.0)
            assert peer.received == b""
        finally:
            peer.close()

    def test_recv_disconnect_raises_before_reading(self, network_fault):
        local, remote = socket.socketpair()
        try:
            remote.sendall(b"reply")
            sock = FaultySocket(
                local, network_fault("client.recv", "disconnect")
            )
            with pytest.raises(ConnectionResetError):
                sock.recv(5)
        finally:
            local.close()
            remote.close()

    def test_clean_recv_passes_through(self, network_fault):
        local, remote = socket.socketpair()
        try:
            remote.sendall(b"reply")
            sock = FaultySocket(
                local, network_fault("client.recv", "disconnect", 5)
            )
            assert sock.recv(5) == b"reply"
        finally:
            local.close()
            remote.close()
