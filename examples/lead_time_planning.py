#!/usr/bin/env python3
"""Plan ahead: how long before a decision must the query be issued?

The paper's conclusion notes that improving data quality takes real time
(auditors travel, reports get commissioned) — so a user "can submit the
query in advance ... statistics can be used to let the user know how much
time in advance".  This example quotes both the *cost* and the *lead time*
of a confidence increment, for different numbers of parallel verification
workers.

Run:  python examples/lead_time_planning.py
"""

from repro.increment import (
    IncrementProblem,
    VerificationLatencyModel,
    estimate_lead_time,
    solve_greedy,
)
from repro.policy import PolicyEvaluator
from repro.sql import run_sql
from repro.workload import healthcare_database


def main() -> None:
    scenario = healthcare_database(patients=120, seed=5)
    sql = (
        "SELECT p.PatientId, t.Treatment, t.ResponseRate "
        "FROM Patients p JOIN Treatments t ON p.PatientId = t.PatientId "
        "WHERE p.Diagnosis = 'lung'"
    )
    threshold = scenario.policies.threshold_for("omar", "treatment-evaluation")
    result = run_sql(scenario.db, sql)
    outcome = PolicyEvaluator.apply_threshold(result, scenario.db, threshold)
    shortfall = outcome.shortfall(0.8)
    print(
        f"query returns {outcome.total} rows; {len(outcome.released)} clear "
        f"the {threshold} threshold; need {shortfall} more for 80%"
    )
    if shortfall == 0:
        print("nothing to improve — no lead time needed")
        return

    liftable = [row.lineage for row, _ in outcome.withheld]
    problem = IncrementProblem.from_results(
        liftable, scenario.db, threshold=threshold, required_count=shortfall
    )
    plan = solve_greedy(problem)
    print(f"\nincrement plan: cost={plan.total_cost:.2f}, "
          f"{len(plan.targets)} tuples to verify")

    # Chart abstraction is slow; registry lookups are quick.  One latency
    # model for everything here; a deployment would pick per data tier.
    model = VerificationLatencyModel(
        dispatch_overhead=4.0,       # hours to schedule one verification
        per_confidence_unit=24.0,    # a +0.1 bump ≈ 2.4 hours of work
        per_cost_unit=0.02,          # expensive checks are slower
    )
    print("\nlead-time estimates (hours):")
    print(f"{'workers':>8} {'lead time':>10} {'total work':>11}")
    for workers in (1, 2, 4, 8):
        estimate = estimate_lead_time(plan, problem, model, parallelism=workers)
        print(
            f"{workers:>8} {estimate.makespan:>10.1f} "
            f"{estimate.total_work:>11.1f}"
        )
    estimate = estimate_lead_time(plan, problem, model, parallelism=4)
    print(
        f"\nwith 4 verification workers, issue the query "
        f"{estimate.makespan:.0f} hours before the decision meeting "
        f"(critical verification: {estimate.critical_tuple})"
    )


if __name__ == "__main__":
    main()
