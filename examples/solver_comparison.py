#!/usr/bin/env python3
"""Compare the paper's three strategy-finding algorithms side by side.

Generates synthetic instances (§5.1 setup) of growing size and prints each
solver's cost and response time — a miniature of Figures 11(c)/(f).  The
exact branch-and-bound runs only on the smallest instance (it is
exponential); greedy and divide-and-conquer run everywhere.

Run:  python examples/solver_comparison.py
"""

import time

from repro.increment import (
    DncOptions,
    GreedyOptions,
    solve_dnc,
    solve_greedy,
    solve_heuristic,
)
from repro.workload import WorkloadSpec, generate_problem


def timed(solve, problem):
    started = time.perf_counter()
    plan = solve(problem)
    return plan, time.perf_counter() - started


def main() -> None:
    print(f"{'size':>6} {'algorithm':<14} {'cost':>12} {'time':>9}  notes")
    print("-" * 60)
    for size in (10, 200, 1000, 3000):
        spec = WorkloadSpec(
            data_size=size,
            tuples_per_result=min(5, max(2, size // 2)),
            threshold=0.6,
            theta=0.5,
        )
        problem = generate_problem(spec, seed=42).problem

        rows = []
        if size <= 12:
            plan, elapsed = timed(solve_heuristic, problem)
            rows.append(("heuristic", plan, elapsed, "exact optimum"))
        plan, elapsed = timed(
            lambda p: solve_greedy(p, GreedyOptions(two_phase=False)), problem
        )
        rows.append(("greedy-1phase", plan, elapsed, ""))
        plan, elapsed = timed(solve_greedy, problem)
        rows.append(("greedy", plan, elapsed, "two-phase"))
        plan, elapsed = timed(solve_dnc, problem)
        rows.append(
            ("dnc", plan, elapsed, f"{plan.stats.groups} groups")
        )

        for name, plan, elapsed, note in rows:
            print(
                f"{size:>6} {name:<14} {plan.total_cost:>12.1f} "
                f"{elapsed:>8.3f}s  {note}"
            )
        print("-" * 60)


if __name__ == "__main__":
    main()
