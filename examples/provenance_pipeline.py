#!/usr/bin/env python3
"""From raw CSV + provenance to policy-compliant answers (element 1 → 4).

Builds a small customer-records database from CSV text, scores each row's
confidence from its provenance (source trust × collection reliability,
noisy-OR corroboration, age decay), then runs a policy-gated query and a
confidence-increment round — the full pipeline a data steward would operate.

Run:  python examples/provenance_pipeline.py
"""

import io

from repro import PCQEngine, QueryRequest
from repro.cost import BinomialCost, LinearCost
from repro.policy import PolicyStore
from repro.sql import run_sql
from repro.storage import Database, REAL, Schema, TEXT, load_csv
from repro.trust import (
    CollectionMethod,
    ConfidenceAssigner,
    DataSource,
    ProvenanceRecord,
)

CUSTOMERS_CSV = """\
name,segment,revenue
Aldine Corp,enterprise,120.5
Brightwater,enterprise,87.0
Cobble & Co,smb,12.3
Dunmore Ltd,smb,9.1
Eastgate,enterprise,230.0
Foxhollow,smb,4.4
"""


def main() -> None:
    db = Database("crm")
    customers = db.create_table(
        "customers",
        Schema.of(("name", TEXT), ("segment", TEXT), ("revenue", REAL)),
    )
    load_csv(
        customers,
        io.StringIO(CUSTOMERS_CSV),
        cost_model=BinomialCost(linear=20.0, quadratic=60.0),
    )

    # --- element 1: provenance-based confidence assignment ---------------
    registry = DataSource("company-registry", trust=0.9)
    sales_rep = DataSource("sales-notes", trust=0.4)
    scraper = DataSource("web-scraper", trust=0.55)
    api = CollectionMethod("api-sync", reliability=0.95)
    manual = CollectionMethod("manual-entry", reliability=0.7)

    rows = list(customers.scan())
    provenance = {
        rows[0].tid: ProvenanceRecord(registry, api),
        rows[1].tid: ProvenanceRecord(sales_rep, manual, age_days=400),
        rows[2].tid: ProvenanceRecord(scraper, api, corroborations=(sales_rep,)),
        rows[3].tid: ProvenanceRecord(sales_rep, manual, age_days=900),
        rows[4].tid: ProvenanceRecord(registry, api, age_days=30),
        rows[5].tid: ProvenanceRecord(scraper, manual),
    }
    assigner = ConfidenceAssigner(half_life_days=365.0)
    applied = assigner.assign(customers, provenance)
    print("=== Confidence from provenance ===")
    for row in customers.scan():
        print(
            f"  {row.values[0]:14s} confidence={applied[row.tid]:.3f} "
            f"(source={provenance[row.tid].source.name})"
        )

    # --- elements 2-3: lineage-aware query + confidence policy ----------
    policies = PolicyStore(default_threshold=0.0)
    policies.add_role("account-manager")
    policies.add_purpose("renewal-outreach")
    policies.add_user("mira", roles=["account-manager"])
    policies.add_policy("account-manager", "renewal-outreach", 0.6)

    query = (
        "SELECT name, revenue FROM customers "
        "WHERE segment = 'enterprise' ORDER BY revenue DESC"
    )
    print("\n=== Raw query results with confidence ===")
    for row, confidence in run_sql(db, query).with_confidences(db):
        print(f"  {row.values!s:28s} confidence={confidence:.3f}")

    # --- element 4: quote and apply the cheapest increment --------------
    print("\n=== Policy-compliant evaluation for mira (threshold 0.6) ===")

    def show_quote(quote) -> bool:
        print(f"  quoted cost {quote.cost:.2f} to unlock "
              f"{quote.shortfall} more row(s); approving")
        return True

    engine = PCQEngine(db, policies, solver="heuristic", approval=show_quote)
    reply = engine.execute(
        QueryRequest(query, "renewal-outreach", required_fraction=1.0),
        user="mira",
    )
    print(f"  status={reply.status.value}")
    for row, confidence in reply.released:
        print(f"  released {row.values!s:28s} confidence={confidence:.3f}")


if __name__ == "__main__":
    main()
