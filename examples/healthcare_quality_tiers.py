#!/usr/bin/env python3
"""Healthcare scenario: purpose-dependent confidence requirements.

The paper's introduction cites Malin et al.: cancer-registry data is cheap
but noisy, surveys cost more, chart abstraction is accurate but expensive —
and the confidence a task needs depends on the task.  Hypothesis generation
tolerates noisy data (threshold 0.3); evaluating a treatment outside a
controlled study needs accurate data (threshold 0.75).

This example runs the same cohort query as three subjects and shows how the
policy store picks different thresholds, how much of the result survives
each, and what it would cost to lift a stage-IV cohort to clinical-decision
quality.

Run:  python examples/healthcare_quality_tiers.py
"""

from repro import PCQEngine, QueryRequest, QueryStatus
from repro.increment import SimulatedImprovementService
from repro.workload import healthcare_database

COHORT_QUERY = (
    "SELECT p.PatientId, p.Diagnosis, t.Treatment, t.ResponseRate "
    "FROM Patients p JOIN Treatments t ON p.PatientId = t.PatientId "
    "WHERE p.Stage = 'IV'"
)


def main() -> None:
    scenario = healthcare_database(patients=150, seed=11)
    db, policies = scenario.db, scenario.policies

    print("=== Same query, three subjects, three thresholds ===")
    subjects = [
        ("rachel", "hypothesis-generation"),
        ("petra", "care"),
        ("omar", "treatment-evaluation"),
    ]
    for user, purpose in subjects:
        threshold = policies.threshold_for(user, purpose)
        engine = PCQEngine(db, policies, approval=lambda _q: False)
        reply = engine.execute(
            QueryRequest(COHORT_QUERY, purpose, required_fraction=0.0),
            user=user,
        )
        total = len(reply.released) + reply.withheld_count
        print(
            f"  {user:8s} purpose={purpose:22s} threshold={threshold:.2f} "
            f"released {len(reply.released)}/{total}"
        )

    print("\n=== Lifting the cohort to clinical-decision quality ===")
    service = SimulatedImprovementService()
    quotes = []

    def record_quote(quote) -> bool:
        quotes.append(quote)
        return True

    engine = PCQEngine(
        db, policies, solver="dnc", improvement=service, approval=record_quote
    )
    reply = engine.execute(
        QueryRequest(COHORT_QUERY, "treatment-evaluation", required_fraction=0.8),
        user="omar",
    )
    if reply.status is QueryStatus.IMPROVED:
        quote = quotes[0]
        print(f"  shortfall: {quote.shortfall} rows below 0.75")
        print(f"  improvement plan touched {len(quote.plan.targets)} base tuples")
        print(f"  total verification cost: {service.spent:.2f}")
        print(
            f"  released after improvement: {len(reply.released)}"
            f"/{len(reply.released) + reply.withheld_count}"
        )
    else:
        print(f"  status: {reply.status.value} (no improvement applied)")

    print("\n=== Where the money goes (per data tier) ===")
    if service.receipts:
        by_tier: dict[str, float] = {}
        for action in service.receipts[0].actions:
            stored = db.resolve(action.tid)
            tier = stored.values[-1]  # Source column on both tables
            by_tier[tier] = by_tier.get(tier, 0.0) + action.cost
        for tier, cost in sorted(by_tier.items(), key=lambda kv: -kv[1]):
            print(f"  {tier:10s} {cost:10.2f}")


if __name__ == "__main__":
    main()
