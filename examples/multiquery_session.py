#!/usr/bin/env python3
"""Multi-query sessions: one improvement serves several queries (§4).

A manager runs several related queries "within a short time period".
Solving each query's confidence shortfall in isolation risks paying twice
for base tuples the queries share; `PCQEngine.execute_many` builds a single
multi-requirement increment problem over the union of base tuples and buys
one improvement that satisfies every query.

Run:  python examples/multiquery_session.py
"""

from repro import PCQEngine, QueryRequest
from repro.cost import BinomialCost
from repro.policy import PolicyStore
from repro.storage import Database, REAL, Schema, TEXT


def build_database() -> tuple[Database, PolicyStore]:
    db = Database("portfolio")
    positions = db.create_table(
        "positions",
        Schema.of(("ticker", TEXT), ("sector", TEXT), ("weight", REAL)),
    )
    rows = [
        ("AAA", "energy", 0.12),
        ("BBB", "energy", 0.08),
        ("CCC", "tech", 0.22),
        ("DDD", "tech", 0.18),
        ("EEE", "health", 0.15),
        ("FFF", "health", 0.10),
        ("GGG", "energy", 0.15),
    ]
    for ticker, sector, weight in rows:
        positions.insert(
            [ticker, sector, weight],
            confidence=0.25,
            cost_model=BinomialCost(linear=30.0, quadratic=80.0),
        )
    policies = PolicyStore(default_threshold=0.55)
    policies.add_role("pm")
    policies.add_purpose("rebalancing")
    policies.add_user("dana", roles=["pm"])
    return db, policies


def main() -> None:
    db, policies = build_database()
    requests = [
        QueryRequest(
            "SELECT ticker, weight FROM positions WHERE sector = 'energy'",
            "rebalancing",
            required_fraction=1.0,
        ),
        QueryRequest(
            "SELECT ticker, weight FROM positions WHERE weight > 0.1",
            "rebalancing",
            required_fraction=0.8,
        ),
        QueryRequest(
            "SELECT sector, SUM(weight) AS total FROM positions GROUP BY sector",
            "rebalancing",
            required_fraction=1.0,
        ),
    ]

    print("=== one coordinated session for three queries ===")
    engine = PCQEngine(db, policies, solver="greedy")
    batch = engine.execute_many(requests, user="dana")
    print(f"quoted once: cost {batch.quote.cost:.2f} "
          f"for {batch.quote.shortfall} missing rows across all queries")
    print(f"verified {batch.receipt.tuples_improved} base tuples\n")
    for request, reply in zip(requests, batch.results):
        print(f"  {request.sql[:60]}...")
        print(
            f"    {reply.status.value}: {len(reply.released)} released / "
            f"{reply.withheld_count} withheld"
        )

    print("\n=== versus three sequential single-query sessions ===")
    db2, policies2 = build_database()
    total = 0.0
    quotes = 0
    for request in requests:
        engine2 = PCQEngine(db2, policies2, solver="greedy")
        reply = engine2.execute(request, user="dana")
        if reply.receipt:
            total += reply.receipt.total_cost
            quotes += 1
    print(f"sequential: {quotes} approval round-trips, total cost {total:.2f}")
    print(f"coordinated: 1 approval round-trip,  total cost {batch.receipt.total_cost:.2f}")
    print(
        "\nSequential sessions also exploit sharing (each query reuses the\n"
        "previous improvements), so costs are comparable — the batch API's\n"
        "win is a single quote/approval and a guarantee that *all* queries\n"
        "are satisfiable before any money is spent.  Truly concurrent,\n"
        "uncoordinated users would pay more; see\n"
        "benchmarks/bench_extension_multiquery.py (7-17% savings)."
    )


if __name__ == "__main__":
    main()
