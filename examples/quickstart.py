#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

A venture-capital firm stores startup proposals and company financials with
per-tuple confidence values (Tables 1-2 of the paper).  A secretary doing
analysis is covered by policy P1 = <Secretary, analysis, 0.05>; a manager
making an investment decision by P2 = <Manager, investment, 0.06>.  The
candidate query's best row has confidence 0.058: visible to the secretary,
blocked for the manager — until the engine finds the cheapest confidence
increment, quotes it, and (on approval) improves the data.

Run:  python examples/quickstart.py
"""

from repro import PCQEngine, QueryRequest, QueryStatus
from repro.increment import SimulatedImprovementService
from repro.sql import run_sql
from repro.workload import venture_capital_database


def main() -> None:
    scenario = venture_capital_database()
    db, policies = scenario.db, scenario.policies

    print("=== The candidate query (Π σ join of the paper, §3.1) ===")
    print(scenario.QUERY, "\n")
    result = run_sql(db, scenario.QUERY)
    for row, confidence in result.with_confidences(db):
        print(f"  {row.values!s:30s} confidence={confidence:.3f}")
        print(f"    lineage: {row.lineage}")

    print("\n=== Secretary 'alice', purpose=analysis (threshold 0.05) ===")
    engine = PCQEngine(db, policies, solver="heuristic")
    reply = engine.execute(
        QueryRequest(scenario.QUERY, "analysis", required_fraction=0.5),
        user="alice",
    )
    print(f"  status={reply.status.value}  released={reply.rows}")

    print("\n=== Manager 'bob', purpose=investment (threshold 0.06) ===")
    service = SimulatedImprovementService()

    def ask_user(quote) -> bool:
        print(f"  engine quotes improvement cost {quote.cost:.2f} "
              f"for {quote.shortfall} missing row(s):")
        for line in quote.plan.describe().splitlines()[1:]:
            print(f"   {line}")
        print("  manager approves.")
        return True

    engine = PCQEngine(
        db, policies, solver="heuristic", improvement=service, approval=ask_user
    )
    reply = engine.execute(
        QueryRequest(scenario.QUERY, "investment", required_fraction=1.0),
        user="bob",
    )
    print(f"  status={reply.status.value}")
    for row, confidence in reply.released:
        print(f"  released {row.values!s:30s} confidence={confidence:.3f}")
    print(f"  total spent on data quality: {service.spent:.2f}")

    assert reply.status is QueryStatus.IMPROVED


if __name__ == "__main__":
    main()
