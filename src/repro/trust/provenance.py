"""Provenance-based confidence assignment (paper element 1).

The paper obtains per-tuple confidence values with the technique of Dai et
al. 2008 ("An approach to evaluate data trustworthiness based on data
provenance"), which scores a data item from the trustworthiness of its
providers and the way it was collected.  This module implements a faithful-
in-spirit model sufficient to seed the PCQE pipeline:

* a :class:`DataSource` has a trust score in ``[0, 1]``;
* a :class:`CollectionMethod` has a reliability factor in ``[0, 1]``
  (e.g. automated sensor feed vs. manual transcription);
* a :class:`ProvenanceRecord` ties a tuple to one *originating* source +
  method, any number of *corroborating* sources, and an age;
* :class:`ConfidenceAssigner` combines them:

  .. math::

     p = \\Big(1 - \\prod_{s ∈ sources} (1 - trust_s · rel)\\Big)
         · decay^{age/half\\_life}

  — corroborating sources combine like independent witnesses (noisy-OR),
  collection reliability scales each witness, and confidence decays
  geometrically with data age.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import ReproError
from ..storage.table import Table
from ..storage.tuples import TupleId

__all__ = [
    "DataSource",
    "CollectionMethod",
    "ProvenanceRecord",
    "ConfidenceAssigner",
    "ProvenanceError",
]


class ProvenanceError(ReproError):
    """A provenance record or score is malformed."""


def _check_unit(value: float, label: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise ProvenanceError(f"{label} must be in [0, 1], got {value}")
    return float(value)


@dataclass(frozen=True)
class DataSource:
    """A data provider with a trust score."""

    name: str
    trust: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ProvenanceError("source name must be non-empty")
        _check_unit(self.trust, f"trust of source {self.name!r}")


@dataclass(frozen=True)
class CollectionMethod:
    """How a data item was gathered, with a reliability factor."""

    name: str
    reliability: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ProvenanceError("collection method name must be non-empty")
        _check_unit(
            self.reliability, f"reliability of method {self.name!r}"
        )


@dataclass(frozen=True)
class ProvenanceRecord:
    """The provenance of one tuple."""

    source: DataSource
    method: CollectionMethod
    corroborations: tuple[DataSource, ...] = ()
    age_days: float = 0.0

    def __post_init__(self) -> None:
        if self.age_days < 0:
            raise ProvenanceError(f"age_days must be >= 0, got {self.age_days}")
        object.__setattr__(self, "corroborations", tuple(self.corroborations))


@dataclass
class ConfidenceAssigner:
    """Derives tuple confidences from provenance records.

    Parameters
    ----------
    half_life_days:
        Age at which confidence halves the decay factor's distance to zero
        (``decay ** (age / half_life)``); ``None`` disables aging.
    decay:
        Per-half-life retention factor in (0, 1].
    floor:
        Minimum confidence assigned to any record (never report data as
        impossible just because provenance is weak).
    """

    half_life_days: float | None = 365.0
    decay: float = 0.5
    floor: float = 0.01

    def __post_init__(self) -> None:
        if self.half_life_days is not None and self.half_life_days <= 0:
            raise ProvenanceError(
                f"half_life_days must be positive, got {self.half_life_days}"
            )
        if not 0.0 < self.decay <= 1.0:
            raise ProvenanceError(f"decay must be in (0, 1], got {self.decay}")
        _check_unit(self.floor, "floor")

    def score(self, record: ProvenanceRecord) -> float:
        """Confidence of a tuple with the given provenance."""
        reliability = record.method.reliability
        miss = 1.0 - record.source.trust * reliability
        for witness in record.corroborations:
            miss *= 1.0 - witness.trust * reliability
        confidence = 1.0 - miss
        if self.half_life_days is not None and record.age_days > 0:
            confidence *= self.decay ** (record.age_days / self.half_life_days)
        return max(self.floor, min(1.0, confidence))

    def assign(
        self,
        table: Table,
        provenance: Mapping[TupleId, ProvenanceRecord],
        default: ProvenanceRecord | None = None,
    ) -> dict[TupleId, float]:
        """Score and store confidences for every tuple of *table*.

        Tuples missing from *provenance* use *default* (or keep their
        current confidence if no default is given).  Returns the applied
        confidences.
        """
        applied: dict[TupleId, float] = {}
        for row in table.scan():
            record = provenance.get(row.tid, default)
            if record is None:
                continue
            confidence = min(self.score(record), row.max_confidence)
            # Route through the table so durable databases journal the write.
            table.set_confidence(row.tid, confidence)
            applied[row.tid] = confidence
        return applied
