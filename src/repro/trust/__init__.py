"""Provenance-based confidence assignment (paper element 1)."""

from .provenance import (
    CollectionMethod,
    ConfidenceAssigner,
    DataSource,
    ProvenanceError,
    ProvenanceRecord,
)

__all__ = [
    "DataSource",
    "CollectionMethod",
    "ProvenanceRecord",
    "ConfidenceAssigner",
    "ProvenanceError",
]
