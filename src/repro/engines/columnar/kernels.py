"""Vectorized operator kernels over :class:`ColumnBatch` inputs.

Every kernel is a drop-in replacement for the corresponding native
handler in :mod:`repro.algebra.executor` and must preserve its observable
behaviour *exactly*: same output rows in the same order, lineage formulas
built with the same connective structure in the same operand order (the
smart constructors in :mod:`repro.lineage.formula` flatten and dedupe in
first-seen order, so identical construction order ⇒ structurally equal
formulas ⇒ identical circuits, confidences, and solver decisions), and
the same errors for failing predicates.  The differential suite
(`tests/property/test_engine_equivalence.py`) holds both engines to this
contract.

What the kernels buy over the native handlers:

* predicates/projections run through the batch expression path — one
  kernel call per column instead of one closure chain per row;
* lineage stays deferred through scan → filter → limit chains, so ``Var``
  objects are built only for surviving rows;
* scans share the table's cached column view instead of materializing an
  ``AnnotatedTuple`` per stored row.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ...algebra.executor import _equi_join_columns
from ...algebra.plan import (
    Alias,
    Filter,
    Join,
    Limit,
    Project,
    Scan,
    SemiJoin,
    SetOperation,
)
from ...errors import ExecutionError
from ...lineage.formula import (
    BOTTOM,
    Lineage,
    lineage_and,
    lineage_not,
    lineage_or,
)
from ...storage.types import REAL, DataType
from .batch import ColumnBatch

__all__ = [
    "scan_batch",
    "alias_batch",
    "filter_batch",
    "project_batch",
    "join_batch",
    "semi_join_batch",
    "set_operation_batch",
    "limit_batch",
]

_BATCH_ERRORS = (ExecutionError, TypeError, ValueError, ArithmeticError)


# -- leaf / unary -----------------------------------------------------------


def scan_batch(node: Scan) -> ColumnBatch:
    """Wrap the table's cached column view; lineage stays deferred."""
    columns, tids = node.table.column_data()
    return ColumnBatch(node.schema, columns, tids=tids)


def alias_batch(node: Alias, child: ColumnBatch) -> ColumnBatch:
    return child.with_columns(node.schema, child.columns)


def filter_batch(node: Filter, child: ColumnBatch) -> ColumnBatch:
    predicate = node.bound_predicate
    try:
        flags = predicate.evaluate_batch(child.columns, child.length)
    except _BATCH_ERRORS:
        # Fall back to scalar evaluation so the raised error carries the
        # exact native diagnostic (offending row values, first-row order).
        return _filter_scalar(node, child)
    keep = [i for i, flag in enumerate(flags) if flag is True]
    if len(keep) == child.length:
        return child
    return child.gather(keep)


def _filter_scalar(node: Filter, child: ColumnBatch) -> ColumnBatch:
    predicate = node.bound_predicate
    keep: list[int] = []
    for i, values in enumerate(child.rows()):
        try:
            flag = predicate.evaluate(values)
        except ExecutionError:
            raise
        except (TypeError, ValueError, ArithmeticError) as error:
            raise ExecutionError(
                f"predicate failed on row {values!r}: {error}"
            ) from error
        if flag is True:
            keep.append(i)
    return child.gather(keep)


def project_batch(node: Project, child: ColumnBatch) -> ColumnBatch:
    columns = [
        item.evaluate_batch(child.columns, child.length)
        for item in node.bound_items
    ]
    projected = child.with_columns(node.schema, columns)
    if not node.distinct:
        return projected
    return _merge_duplicates_batch(
        node.schema, projected.rows(), projected.lineage_column()
    )


def _merge_duplicates_batch(
    schema, values: Sequence[tuple[Any, ...]], lineage: Sequence[Lineage]
) -> ColumnBatch:
    """Native ``_merge_duplicates``: first-seen order, OR of duplicates."""
    groups: dict[tuple[Any, ...], list[Lineage]] = {}
    for row_values, row_lineage in zip(values, lineage):
        groups.setdefault(row_values, []).append(row_lineage)
    return ColumnBatch.from_rows(
        schema,
        list(groups.keys()),
        [lineage_or(*lineages) for lineages in groups.values()],
    )


def limit_batch(node: Limit, child: ColumnBatch) -> ColumnBatch:
    # Limit passes the child schema through, so the slice is the result.
    return child.slice(node.offset, node.offset + node.count)


# -- join -------------------------------------------------------------------


def join_batch(
    node: Join, left: ColumnBatch, right: ColumnBatch
) -> ColumnBatch:
    left_rows = left.rows()
    right_rows = right.rows()
    if node.kind == "cross":
        values: list[tuple[Any, ...]] = []
        lineage: list[Lineage] = []
        left_lin = left.lineage_column()
        right_lin = right.lineage_column()
        for i, left_values in enumerate(left_rows):
            for j, right_values in enumerate(right_rows):
                values.append(left_values + right_values)
                lineage.append(lineage_and(left_lin[i], right_lin[j]))
        return ColumnBatch.from_rows(node.schema, values, lineage)

    condition = node.bound_condition
    assert condition is not None
    equi = _equi_join_columns(node)
    values = []
    lineage = []
    null_padding = (None,) * len(right.schema)
    left_lin = left.lineage_column()
    right_lin = right.lineage_column()

    if equi is not None:
        left_index, right_index = equi
        buckets: dict[Any, list[int]] = {}
        for j, key in enumerate(right.columns[right_index]):
            if key is not None:
                buckets.setdefault(key, []).append(j)
        for i, key in enumerate(left.columns[left_index]):
            candidates = buckets.get(key, ()) if key is not None else ()
            _emit_matches(
                node,
                left_rows[i],
                left_lin[i],
                candidates,
                right_rows,
                right_lin,
                condition,
                values,
                lineage,
                null_padding,
                prefiltered=False,
            )
    else:
        probe = _make_condition_prober(condition, right)
        for i, left_values in enumerate(left_rows):
            candidates = probe(left_values)
            _emit_matches(
                node,
                left_values,
                left_lin[i],
                candidates,
                right_rows,
                right_lin,
                condition,
                values,
                lineage,
                null_padding,
                prefiltered=True,
            )
    return ColumnBatch.from_rows(node.schema, values, lineage)


def _make_condition_prober(
    condition, right: ColumnBatch
) -> Callable[[tuple[Any, ...]], list[int]]:
    """Matching right-row indexes for one left row, via one batch eval.

    The left row is broadcast as constant columns next to the right
    batch's columns; falls back to scalar evaluation when the batch path
    raises, so error behaviour matches the native nested loop exactly.
    """
    right_columns = right.columns
    right_rows_cache: list[tuple[Any, ...]] | None = None
    count = right.length

    def probe(left_values: tuple[Any, ...]) -> list[int]:
        nonlocal right_rows_cache
        combined = [[value] * count for value in left_values]
        combined.extend(right_columns)
        try:
            flags = condition.evaluate_batch(combined, count)
        except _BATCH_ERRORS:
            if right_rows_cache is None:
                right_rows_cache = right.rows()
            return [
                j
                for j, right_values in enumerate(right_rows_cache)
                if condition.evaluate(left_values + right_values) is True
            ]
        return [j for j, flag in enumerate(flags) if flag is True]

    return probe


def _emit_matches(
    node: Join,
    left_values: tuple[Any, ...],
    left_lineage: Lineage,
    candidates: Sequence[int],
    right_rows: list[tuple[Any, ...]],
    right_lineage: list[Lineage],
    condition,
    values: list[tuple[Any, ...]],
    lineage: list[Lineage],
    null_padding: tuple[None, ...],
    prefiltered: bool,
) -> None:
    """Native ``_emit_matches`` over indexes instead of AnnotatedTuples."""
    matched: list[Lineage] = []
    for j in candidates:
        combined = left_values + right_rows[j]
        if not prefiltered and condition.evaluate(combined) is not True:
            continue
        matched.append(right_lineage[j])
        values.append(combined)
        lineage.append(lineage_and(left_lineage, right_lineage[j]))
    if node.kind == "left":
        if not matched:
            values.append(left_values + null_padding)
            lineage.append(left_lineage)
        else:
            absent = lineage_and(
                left_lineage, lineage_not(lineage_or(*matched))
            )
            if absent != BOTTOM:
                values.append(left_values + null_padding)
                lineage.append(absent)


# -- semi-join --------------------------------------------------------------


def semi_join_batch(
    node: SemiJoin, left: ColumnBatch, right: ColumnBatch
) -> ColumnBatch:
    probe = node.bound_probe
    right_lin = right.lineage_column()

    matches: dict[Any, Lineage] = {}
    subquery_has_null = False
    for j, value in enumerate(right.columns[0]):
        if value is None:
            subquery_has_null = True
            continue
        existing = matches.get(value)
        matches[value] = (
            right_lin[j]
            if existing is None
            else lineage_or(existing, right_lin[j])
        )

    try:
        probe_values = probe.evaluate_batch(left.columns, left.length)
    except _BATCH_ERRORS:
        # Scalar fallback surfaces the native error for the first row.
        probe_values = [probe.evaluate(values) for values in left.rows()]

    keep: list[int] = []
    lineage: list[Lineage] = []
    negated = node.negated
    for i, value in enumerate(probe_values):
        if value is None:
            continue  # NULL probe: IN and NOT IN are both unknown
        match = matches.get(value)
        if not negated:
            if match is None:
                continue
            keep.append(i)
            lineage.append(lineage_and(left.lineage_at(i), match))
        else:
            if subquery_has_null:
                continue  # NOT IN with NULLs present is never true
            if match is None:
                keep.append(i)
                lineage.append(left.lineage_at(i))
                continue
            formula = lineage_and(left.lineage_at(i), lineage_not(match))
            if formula != BOTTOM:
                keep.append(i)
                lineage.append(formula)
    gathered = left.gather(keep)
    return ColumnBatch(node.schema, gathered.columns, lineage=lineage)


# -- set operations ---------------------------------------------------------


def _widen_columns(
    batch: ColumnBatch, types: tuple[DataType, ...]
) -> Sequence[list]:
    """Column-wise version of the native ``_widen`` (ints → float in REAL
    columns; bools are untouched)."""
    columns = []
    for column, dtype in zip(batch.columns, types):
        if dtype is REAL:
            columns.append(
                [
                    float(value)
                    if isinstance(value, int) and not isinstance(value, bool)
                    else value
                    for value in column
                ]
            )
        else:
            columns.append(column)
    return columns


def set_operation_batch(
    node: SetOperation, left: ColumnBatch, right: ColumnBatch
) -> ColumnBatch:
    types = node.schema.types
    left_wide = left.with_columns(node.schema, _widen_columns(left, types))
    right_wide = right.with_columns(node.schema, _widen_columns(right, types))

    if node.kind == "union_all":
        columns = [
            left_column + right_column
            for left_column, right_column in zip(
                left_wide.columns, right_wide.columns
            )
        ]
        lineage = left_wide.lineage_column() + right_wide.lineage_column()
        return ColumnBatch(node.schema, columns, lineage=lineage)

    left_values = left_wide.rows()
    right_values = right_wide.rows()
    if node.kind == "union":
        return _merge_duplicates_batch(
            node.schema,
            left_values + right_values,
            left_wide.lineage_column() + right_wide.lineage_column(),
        )

    left_groups: dict[tuple[Any, ...], list[Lineage]] = {}
    for row_values, row_lineage in zip(
        left_values, left_wide.lineage_column()
    ):
        left_groups.setdefault(row_values, []).append(row_lineage)
    right_groups: dict[tuple[Any, ...], list[Lineage]] = {}
    for row_values, row_lineage in zip(
        right_values, right_wide.lineage_column()
    ):
        right_groups.setdefault(row_values, []).append(row_lineage)

    values: list[tuple[Any, ...]] = []
    lineage: list[Lineage] = []
    if node.kind == "intersect":
        for group_values, lineages in left_groups.items():
            if group_values in right_groups:
                values.append(group_values)
                lineage.append(
                    lineage_and(
                        lineage_or(*lineages),
                        lineage_or(*right_groups[group_values]),
                    )
                )
        return ColumnBatch.from_rows(node.schema, values, lineage)
    # except
    for group_values, lineages in left_groups.items():
        present = lineage_or(*lineages)
        if group_values in right_groups:
            formula = lineage_and(
                present, lineage_not(lineage_or(*right_groups[group_values]))
            )
        else:
            formula = present
        if formula != BOTTOM:
            values.append(group_values)
            lineage.append(formula)
    return ColumnBatch.from_rows(node.schema, values, lineage)
