"""Columnar engine package: batches, kernels, and the engine driver."""

from __future__ import annotations

from .batch import ColumnBatch
from .engine import COLUMNAR_NODES, ColumnarEngine

__all__ = ["ColumnBatch", "ColumnarEngine", "COLUMNAR_NODES"]
