"""The columnar engine: vectorized, batch-at-a-time plan execution.

Walks the logical relation tree bottom-up like the native executor, but
every operator consumes and produces a :class:`ColumnBatch` instead of a
row list, dispatching to the vectorized kernels in
:mod:`~repro.engines.columnar.kernels`.  Observability mirrors the native
engine one level down: each operator records a ``columnar.<operator>``
span and ``executor.columnar.<operator>.{calls,rows_emitted,seconds}``
metrics, so per-engine operator costs are separable in the metrics
snapshot and OpenMetrics exposition.

The engine is deliberately partial: :class:`~repro.algebra.plan.Aggregate`
and :class:`~repro.algebra.plan.Sort` stay native (their cost is dominated
by per-group/per-key Python work a list-per-column layout does not help).
Engine selection (:mod:`repro.engines.select`) wraps maximal supported
subtrees in ``Transfer`` nodes so such plans still run their
scan/filter/join pipelines here.
"""

from __future__ import annotations

import logging
import time
from typing import Any, Callable

from ...algebra.plan import (
    Alias,
    Filter,
    Join,
    Limit,
    PlanNode,
    Project,
    Scan,
    SemiJoin,
    SetOperation,
    Transfer,
)
from ...algebra.rows import ResultSet
from ...errors import PlanError
from ...obs import TIMING_BUCKETS, get_metrics, get_tracer
from ..base import Engine
from .batch import ColumnBatch
from . import kernels

__all__ = ["ColumnarEngine", "COLUMNAR_NODES"]

logger = logging.getLogger(__name__)

#: Plan node types the columnar engine executes itself.
COLUMNAR_NODES: tuple[type, ...] = (
    Scan,
    Alias,
    Filter,
    Project,
    Join,
    SemiJoin,
    SetOperation,
    Limit,
    Transfer,
)


class ColumnarEngine(Engine):
    """Vectorized engine over columnar batches (partial operator set)."""

    name = "columnar"

    def execute(self, plan: PlanNode) -> ResultSet:
        return self._run(plan).to_result_set()

    def supports(self, node: PlanNode) -> bool:
        return isinstance(node, COLUMNAR_NODES)

    # -- tree walk -------------------------------------------------------

    def _run(self, node: PlanNode) -> ColumnBatch:
        operator = type(node).__name__
        handler = _HANDLERS.get(type(node))
        if handler is None:
            raise PlanError(
                f"columnar engine does not support {operator}; route the "
                f"plan through repro.engines.select for a mixed-engine tree"
            )
        tracer = get_tracer()
        started = time.perf_counter()
        if tracer.enabled:
            with tracer.span(f"columnar.{operator.lower()}") as span:
                batch = handler(self, node)
                span.set_attribute("rows_emitted", batch.length)
        else:
            batch = handler(self, node)
        elapsed = time.perf_counter() - started

        metrics = get_metrics()
        prefix = f"executor.columnar.{operator.lower()}"
        metrics.counter(f"{prefix}.calls").inc()
        metrics.counter(f"{prefix}.rows_emitted").inc(batch.length)
        metrics.histogram(f"{prefix}.seconds", TIMING_BUCKETS).observe(elapsed)
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "columnar %s emitted %d row(s) in %.6fs",
                operator,
                batch.length,
                elapsed,
            )
        return batch

    # -- per-operator handlers -------------------------------------------

    def _scan(self, node: Scan) -> ColumnBatch:
        return kernels.scan_batch(node)

    def _alias(self, node: Alias) -> ColumnBatch:
        return kernels.alias_batch(node, self._run(node.child))

    def _filter(self, node: Filter) -> ColumnBatch:
        return kernels.filter_batch(node, self._run(node.child))

    def _project(self, node: Project) -> ColumnBatch:
        return kernels.project_batch(node, self._run(node.child))

    def _join(self, node: Join) -> ColumnBatch:
        return kernels.join_batch(
            node, self._run(node.left), self._run(node.right)
        )

    def _semi_join(self, node: SemiJoin) -> ColumnBatch:
        return kernels.semi_join_batch(
            node, self._run(node.left), self._run(node.right)
        )

    def _set_operation(self, node: SetOperation) -> ColumnBatch:
        return kernels.set_operation_batch(
            node, self._run(node.left), self._run(node.right)
        )

    def _limit(self, node: Limit) -> ColumnBatch:
        return kernels.limit_batch(node, self._run(node.child))

    def _transfer(self, node: Transfer) -> ColumnBatch:
        """Boundary into another engine: materialize its rows as a batch."""
        from .. import get_engine

        result = get_engine(node.engine).execute(node.child)
        return ColumnBatch.from_result_set(result)


_HANDLERS: dict[type, Callable[[ColumnarEngine, Any], ColumnBatch]] = {
    Scan: ColumnarEngine._scan,
    Alias: ColumnarEngine._alias,
    Filter: ColumnarEngine._filter,
    Project: ColumnarEngine._project,
    Join: ColumnarEngine._join,
    SemiJoin: ColumnarEngine._semi_join,
    SetOperation: ColumnarEngine._set_operation,
    Limit: ColumnarEngine._limit,
    Transfer: ColumnarEngine._transfer,
}
