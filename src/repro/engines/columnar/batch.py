"""Columnar batches: the data representation of the columnar engine.

A :class:`ColumnBatch` holds one value list per schema column plus a
lineage column.  Two deliberate choices keep it fast without any native
dependencies:

* **Read-only sharing.**  Column lists are shared, never copied, between
  operators (and with :meth:`repro.storage.table.Table.column_data`'s
  per-table cache); kernels gather into fresh lists instead of mutating.

* **Deferred lineage.**  A scan does not build one ``Var`` object per
  stored row up front; the batch carries the tid column and materializes
  ``var(tid)`` lazily — after a selective filter, lineage objects exist
  only for surviving rows.  ``Var`` equality is structural, so deferred
  construction yields formulas structurally identical to the native
  engine's.
"""

from __future__ import annotations

from typing import Any, Sequence

from ...algebra.rows import AnnotatedTuple, ResultSet
from ...lineage.formula import Lineage, var
from ...storage.schema import Schema
from ...storage.tuples import TupleId

__all__ = ["ColumnBatch"]


class ColumnBatch:
    """A schema, per-column value lists, and a (possibly deferred) lineage
    column."""

    __slots__ = ("schema", "columns", "length", "_lineage", "_tids")

    def __init__(
        self,
        schema: Schema,
        columns: Sequence[list],
        lineage: list[Lineage] | None = None,
        tids: Sequence[TupleId] | None = None,
    ) -> None:
        self.schema = schema
        self.columns = columns
        self.length = len(columns[0]) if columns else 0
        if lineage is None and tids is None:
            raise ValueError("a batch needs a lineage or a tid column")
        self._lineage = lineage
        self._tids = tids

    def __len__(self) -> int:
        return self.length

    # -- lineage ---------------------------------------------------------

    def lineage_at(self, index: int) -> Lineage:
        """Row *index*'s lineage (materialized on demand when deferred)."""
        if self._lineage is not None:
            return self._lineage[index]
        assert self._tids is not None
        return var(self._tids[index])

    def lineage_column(self) -> list[Lineage]:
        """The full lineage column, materialized and cached."""
        if self._lineage is None:
            assert self._tids is not None
            self._lineage = [var(tid) for tid in self._tids]
        return self._lineage

    # -- row views -------------------------------------------------------

    def row(self, index: int) -> tuple[Any, ...]:
        """Row *index*'s values as a tuple."""
        return tuple(column[index] for column in self.columns)

    def rows(self) -> list[tuple[Any, ...]]:
        """All rows as value tuples (one zip, not per-row indexing)."""
        if self.length == 0:
            return []
        return list(zip(*self.columns))

    # -- derived batches -------------------------------------------------

    def with_columns(
        self, schema: Schema, columns: Sequence[list]
    ) -> "ColumnBatch":
        """Same rows/lineage, different values (project, alias, widen)."""
        return ColumnBatch(
            schema, columns, lineage=self._lineage, tids=self._tids
        )

    def gather(self, indices: Sequence[int]) -> "ColumnBatch":
        """The sub-batch of *indices*, in the given order (filter output)."""
        columns = [
            [column[i] for i in indices] for column in self.columns
        ]
        if self._lineage is not None:
            return ColumnBatch(
                self.schema,
                columns,
                lineage=[self._lineage[i] for i in indices],
            )
        assert self._tids is not None
        tids = self._tids
        return ColumnBatch(
            self.schema, columns, tids=[tids[i] for i in indices]
        )

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        """A contiguous window of rows (LIMIT/OFFSET)."""
        columns = [column[start:stop] for column in self.columns]
        if self._lineage is not None:
            return ColumnBatch(
                self.schema, columns, lineage=self._lineage[start:stop]
            )
        assert self._tids is not None
        return ColumnBatch(
            self.schema, columns, tids=self._tids[start:stop]
        )

    # -- boundaries ------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        values: Sequence[tuple[Any, ...]],
        lineage: list[Lineage],
    ) -> "ColumnBatch":
        """Build a batch from row tuples (join/distinct/set-op outputs)."""
        if values:
            columns: Sequence[list] = [list(column) for column in zip(*values)]
        else:
            columns = [[] for _ in schema]
        return cls(schema, columns, lineage=lineage)

    @classmethod
    def from_result_set(cls, result: ResultSet) -> "ColumnBatch":
        """Materialize a native engine result into a batch (Transfer in)."""
        rows = result.rows
        if rows:
            columns: Sequence[list] = [
                list(column) for column in zip(*(row.values for row in rows))
            ]
        else:
            columns = [[] for _ in result.schema]
        return cls(
            result.schema, columns, lineage=[row.lineage for row in rows]
        )

    def to_result_set(self, schema: Schema | None = None) -> ResultSet:
        """Materialize the batch as an annotated result set (Transfer out)."""
        out_schema = schema if schema is not None else self.schema
        if self.length == 0:
            return ResultSet(out_schema, [])
        lineage = self.lineage_column()
        return ResultSet(
            out_schema,
            [
                AnnotatedTuple(values, formula)
                for values, formula in zip(zip(*self.columns), lineage)
            ],
        )

    def __repr__(self) -> str:  # pragma: no cover - display only
        return (
            f"ColumnBatch({self.length} rows x {len(self.columns)} cols, "
            f"lineage={'deferred' if self._lineage is None else 'materialized'})"
        )
