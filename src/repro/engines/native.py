"""The native engine: today's row-at-a-time executor behind the Engine API.

A thin adapter — :meth:`NativeEngine.execute` *is*
:func:`repro.algebra.executor.execute`, unchanged, so plans routed through
the engine layer behave bit-identically to plans executed directly
(including per-operator ``algebra.*`` spans and ``executor.*`` metrics).
The native engine supports every plan node, which also makes it the
driver for mixed plans: ``Transfer`` nodes inside the tree hand supported
subtrees to other engines and materialize their rows back.
"""

from __future__ import annotations

from ..algebra.executor import execute
from ..algebra.plan import PlanNode
from ..algebra.rows import ResultSet
from .base import Engine

__all__ = ["NativeEngine"]


class NativeEngine(Engine):
    """Row-at-a-time reference engine (supports all operators)."""

    name = "native"

    def execute(self, plan: PlanNode) -> ResultSet:
        return execute(plan)
