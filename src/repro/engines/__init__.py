"""Pluggable execution engines over the logical relation tree.

The logical plan (:mod:`repro.algebra.plan`) describes *what* to compute;
an :class:`~repro.engines.base.Engine` decides *how*.  Two engines ship:

* ``native`` — the row-at-a-time reference executor
  (:mod:`repro.algebra.executor`), supporting every operator;
* ``columnar`` — vectorized batch execution over per-column value lists
  (:mod:`repro.engines.columnar`), covering the scan/filter/project/
  join/semijoin/set-op/limit pipeline.

Both produce identical rows, structurally identical lineage, and
bit-identical confidences — engine choice is purely a performance
decision, made per plan by :func:`~repro.engines.select.select_engine`
(stats-driven ``auto``, or forced via ``--engine``).  Mixed trees use
:class:`~repro.algebra.plan.Transfer` boundary nodes.  See
``docs/ENGINES.md`` for the architecture and how to add a third engine.
"""

from __future__ import annotations

from ..errors import PlanError
from .base import Engine
from .columnar import ColumnarEngine
from .native import NativeEngine
from .select import (
    DEFAULT_AUTO_ROW_THRESHOLD,
    ENGINE_MODES,
    PreparedPlan,
    select_engine,
)

__all__ = [
    "Engine",
    "NativeEngine",
    "ColumnarEngine",
    "PreparedPlan",
    "select_engine",
    "get_engine",
    "engine_names",
    "ENGINE_MODES",
    "DEFAULT_AUTO_ROW_THRESHOLD",
]

_ENGINES: dict[str, Engine] = {}


def _registry() -> dict[str, Engine]:
    if not _ENGINES:
        for engine in (NativeEngine(), ColumnarEngine()):
            _ENGINES[engine.name] = engine
    return _ENGINES


def get_engine(name: str) -> Engine:
    """The registered engine called *name* (``native``/``columnar``)."""
    registry = _registry()
    engine = registry.get(name)
    if engine is None:
        raise PlanError(
            f"unknown engine {name!r} (registered: {sorted(registry)})"
        )
    return engine


def engine_names() -> tuple[str, ...]:
    """Registered engine names, sorted."""
    return tuple(sorted(_registry()))
