"""Cost/stats-driven engine selection with Transfer-boundary insertion.

Given an optimized logical plan, :func:`select_engine` decides which
engine drives it and where engine boundaries go:

* ``native`` — the plan runs unchanged on the row-at-a-time engine.
* ``columnar`` — fully supported trees run on the columnar engine
  directly; trees containing native-only operators (Aggregate, Sort) are
  driven natively with every *worthwhile* maximal columnar-supported
  subtree wrapped in a :class:`~repro.algebra.plan.Transfer` node.
* ``auto`` (default) — stats-driven: the columnar engine only pays off
  when enough base rows flow through a subtree (batch setup and the final
  materialization are fixed costs), so a subtree goes columnar when the
  tables under it hold at least :data:`DEFAULT_AUTO_ROW_THRESHOLD` rows
  (live ``len(table)``, consistent with
  :mod:`repro.storage.statistics`).  Small plans — the paper's running
  examples, unit-test fixtures — keep the native engine and its exact
  operational profile.

A subtree is *worthwhile* when it does real columnar work: at least one
Filter/Project/Join/SemiJoin/SetOperation.  Wrapping a bare ``Scan`` (or
``Scan``+``Alias``) in a transfer would only add a materialization
round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra.plan import (
    Aggregate,
    Alias,
    Filter,
    Join,
    Limit,
    PlanNode,
    Project,
    Scan,
    SemiJoin,
    SetOperation,
    Sort,
    Transfer,
)
from ..errors import PlanError
from .base import Engine

__all__ = [
    "ENGINE_MODES",
    "DEFAULT_AUTO_ROW_THRESHOLD",
    "PreparedPlan",
    "pin_scan_statistics",
    "select_engine",
]

#: Valid values for ``--engine`` / ``run_sql(engine=...)``.
ENGINE_MODES = ("auto", "native", "columnar")

#: Minimum base rows under a subtree before ``auto`` sends it columnar.
DEFAULT_AUTO_ROW_THRESHOLD = 512

#: Operators that make a columnar subtree worth a transfer round-trip.
_WORTHWHILE_NODES = (Filter, Project, Join, SemiJoin, SetOperation)


@dataclass(frozen=True)
class PreparedPlan:
    """An executable plan plus the engine decision that produced it."""

    plan: PlanNode
    engine: Engine
    #: Human-readable decision: ``native``, ``columnar``, or
    #: ``native+columnar`` for mixed trees (shown by ``explain`` and
    #: ``profile ask``).
    label: str
    #: Number of Transfer boundaries inserted (0 for single-engine plans).
    transfers: int

    def execute(self):
        """Run the prepared plan on its chosen engine."""
        return self.engine.execute(self.plan)


def pin_scan_statistics(plan: PlanNode) -> dict[int, int]:
    """Read every scanned table's row count exactly once, up front.

    Engine selection consults these *pinned* statistics instead of live
    ``len(table)``: under concurrent DML a live read per subtree could
    observe different table states for the decision and the execution
    (or even within one decision), making ``auto`` mode nondeterministic.
    One read per distinct table object — taken against the session's
    snapshot when the plan scans snapshot tables — keeps the whole
    selection (and its explain output) a function of a single observed
    state.
    """
    counts: dict[int, int] = {}
    _collect_scan_counts(plan, counts)
    return counts


def _collect_scan_counts(plan: PlanNode, counts: dict[int, int]) -> None:
    if isinstance(plan, Scan):
        key = id(plan.table)
        if key not in counts:
            counts[key] = len(plan.table)
        return
    for child in plan.children:
        _collect_scan_counts(child, counts)


def base_row_count(
    plan: PlanNode, statistics: "dict[int, int] | None" = None
) -> int:
    """Total stored rows in the tables scanned under *plan*.

    With *statistics* (a :func:`pin_scan_statistics` map) the counts come
    from the pinned snapshot; without it, live ``len(table)`` (kept for
    standalone callers)."""
    if isinstance(plan, Scan):
        if statistics is not None:
            return statistics[id(plan.table)]
        return len(plan.table)
    return sum(base_row_count(child, statistics) for child in plan.children)


def select_engine(
    plan: PlanNode,
    mode: str = "auto",
    threshold: int = DEFAULT_AUTO_ROW_THRESHOLD,
    statistics: "dict[int, int] | None" = None,
) -> PreparedPlan:
    """Pick an engine for *plan* and insert Transfer boundaries as needed.

    *statistics* optionally pins the per-table row counts the decision
    uses (see :func:`pin_scan_statistics`); omitted, they are pinned here
    — either way every size check in one selection observes one state.
    """
    if mode not in ENGINE_MODES:
        raise PlanError(
            f"unknown engine {mode!r} (expected one of {ENGINE_MODES})"
        )
    from . import get_engine

    native = get_engine("native")
    if mode == "native":
        return PreparedPlan(plan, native, "native", 0)

    columnar = get_engine("columnar")
    # In explicit columnar mode every worthwhile subtree goes columnar
    # regardless of size; auto applies the row threshold per subtree.
    minimum_rows = 0 if mode == "columnar" else threshold
    if statistics is None:
        statistics = pin_scan_statistics(plan)

    if columnar.supports_tree(plan) and _worthwhile(plan):
        if base_row_count(plan, statistics) >= minimum_rows:
            return PreparedPlan(plan, columnar, "columnar", 0)
        return PreparedPlan(plan, native, "native", 0)

    rewritten, transfers = _insert_transfers(
        plan, columnar, minimum_rows, statistics
    )
    if transfers == 0:
        return PreparedPlan(plan, native, "native", 0)
    return PreparedPlan(rewritten, native, "native+columnar", transfers)


def _worthwhile(plan: PlanNode) -> bool:
    if isinstance(plan, _WORTHWHILE_NODES):
        return True
    return any(_worthwhile(child) for child in plan.children)


def _insert_transfers(
    node: PlanNode,
    columnar: Engine,
    minimum_rows: int,
    statistics: dict[int, int],
) -> tuple[PlanNode, int]:
    """Wrap maximal supported, worthwhile, large-enough subtrees.

    Walks top-down: the first fully-supported subtree on each path gets a
    single Transfer (maximality); unsupported nodes are rebuilt with their
    processed children.
    """
    if (
        columnar.supports_tree(node)
        and _worthwhile(node)
        and base_row_count(node, statistics) >= minimum_rows
    ):
        return Transfer(node, columnar.name), 1
    transfers = 0
    new_children: list[PlanNode] = []
    changed = False
    for child in node.children:
        new_child, count = _insert_transfers(
            child, columnar, minimum_rows, statistics
        )
        transfers += count
        changed = changed or new_child is not child
        new_children.append(new_child)
    if not changed:
        return node, transfers
    return _rebuild(node, new_children), transfers


def _rebuild(node: PlanNode, children: list[PlanNode]) -> PlanNode:
    """Reconstruct *node* over new children (rebinds expressions against
    the — unchanged — child schemas, like the optimizer's rebuilds)."""
    if isinstance(node, Filter):
        return Filter(children[0], node.predicate)
    if isinstance(node, Project):
        return Project(children[0], node.items, node.distinct)
    if isinstance(node, Alias):
        return Alias(children[0], node.name)
    if isinstance(node, Join):
        return Join(children[0], children[1], node.condition, node.kind)
    if isinstance(node, SemiJoin):
        return SemiJoin(children[0], children[1], node.probe, node.negated)
    if isinstance(node, SetOperation):
        return SetOperation(children[0], children[1], node.kind)
    if isinstance(node, Aggregate):
        return Aggregate(children[0], node.group_by, node.aggregates)
    if isinstance(node, Sort):
        return Sort(children[0], node.keys)
    if isinstance(node, Limit):
        return Limit(children[0], node.count, node.offset)
    if isinstance(node, Transfer):
        return Transfer(children[0], node.engine)
    if children:  # pragma: no cover - future node types
        raise PlanError(
            f"cannot rebuild plan node {type(node).__name__} for engine "
            f"selection"
        )
    return node
