"""The Engine interface: pluggable executors over one logical plan tree.

An :class:`Engine` turns an immutable logical relation tree
(:mod:`repro.algebra.plan`) into a lineage-annotated
:class:`~repro.algebra.rows.ResultSet`.  Engines differ only in *how* rows
are produced — the native engine walks row-at-a-time handlers, the
columnar engine streams vectorized batches — never in *what* they produce:
every engine must emit the same rows in the same order with structurally
identical lineage formulas, so confidences and increment-strategy costs
are bit-identical regardless of which engine ran the plan (enforced by
the differential suite, see ``docs/ENGINES.md``).

Mixed plans are supported through :class:`~repro.algebra.plan.Transfer`
nodes (after lsst.daf.relation): a transfer marks the boundary where a
subtree's rows are materialized out of one engine's representation and
handed to another.
"""

from __future__ import annotations

from ..algebra.plan import PlanNode
from ..algebra.rows import ResultSet

__all__ = ["Engine"]


class Engine:
    """Base class for execution engines.

    Subclasses set :attr:`name` (the identifier used by ``--engine``,
    ``Transfer`` nodes, and per-engine metrics) and implement
    :meth:`execute`.  :meth:`supports` reports per-node capability; engine
    selection uses it to place transfer boundaries inside mixed plans.
    """

    #: Registry identifier; also the metric namespace ``executor.<name>.*``.
    name: str = "abstract"

    def execute(self, plan: PlanNode) -> ResultSet:
        """Run *plan* and return its annotated result set."""
        raise NotImplementedError

    def supports(self, node: PlanNode) -> bool:
        """Whether this engine can execute *node* itself (one node, not
        its subtree)."""
        return True

    def supports_tree(self, plan: PlanNode) -> bool:
        """Whether every node of *plan*'s tree is supported."""
        if not self.supports(plan):
            return False
        return all(self.supports_tree(child) for child in plan.children)

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"<{type(self).__name__} {self.name!r}>"
