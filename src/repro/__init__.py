"""repro — Policy-Compliant Query Evaluation with data confidence policies.

A complete, from-scratch implementation of Dai, Lin, Kantarcioglu, Bertino,
Celikel, Thuraisingham, *Query Processing Techniques for Compliance with
Data Confidence Policies* (SDM @ VLDB 2009), and every substrate it needs:

* :mod:`repro.storage` — typed relational storage with per-tuple
  confidence and cost-model annotations;
* :mod:`repro.sql` / :mod:`repro.algebra` — a SQL engine whose results
  carry boolean lineage over base tuples;
* :mod:`repro.lineage` — exact (and Monte-Carlo) probability of lineage
  under tuple independence;
* :mod:`repro.trust` — provenance-based confidence assignment;
* :mod:`repro.policy` — RBAC roles, purposes and ⟨role, purpose, β⟩
  confidence policies enforced on query results;
* :mod:`repro.cost` — cost-of-confidence models (linear / binomial /
  exponential / logarithmic);
* :mod:`repro.increment` — the paper's three strategy-finding algorithms
  (exact branch-and-bound with heuristics H1–H4, two-phase greedy,
  divide-and-conquer over a partitioned result graph);
* :mod:`repro.core` — the PCQE engine tying it all together;
* :mod:`repro.obs` — tracing spans, metrics, and profiling for every
  stage above (see ``docs/OBSERVABILITY.md``);
* :mod:`repro.workload` — the §5.1 synthetic-workload generator and the
  paper's running example as ready-made scenarios.

Quickstart::

    from repro import PCQEngine, QueryRequest
    from repro.workload import venture_capital_database

    scenario = venture_capital_database()
    engine = PCQEngine(scenario.db, scenario.policies)
    result = engine.execute(
        QueryRequest(scenario.QUERY, purpose="investment",
                     required_fraction=0.5),
        user="bob",
    )
    print(result.status, result.rows)
"""

from . import obs
from .core import (
    CostQuote,
    PCQEngine,
    PCQEResult,
    QueryRequest,
    QueryStatus,
    make_solver,
)
from .errors import ReproError
from .storage import Database, Schema, TupleId

__version__ = "1.0.0"

__all__ = [
    "PCQEngine",
    "QueryRequest",
    "QueryStatus",
    "PCQEResult",
    "CostQuote",
    "make_solver",
    "Database",
    "Schema",
    "TupleId",
    "ReproError",
    "obs",
    "__version__",
]
