"""Concrete example datasets.

:func:`venture_capital_database` reproduces the paper's running example
(§3.1, Tables 1–2) exactly: the *Proposal* and *CompanyInfo* relations,
tuple confidences, the two confidence policies P1/P2, and cost models under
which improving tuple 02 by 0.1 costs 100 while tuple 03 costs 10.

:func:`healthcare_database` builds the cancer-registry scenario the
introduction motivates via Malin et al.: registry and administrative data
are cheap and plentiful, survey data costs more, and medical-record data is
accurate but expensive to collect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..cost import BinomialCost, ExponentialCost, LinearCost
from ..policy import PolicyStore
from ..storage import Database, REAL, Schema, TEXT, TupleId

__all__ = [
    "VentureCapitalScenario",
    "venture_capital_database",
    "healthcare_database",
    "HealthcareScenario",
]


@dataclass
class VentureCapitalScenario:
    """The running example's database, policies and notable tuple ids."""

    db: Database
    policies: PolicyStore
    proposal_ids: dict[str, TupleId]
    company_ids: dict[str, TupleId]

    #: The query of §3.1: companies asking for < $1 M, with their income.
    QUERY = (
        "SELECT ci.Company, ci.Income "
        "FROM (SELECT DISTINCT Company FROM Proposal WHERE Funding < 1.0) "
        "AS cand JOIN CompanyInfo AS ci ON cand.Company = ci.Company"
    )


def venture_capital_database() -> VentureCapitalScenario:
    """Tables 1 and 2 of the paper, with the §3.1 cost structure.

    Confidences follow the example where stated (p02 = 0.3, p03 = 0.4,
    p13 = 0.1 so the joined result has confidence 0.058); remaining tuples
    get plausible values.  Cost models make a +0.1 increment on tuple 02
    cost 100 and on tuple 03 cost 10, as in the worked example.
    """
    db = Database("venture_capital")
    proposal = db.create_table(
        "Proposal",
        Schema.of(("Company", TEXT), ("Proposal", TEXT), ("Funding", REAL)),
    )
    company_info = db.create_table(
        "CompanyInfo", Schema.of(("Company", TEXT), ("Income", REAL))
    )

    proposal_rows = [
        # label, company, proposal text, funding ($M), confidence, +0.1 cost
        ("01", "AcmeBio", "gene sequencing platform", 1.8, 0.50, 40.0),
        ("02", "BlueRiver", "solar microgrid pilot", 0.8, 0.30, 100.0),
        ("03", "BlueRiver", "battery recycling line", 0.9, 0.40, 10.0),
        ("04", "Cybervault", "zero-trust storage", 2.5, 0.60, 25.0),
        ("05", "DeltaFoods", "vertical farming", 0.7, 0.45, 30.0),
        ("06", "Epsilon", "drone logistics", 3.1, 0.35, 55.0),
    ]
    proposal_ids: dict[str, TupleId] = {}
    for label, company, text, funding, confidence, step_cost in proposal_rows:
        proposal_ids[label] = proposal.insert(
            [company, text, funding],
            confidence=confidence,
            cost_model=LinearCost(rate=step_cost * 10.0),
        )

    company_rows = [
        ("11", "AcmeBio", 4.2, 0.20, 20.0),
        ("12", "Cybervault", 7.5, 0.25, 35.0),
        ("13", "BlueRiver", 2.0, 0.10, 10.0),
        ("14", "DeltaFoods", 1.1, 0.15, 15.0),
        ("15", "Zenith", 9.0, 0.30, 45.0),
    ]
    company_ids: dict[str, TupleId] = {}
    for label, company, income, confidence, step_cost in company_rows:
        company_ids[label] = company_info.insert(
            [company, income],
            confidence=confidence,
            cost_model=LinearCost(rate=step_cost * 10.0),
        )

    policies = PolicyStore(default_threshold=0.0)
    policies.add_role("Secretary")
    policies.add_role("Manager", inherits=["Secretary"])
    policies.add_purpose("analysis")
    policies.add_purpose("investment")
    policies.add_user("alice", roles=["Secretary"])
    policies.add_user("bob", roles=["Manager"])
    # P1: <Secretary, analysis, 0.05>; P2: <Manager, investment, 0.06>
    policies.add_policy("Secretary", "analysis", 0.05)
    policies.add_policy("Manager", "investment", 0.06)

    return VentureCapitalScenario(db, policies, proposal_ids, company_ids)


@dataclass
class HealthcareScenario:
    """Cancer-registry scenario: tiered data sources with tiered costs."""

    db: Database
    policies: PolicyStore


def healthcare_database(
    patients: int = 200, seed: int = 7
) -> HealthcareScenario:
    """A registry of patients, treatments and outcomes across data tiers.

    Source tiers and cost models (introduction's Malin et al. guideline):

    * ``registry`` — cancer registry / administrative data: confidence
      ~0.5, cheap linear improvement;
    * ``survey`` — patient/physician surveys: confidence ~0.65, binomial
      (increasingly expensive) improvement;
    * ``chart`` — medical-record abstraction: confidence ~0.8, expensive
      exponential improvement (and near-certain attainable maximum);
    """
    rng = random.Random(seed)
    db = Database("healthcare")
    registry = db.create_table(
        "Patients",
        Schema.of(
            ("PatientId", TEXT),
            ("Diagnosis", TEXT),
            ("Stage", TEXT),
            ("Source", TEXT),
        ),
    )
    treatments = db.create_table(
        "Treatments",
        Schema.of(
            ("PatientId", TEXT),
            ("Treatment", TEXT),
            ("ResponseRate", REAL),
            ("Source", TEXT),
        ),
    )

    diagnoses = ["breast", "lung", "colon", "prostate", "lymphoma"]
    stages = ["I", "II", "III", "IV"]
    regimens = ["chemo-A", "chemo-B", "radiation", "surgery", "immuno"]

    def tiered_annotation(tier: str) -> tuple[float, object]:
        if tier == "registry":
            return rng.uniform(0.45, 0.55), LinearCost(
                rate=rng.uniform(30, 60), max_confidence=0.9
            )
        if tier == "survey":
            return rng.uniform(0.6, 0.7), BinomialCost(
                linear=rng.uniform(40, 80),
                quadratic=rng.uniform(80, 160),
                max_confidence=0.95,
            )
        return rng.uniform(0.75, 0.85), ExponentialCost(
            scale=rng.uniform(8, 20), shape=3.5, max_confidence=1.0
        )

    tiers = ["registry", "survey", "chart"]
    for index in range(patients):
        pid = f"P{index:04d}"
        tier = rng.choices(tiers, weights=[0.6, 0.3, 0.1])[0]
        confidence, cost_model = tiered_annotation(tier)
        registry.insert(
            [pid, rng.choice(diagnoses), rng.choice(stages), tier],
            confidence=confidence,
            cost_model=cost_model,
        )
        for _ in range(rng.randint(1, 2)):
            tier = rng.choices(tiers, weights=[0.5, 0.3, 0.2])[0]
            confidence, cost_model = tiered_annotation(tier)
            treatments.insert(
                [pid, rng.choice(regimens), round(rng.uniform(0.1, 0.9), 2), tier],
                confidence=confidence,
                cost_model=cost_model,
            )

    policies = PolicyStore(default_threshold=0.0)
    policies.add_role("Researcher")
    policies.add_role("Oncologist")
    policies.add_role("PolicyMaker")
    policies.add_purpose("research")
    policies.add_purpose("hypothesis-generation", parent="research")
    policies.add_purpose("care")
    policies.add_purpose("treatment-evaluation", parent="care")
    policies.add_user("rachel", roles=["Researcher"])
    policies.add_user("omar", roles=["Oncologist"])
    policies.add_user("petra", roles=["PolicyMaker"])
    # Hypothesis generation tolerates noisy data; treatment evaluation
    # outside a controlled study needs accurate data (Malin et al.).
    policies.add_policy("Researcher", "hypothesis-generation", 0.3)
    policies.add_policy("Researcher", "research", 0.45)
    policies.add_policy("Oncologist", "treatment-evaluation", 0.75)
    policies.add_policy("PolicyMaker", "care", 0.6)

    return HealthcareScenario(db, policies)
