"""Synthetic workloads (paper §5.1) and concrete example scenarios."""

from .generator import GeneratedWorkload, WorkloadSpec, generate_problem
from .scenarios import (
    HealthcareScenario,
    VentureCapitalScenario,
    healthcare_database,
    venture_capital_database,
)

__all__ = [
    "WorkloadSpec",
    "GeneratedWorkload",
    "generate_problem",
    "VentureCapitalScenario",
    "venture_capital_database",
    "HealthcareScenario",
    "healthcare_database",
]
