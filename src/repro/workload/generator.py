"""Synthetic workload generator (paper §5.1, Table 4).

The paper's experiments generate base tuples with "a randomly generated
confidence value around 0.1 and a cost function" drawn from the binomial /
exponential / logarithm families, associate "a certain number of base
tuples with each result tuple", and use "randomly generated DAGs to
represent queries" — i.e. random monotone lineage over the base tuples.
This module reproduces that setup deterministically from a seed.

Key knobs (Table 4 defaults in parentheses): data size = number of distinct
base tuples (10K), base tuples per result (5), increment step δ (0.1),
required fraction θ (50 %), confidence threshold β (0.6).

``locality`` controls how much results share base tuples: each result
draws its tuples from a sliding window over the tuple array, so nearby
results overlap — the structure the D&C partitioner exploits.  With
``locality=0`` tuples are drawn globally at random (minimal sharing).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..cost import CostModelSampler
from ..errors import WorkloadError
from ..lineage.circuit import CircuitPool
from ..lineage.confidence import ConfidenceFunction
from ..lineage.formula import Lineage, lineage_and, lineage_or, var
from ..storage.tuples import TupleId
from ..increment.problem import BaseTupleState, IncrementProblem

__all__ = ["WorkloadSpec", "GeneratedWorkload", "generate_problem"]


@dataclass
class WorkloadSpec:
    """Parameters of one synthetic strategy-finding instance.

    Defaults follow Table 4 of the paper (bold values).
    """

    data_size: int = 10_000
    tuples_per_result: int = 5
    delta: float = 0.1
    theta: float = 0.5
    threshold: float = 0.6
    confidence_center: float = 0.1
    confidence_spread: float = 0.05
    or_bias: float = 0.55
    locality: float = 3.0
    cost_sampler: CostModelSampler = field(default_factory=CostModelSampler)
    table_name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.data_size < 1:
            raise WorkloadError(f"data_size must be positive, got {self.data_size}")
        if self.tuples_per_result < 1:
            raise WorkloadError(
                f"tuples_per_result must be positive, got {self.tuples_per_result}"
            )
        if self.tuples_per_result > self.data_size:
            raise WorkloadError(
                "tuples_per_result cannot exceed data_size "
                f"({self.tuples_per_result} > {self.data_size})"
            )
        if not 0.0 < self.theta <= 1.0:
            raise WorkloadError(f"theta must be in (0, 1], got {self.theta}")
        if not 0.0 <= self.threshold <= 1.0:
            raise WorkloadError(
                f"threshold must be in [0, 1], got {self.threshold}"
            )
        if not 0.0 <= self.or_bias <= 1.0:
            raise WorkloadError(f"or_bias must be in [0, 1], got {self.or_bias}")
        if self.locality < 0:
            raise WorkloadError(f"locality must be >= 0, got {self.locality}")

    @property
    def result_count(self) -> int:
        """Number of intermediate result tuples.

        Each base tuple participates in roughly one result on average —
        "data size means the total number of distinct base tuples
        associated with results of a single query".
        """
        return max(1, self.data_size // self.tuples_per_result)


@dataclass
class GeneratedWorkload:
    """A generated instance plus its derived problem."""

    spec: WorkloadSpec
    seed: int
    problem: IncrementProblem
    requested_count: int
    achievable_count: int

    @property
    def clamped(self) -> bool:
        """Whether the θ requirement had to be reduced to stay feasible."""
        return self.requested_count > self.achievable_count


def _random_confidence(rng: random.Random, spec: WorkloadSpec) -> float:
    low = max(0.0, spec.confidence_center - spec.confidence_spread)
    high = min(1.0, spec.confidence_center + spec.confidence_spread)
    return rng.uniform(low, high)


def _random_lineage(
    rng: random.Random, variables: list[Lineage], or_bias: float
) -> Lineage:
    """A random monotone AND/OR tree over *variables* (each used once)."""
    if len(variables) == 1:
        return variables[0]
    split = rng.randint(1, len(variables) - 1)
    left = _random_lineage(rng, variables[:split], or_bias)
    right = _random_lineage(rng, variables[split:], or_bias)
    if rng.random() < or_bias:
        return lineage_or(left, right)
    return lineage_and(left, right)


def generate_problem(spec: WorkloadSpec, seed: int = 0) -> GeneratedWorkload:
    """Generate one strategy-finding instance from *spec* and *seed*.

    The required result count is ``ceil(θ · n)`` (all generated results
    start below the threshold), clamped to the number of results that can
    reach β at all — random AND-heavy lineage over capped-confidence
    tuples occasionally produces unreachable results, and the paper's
    requirement is meaningless beyond the achievable set.
    """
    rng = random.Random(seed)
    tuple_states: dict[TupleId, BaseTupleState] = {}
    tids: list[TupleId] = []
    for ordinal in range(spec.data_size):
        tid = TupleId(spec.table_name, ordinal)
        tuple_states[tid] = BaseTupleState(
            tid,
            _random_confidence(rng, spec),
            spec.cost_sampler.sample(rng),
        )
        tids.append(tid)

    results: list[ConfidenceFunction] = []
    circuit_pool = CircuitPool()  # one pool per instance (shared circuits)
    window = max(
        spec.tuples_per_result,
        int(round(spec.tuples_per_result * max(spec.locality, 1.0))),
    )
    for index in range(spec.result_count):
        if spec.locality > 0 and window < spec.data_size:
            start = rng.randint(0, spec.data_size - window)
            pool = tids[start : start + window]
        else:
            pool = tids
        chosen = rng.sample(pool, min(spec.tuples_per_result, len(pool)))
        lineage = _random_lineage(rng, [var(tid) for tid in chosen], spec.or_bias)
        results.append(
            ConfidenceFunction(lineage, f"λ{index}", pool=circuit_pool)
        )

    requested = math.ceil(spec.theta * len(results) - 1e-9)
    probe = IncrementProblem(
        results, tuple_states, spec.threshold, 0, spec.delta
    )
    achievable = probe.satisfied_count(probe.maximal_assignment())
    required = min(requested, achievable)
    problem = IncrementProblem(
        results, tuple_states, spec.threshold, required, spec.delta
    )
    return GeneratedWorkload(spec, seed, problem, requested, achievable)
