"""``python -m repro`` — the PCQE interactive shell."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
