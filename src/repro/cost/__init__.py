"""Cost-of-confidence models (paper §1, §5.1).

See :mod:`repro.cost.functions` for the model catalogue and
:mod:`repro.cost.sampling` for the random model factory used by the
synthetic workload generator.
"""

from .functions import (
    BinomialCost,
    CostModel,
    ExponentialCost,
    FreeCost,
    LinearCost,
    LogarithmicCost,
    TabulatedCost,
)
from .sampling import CostModelSampler

__all__ = [
    "CostModel",
    "LinearCost",
    "BinomialCost",
    "ExponentialCost",
    "LogarithmicCost",
    "TabulatedCost",
    "FreeCost",
    "CostModelSampler",
]
