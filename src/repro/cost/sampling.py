"""Random cost-model factory for synthetic workloads.

The paper's experiments assign each base tuple "a cost function ...; the
types of cost functions include the binomial, exponential and logarithm
functions" (§5.1).  :class:`CostModelSampler` reproduces that setup: given a
seeded :class:`random.Random` it draws a family uniformly (weights are
configurable) and then draws that family's parameters from calibrated ranges
so the three families produce costs of comparable magnitude over ``[0, 1]``.
"""

from __future__ import annotations

import random
from typing import Mapping

from ..errors import CostModelError
from .functions import (
    BinomialCost,
    CostModel,
    ExponentialCost,
    LinearCost,
    LogarithmicCost,
)

__all__ = ["CostModelSampler"]

_DEFAULT_WEIGHTS: dict[str, float] = {
    "binomial": 1.0,
    "exponential": 1.0,
    "logarithmic": 1.0,
}

_KNOWN_FAMILIES = ("linear", "binomial", "exponential", "logarithmic")


class CostModelSampler:
    """Draws random :class:`~repro.cost.CostModel` instances.

    Parameters
    ----------
    weights:
        Relative probability of each family.  Keys must be a subset of
        ``{"linear", "binomial", "exponential", "logarithmic"}``.  Defaults to
        the paper's three families, equally likely.
    base_scale:
        Multiplies every drawn cost; use it to move the whole workload's cost
        scale (the paper reports costs in the hundreds-to-thousands range).
    max_confidence_range:
        Interval the per-tuple confidence cap is drawn from.  The paper notes
        some tuples cannot reach confidence 1 ("its maximum possible
        confidence level", §4.1); default keeps most tuples cappable at 1.
    """

    def __init__(
        self,
        weights: Mapping[str, float] | None = None,
        base_scale: float = 1.0,
        max_confidence_range: tuple[float, float] = (0.9, 1.0),
    ) -> None:
        chosen = dict(_DEFAULT_WEIGHTS if weights is None else weights)
        unknown = set(chosen) - set(_KNOWN_FAMILIES)
        if unknown:
            raise CostModelError(f"unknown cost families: {sorted(unknown)}")
        if not chosen or all(weight <= 0 for weight in chosen.values()):
            raise CostModelError("at least one family must have positive weight")
        if base_scale <= 0:
            raise CostModelError(f"base_scale must be positive, got {base_scale}")
        low, high = max_confidence_range
        if not 0.0 < low <= high <= 1.0:
            raise CostModelError(
                f"max_confidence_range must satisfy 0 < low <= high <= 1, "
                f"got {max_confidence_range}"
            )
        self._families = [family for family, weight in chosen.items() if weight > 0]
        self._weights = [chosen[family] for family in self._families]
        self._base_scale = float(base_scale)
        self._cap_range = (float(low), float(high))

    def sample(self, rng: random.Random) -> CostModel:
        """Draw one cost model using *rng* for all randomness."""
        family = rng.choices(self._families, weights=self._weights, k=1)[0]
        cap = rng.uniform(*self._cap_range)
        scale = self._base_scale
        if family == "linear":
            return LinearCost(rate=scale * rng.uniform(20.0, 200.0), max_confidence=cap)
        if family == "binomial":
            return BinomialCost(
                linear=scale * rng.uniform(10.0, 80.0),
                quadratic=scale * rng.uniform(20.0, 150.0),
                max_confidence=cap,
            )
        if family == "exponential":
            return ExponentialCost(
                scale=scale * rng.uniform(2.0, 15.0),
                shape=rng.uniform(2.0, 4.0),
                max_confidence=cap,
            )
        if family == "logarithmic":
            return LogarithmicCost(
                scale=scale * rng.uniform(15.0, 90.0),
                saturation=rng.uniform(0.85, 0.98),
                max_confidence=cap,
            )
        raise CostModelError(f"unhandled family {family!r}")  # pragma: no cover
