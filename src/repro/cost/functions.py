"""Cost-of-confidence models.

The paper assumes "each data item in the database is associated with a cost
function that indicates the cost for improving the confidence value of this
data item" (§1), and the experiments draw cost functions from three families:
binomial, exponential and logarithm (§5.1).

A cost model maps an *absolute* confidence value ``p`` in ``[0, max_confidence]``
to a cumulative acquisition cost ``c(p)``; the cost of an *increment* from
``p`` to ``p*`` is ``c(p*) − c(p)``.  All models are strictly increasing in
``p`` on their domain so increments always cost a positive amount.

Models
------
* :class:`LinearCost` — ``c(p) = rate · p``; constant marginal cost.
* :class:`BinomialCost` — ``c(p) = a·p + b·p²`` (the paper's "binomial",
  i.e. a degree-2 polynomial); marginal cost grows linearly.
* :class:`ExponentialCost` — ``c(p) = scale · (e^{shape·p} − 1)``; marginal
  cost explodes near certainty.
* :class:`LogarithmicCost` — ``c(p) = −scale · ln(1 − p·(1−floor))`` style
  curve; cheap at first, unbounded as ``p → 1`` (here implemented as
  ``−scale · ln(1 − saturation·p)`` with ``saturation < 1`` so cost stays
  finite at ``p = 1``).
* :class:`TabulatedCost` — piecewise-linear interpolation of measured
  ``(p, cost)`` points, for calibrating against a real acquisition process.

Every model carries a ``max_confidence`` cap: some data can never be verified
to certainty (§4.1 "1 (or its maximum possible confidence level)").
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import CostModelError

__all__ = [
    "CostModel",
    "LinearCost",
    "BinomialCost",
    "ExponentialCost",
    "LogarithmicCost",
    "TabulatedCost",
    "FreeCost",
]

_EPS = 1e-12


class CostModel:
    """Base class for cost-of-confidence models.

    Subclasses implement :meth:`cumulative`; increment costs, validation and
    the ``max_confidence`` cap are shared here.
    """

    def __init__(self, max_confidence: float = 1.0) -> None:
        if not 0.0 < max_confidence <= 1.0:
            raise CostModelError(
                f"max_confidence must be in (0, 1], got {max_confidence}"
            )
        self._max_confidence = float(max_confidence)

    @property
    def max_confidence(self) -> float:
        """The highest confidence this data item can ever be raised to."""
        return self._max_confidence

    def cumulative(self, confidence: float) -> float:
        """Cumulative cost of holding *confidence* (0 at confidence 0)."""
        raise NotImplementedError

    def increment_cost(self, current: float, target: float) -> float:
        """Cost of raising confidence from *current* to *target*.

        Raises
        ------
        CostModelError
            If *target* < *current*, either value is outside ``[0, 1]``, or
            *target* exceeds :attr:`max_confidence`.
        """
        self._check_range(current, "current")
        self._check_range(target, "target")
        if target > self._max_confidence + _EPS:
            raise CostModelError(
                f"target {target} exceeds max confidence {self._max_confidence}"
            )
        if target < current - _EPS:
            raise CostModelError(
                f"target {target} is below current confidence {current}"
            )
        return max(0.0, self.cumulative(target) - self.cumulative(current))

    def marginal_cost(self, current: float, delta: float) -> float:
        """Cost of one increment step of size *delta* from *current*.

        The step is clamped at :attr:`max_confidence`; stepping from at-or-
        above the cap costs ``inf`` (the increment is impossible), which lets
        greedy gain computations rank capped tuples last without special
        cases.
        """
        if current >= self._max_confidence - _EPS:
            return math.inf
        target = min(current + delta, self._max_confidence)
        return self.increment_cost(current, target)

    @staticmethod
    def _check_range(value: float, label: str) -> None:
        if not 0.0 <= value <= 1.0 + _EPS:
            raise CostModelError(f"{label} confidence {value} outside [0, 1]")

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"{type(self).__name__}(max_confidence={self._max_confidence})"


class FreeCost(CostModel):
    """A zero-cost model; useful in tests and for already-verified data."""

    def cumulative(self, confidence: float) -> float:
        return 0.0


class LinearCost(CostModel):
    """``c(p) = rate · p`` — constant marginal cost per unit of confidence."""

    def __init__(self, rate: float, max_confidence: float = 1.0) -> None:
        super().__init__(max_confidence)
        if rate < 0:
            raise CostModelError(f"rate must be non-negative, got {rate}")
        self.rate = float(rate)

    def cumulative(self, confidence: float) -> float:
        return self.rate * confidence

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"LinearCost(rate={self.rate}, max_confidence={self.max_confidence})"


class BinomialCost(CostModel):
    """``c(p) = linear·p + quadratic·p²`` — the paper's "binomial" family."""

    def __init__(
        self,
        linear: float,
        quadratic: float,
        max_confidence: float = 1.0,
    ) -> None:
        super().__init__(max_confidence)
        if linear < 0 or quadratic < 0:
            raise CostModelError(
                f"coefficients must be non-negative, got {linear}, {quadratic}"
            )
        if linear == 0 and quadratic == 0:
            raise CostModelError("binomial cost must have a positive coefficient")
        self.linear = float(linear)
        self.quadratic = float(quadratic)

    def cumulative(self, confidence: float) -> float:
        return self.linear * confidence + self.quadratic * confidence * confidence

    def __repr__(self) -> str:  # pragma: no cover - display only
        return (
            f"BinomialCost(linear={self.linear}, quadratic={self.quadratic}, "
            f"max_confidence={self.max_confidence})"
        )


class ExponentialCost(CostModel):
    """``c(p) = scale · (e^{shape·p} − 1)`` — sharply rising marginal cost."""

    def __init__(
        self,
        scale: float,
        shape: float = 3.0,
        max_confidence: float = 1.0,
    ) -> None:
        super().__init__(max_confidence)
        if scale <= 0 or shape <= 0:
            raise CostModelError(
                f"scale and shape must be positive, got {scale}, {shape}"
            )
        self.scale = float(scale)
        self.shape = float(shape)

    def cumulative(self, confidence: float) -> float:
        return self.scale * (math.exp(self.shape * confidence) - 1.0)

    def __repr__(self) -> str:  # pragma: no cover - display only
        return (
            f"ExponentialCost(scale={self.scale}, shape={self.shape}, "
            f"max_confidence={self.max_confidence})"
        )


class LogarithmicCost(CostModel):
    """``c(p) = −scale · ln(1 − saturation·p)`` — diminishing-returns curve.

    With ``saturation`` strictly below 1 the cost stays finite at ``p = 1``;
    as ``saturation → 1`` certainty becomes arbitrarily expensive, modelling
    data that can be made very likely but never certain at bounded cost.
    """

    def __init__(
        self,
        scale: float,
        saturation: float = 0.95,
        max_confidence: float = 1.0,
    ) -> None:
        super().__init__(max_confidence)
        if scale <= 0:
            raise CostModelError(f"scale must be positive, got {scale}")
        if not 0.0 < saturation < 1.0:
            raise CostModelError(
                f"saturation must be in (0, 1), got {saturation}"
            )
        self.scale = float(scale)
        self.saturation = float(saturation)

    def cumulative(self, confidence: float) -> float:
        return -self.scale * math.log(1.0 - self.saturation * confidence)

    def __repr__(self) -> str:  # pragma: no cover - display only
        return (
            f"LogarithmicCost(scale={self.scale}, saturation={self.saturation}, "
            f"max_confidence={self.max_confidence})"
        )


class TabulatedCost(CostModel):
    """Piecewise-linear cost through measured ``(confidence, cost)`` points.

    Points must be sorted by confidence with strictly increasing costs; the
    first point's confidence acts as a free floor (cost 0 below it), and the
    last point's confidence becomes the model's :attr:`max_confidence` unless
    a lower cap is supplied.
    """

    def __init__(
        self,
        points: Sequence[tuple[float, float]],
        max_confidence: float | None = None,
    ) -> None:
        if len(points) < 2:
            raise CostModelError("tabulated cost needs at least two points")
        confidences = [p for p, _ in points]
        costs = [c for _, c in points]
        if any(b <= a for a, b in zip(confidences, confidences[1:])):
            raise CostModelError("tabulated confidences must strictly increase")
        if any(b < a for a, b in zip(costs, costs[1:])):
            raise CostModelError("tabulated costs must be non-decreasing")
        if not 0.0 <= confidences[0] and confidences[-1] <= 1.0:
            raise CostModelError("tabulated confidences must lie in [0, 1]")
        cap = confidences[-1] if max_confidence is None else max_confidence
        super().__init__(min(cap, confidences[-1]))
        self._points = [(float(p), float(c)) for p, c in points]

    def cumulative(self, confidence: float) -> float:
        points = self._points
        if confidence <= points[0][0]:
            return points[0][1]
        for (p0, c0), (p1, c1) in zip(points, points[1:]):
            if confidence <= p1:
                fraction = (confidence - p0) / (p1 - p0)
                return c0 + fraction * (c1 - c0)
        return points[-1][1]

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"TabulatedCost({self._points!r})"
