"""Concurrent multi-session serving for the PCQE (ROADMAP item 1).

Layers, bottom up:

* :mod:`~repro.server.mvcc` — copy-on-write table generations keyed by
  the WAL ``seq``; snapshot isolation with pin-count GC.
* :mod:`~repro.server.session` — per-connection sessions: a pinned
  snapshot, a ⟨user, role, purpose⟩ policy context, read-your-own-writes.
* :mod:`~repro.server.protocol` — length-prefixed JSON frames.
* :mod:`~repro.server.server` — the asyncio socket server with
  deadline-based admission control and obs instrumentation.
* :mod:`~repro.server.client` — the blocking client (CLI / tests /
  benchmarks) and the retrying idempotent :class:`RetryingClient`.
* :mod:`~repro.server.faults` — deterministic, seeded network fault
  injection for chaos testing the layers above.
* :mod:`~repro.server.replication` — WAL-shipping replication: replica
  nodes, epoch-fenced failover, and the online integrity scrubber.

See ``docs/SERVING.md`` for the protocol and semantics, and
``docs/ROBUSTNESS.md`` ("Serving under failure") for the failure model.
"""

from .client import (
    RetriesExhaustedError,
    RetryingClient,
    ServerClient,
    ServerReplyError,
)
from .faults import (
    NETWORK_FAULT_POINTS,
    REPLICATION_FAULT_POINTS,
    FaultAction,
    FaultySocket,
    NetworkFaultInjector,
    NetworkFaultSpec,
    iter_network_fault_specs,
    iter_replication_fault_specs,
)
from .mvcc import MVCCDatabase, Snapshot, SnapshotDatabase, SnapshotTable
from .protocol import MAX_FRAME_BYTES, encode_frame, recv_frame, send_frame
from .server import PRIORITY_CLASSES, PCQEServer
from .session import Session, SessionContext, SessionDatabase
from .replication import PrimaryReplication, ReplicationFeed
from .replication.replica import Replica
from .replication.scrub import Scrubber

__all__ = [
    "MVCCDatabase",
    "Snapshot",
    "SnapshotDatabase",
    "SnapshotTable",
    "Session",
    "SessionContext",
    "SessionDatabase",
    "PCQEServer",
    "PRIORITY_CLASSES",
    "ServerClient",
    "ServerReplyError",
    "RetryingClient",
    "RetriesExhaustedError",
    "NetworkFaultInjector",
    "NetworkFaultSpec",
    "FaultAction",
    "FaultySocket",
    "NETWORK_FAULT_POINTS",
    "REPLICATION_FAULT_POINTS",
    "iter_network_fault_specs",
    "iter_replication_fault_specs",
    "PrimaryReplication",
    "ReplicationFeed",
    "Replica",
    "Scrubber",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "recv_frame",
    "send_frame",
]
