"""Concurrent multi-session serving for the PCQE (ROADMAP item 1).

Layers, bottom up:

* :mod:`~repro.server.mvcc` — copy-on-write table generations keyed by
  the WAL ``seq``; snapshot isolation with pin-count GC.
* :mod:`~repro.server.session` — per-connection sessions: a pinned
  snapshot, a ⟨user, role, purpose⟩ policy context, read-your-own-writes.
* :mod:`~repro.server.protocol` — length-prefixed JSON frames.
* :mod:`~repro.server.server` — the asyncio socket server with
  deadline-based admission control and obs instrumentation.
* :mod:`~repro.server.client` — the blocking client (CLI / tests /
  benchmarks).

See ``docs/SERVING.md`` for the protocol and semantics.
"""

from .client import ServerClient, ServerReplyError
from .mvcc import MVCCDatabase, Snapshot, SnapshotDatabase, SnapshotTable
from .protocol import MAX_FRAME_BYTES, encode_frame, recv_frame, send_frame
from .server import PCQEServer
from .session import Session, SessionContext, SessionDatabase

__all__ = [
    "MVCCDatabase",
    "Snapshot",
    "SnapshotDatabase",
    "SnapshotTable",
    "Session",
    "SessionContext",
    "SessionDatabase",
    "PCQEServer",
    "ServerClient",
    "ServerReplyError",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "recv_frame",
    "send_frame",
]
