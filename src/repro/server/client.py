"""A blocking socket client for the PCQE server.

Used by the ``connect`` CLI command, the integration tests, and
``benchmarks/serve_bench.py``.  One :class:`ServerClient` is one session:
the constructor performs the ``hello`` handshake, every call maps to one
request frame, and :meth:`close` says ``bye`` and closes the socket.

>>> with ServerClient("127.0.0.1", 7433, user="bob",
...                   purpose="investment") as client:
...     reply = client.ask("SELECT Company FROM Proposal", fraction=1.0)
...     reply["status"], reply["rows"]

Replies are the server's JSON objects verbatim.  A transport failure
raises :class:`~repro.errors.ProtocolError`; an application error reply
(``ok: false``) raises :class:`ServerReplyError` carrying the structured
error payload, so callers can branch on ``error["type"]`` (e.g.
``"AdmissionError"``) without string matching.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
import time
from typing import Any, Callable

from ..errors import ProtocolError, ServerError
from ..obs import get_metrics
from ..storage.durability.retry import RetryPolicy
from .faults import FaultySocket, NetworkFaultInjector
from .protocol import recv_frame, send_frame

__all__ = [
    "ServerClient",
    "ServerReplyError",
    "RetryingClient",
    "RetriesExhaustedError",
]


class ServerReplyError(ServerError):
    """The server answered ``ok: false``; :attr:`error` has the payload."""

    def __init__(self, error: dict[str, Any]) -> None:
        super().__init__(
            f"{error.get('type', 'ServerError')}: "
            f"{error.get('message', '(no message)')}"
        )
        self.error = error

    @property
    def type(self) -> str:
        return str(self.error.get("type", "ServerError"))


class ServerClient:
    """One connection = one session with a pinned snapshot."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        user: str,
        purpose: str,
        timeout: float | None = 30.0,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._closed = False
        hello = self.request(
            {"op": "hello", "user": user, "purpose": purpose}
        )
        self.session_id: int = hello["session"]
        self.seq: int = hello["seq"]
        self.role: str = hello.get("role", "")

    # -- plumbing ----------------------------------------------------------

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one frame, wait for the reply, raise on ``ok: false``."""
        if self._closed:
            raise ServerError("client is closed")
        send_frame(self._sock, message)
        reply = recv_frame(self._sock)
        if not reply.get("ok", False):
            raise ServerReplyError(reply.get("error", {}))
        if "seq" in reply:
            self.seq = reply["seq"]
        return reply

    def close(self) -> None:
        """Say ``bye`` (best effort) and close the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            send_frame(self._sock, {"op": "bye"})
            recv_frame(self._sock)
        except OSError:
            pass
        except ServerError:
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- operations --------------------------------------------------------

    def ask(
        self,
        sql: str,
        fraction: float = 1.0,
        *,
        deadline_ms: float | None = None,
    ) -> dict[str, Any]:
        """Run the PCQE pipeline; returns the status/rows/confidences reply."""
        message: dict[str, Any] = {
            "op": "ask",
            "sql": sql,
            "fraction": fraction,
        }
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return self.request(message)

    def profile(
        self,
        sql: str,
        fraction: float = 1.0,
        *,
        deadline_ms: float | None = None,
    ) -> dict[str, Any]:
        """``ask`` with a stage-by-stage profile report attached."""
        message: dict[str, Any] = {
            "op": "profile",
            "sql": sql,
            "fraction": fraction,
        }
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return self.request(message)

    def sql(self, sql: str) -> dict[str, Any]:
        """Run one SQL statement (SELECT reads the snapshot; DML commits)."""
        return self.request({"op": "sql", "sql": sql})

    def refresh(self) -> int:
        """Re-pin the latest generation; returns the new ``seq``."""
        return self.request({"op": "refresh"})["seq"]

    def metrics(self) -> str:
        """The server's OpenMetrics exposition text."""
        return self.request({"op": "metrics"})["openmetrics"]


# ---------------------------------------------------------------------------
# Retrying client
# ---------------------------------------------------------------------------


class RetriesExhaustedError(ServerError):
    """Every retry attempt failed; ``last_error`` is the final failure."""

    def __init__(self, attempts: int, last_error: BaseException) -> None:
        super().__init__(
            f"request failed after {attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


class _RetryableFailure(ServerError):
    """Internal: wraps a failure the retry loop is allowed to absorb."""

    def __init__(self, cause: BaseException, *, reconnect: bool) -> None:
        super().__init__(str(cause))
        self.cause = cause
        #: Transport-level failures poison the socket; server-side
        #: rejections (admission, overload, breaker) leave it healthy.
        self.reconnect = reconnect


_client_ids = itertools.count(1)


def _parse_endpoint(endpoint: "str | tuple[str, int]") -> tuple[str, int]:
    if isinstance(endpoint, tuple):
        return endpoint[0], int(endpoint[1])
    host, _, port = endpoint.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"endpoint must be 'host:port', got {endpoint!r}")
    return host, int(port)


class RetryingClient:
    """A :class:`ServerClient` hardened for lossy networks and overload.

    * **Retry with backoff + jitter** — transport failures and retryable
      server rejections (``error["retryable"]`` on the wire:
      ``AdmissionError``, ``OverloadError``, ``CircuitOpenError``,
      ``RequestTimeoutError``, ``ServerDrainingError``) are retried up to
      *attempts* times with capped exponential backoff, reusing the
      durability layer's :class:`~repro.storage.durability.retry.RetryPolicy`
      semantics.  Terminal errors (bad SQL, unknown user, policy
      violations) raise :class:`ServerReplyError` immediately.
    * **Idempotency keys** — mutating requests (``sql``, ``ask``,
      ``profile``) carry a per-request ``idempotency_key`` minted once
      and reused across retries, and the ``hello`` carries a stable
      ``client_id``, so a retry after an *ambiguous* failure (the
      request may or may not have executed) is deduplicated server-side:
      the completed reply is replayed instead of the work re-running.
    * **Request ids** — every frame carries a monotonically increasing
      ``rid`` which the server echoes; replies with a stale ``rid``
      (e.g. an injected duplicate) are discarded, keeping the stream in
      sync.
    * **Reconnect** — a dead socket is replaced (fresh ``hello`` with
      the same ``client_id``) transparently before the next attempt.
    * **Endpoint rotation & failover** — pass *endpoints* (a list of
      ``"host:port"`` strings or ``(host, port)`` tuples) instead of a
      single address: every reconnect re-resolves against the list, an
      unreachable endpoint advances to the next, and a terminal error
      reply carrying ``rotate: true`` (``NotPrimaryError`` from a
      replica asked to write) rotates immediately instead of burning
      backoff attempts against a node that will never take the write.
    * **Read-your-writes** — the client remembers the ``seq`` of its own
      last acknowledged write and stamps it as ``min_seq`` on subsequent
      reads; a replica either serves a snapshot at least that fresh or
      answers the retryable ``ReplicaLagError``.

    Deterministic under test: *sleep*, *seed*, and *faults* (a
    :class:`~repro.server.faults.NetworkFaultInjector` applied to the
    client side of the socket) are injectable.
    """

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        *,
        user: str,
        purpose: str,
        endpoints: "list[str | tuple[str, int]] | None" = None,
        timeout: float | None = 30.0,
        attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        jitter: float = 0.1,
        seed: int | None = None,
        sleep: Callable[[float], None] = time.sleep,
        client_id: str | None = None,
        faults: NetworkFaultInjector | None = None,
        read_your_writes: bool = True,
    ) -> None:
        if endpoints:
            self._endpoints = [_parse_endpoint(e) for e in endpoints]
        elif host is not None and port is not None:
            self._endpoints = [(host, int(port))]
        else:
            raise ValueError(
                "RetryingClient needs host+port or a non-empty endpoints list"
            )
        self._endpoint_index = 0
        self._read_your_writes = read_your_writes
        self.last_write_seq = 0
        self._user = user
        self._purpose = purpose
        self._timeout = timeout
        self._faults = faults
        self.client_id = client_id or (
            f"rc-{os.getpid()}-{next(_client_ids)}"
        )
        self._retry = RetryPolicy(
            attempts=attempts,
            base_delay=base_delay,
            max_delay=max_delay,
            jitter=jitter,
            retryable=(_RetryableFailure,),
            sleep=sleep,
            seed=seed,
        )
        self._lock = threading.Lock()
        self._rids = itertools.count(1)
        self._keys = itertools.count(1)
        self._sock: Any = None
        self._closed = False
        self.reconnects = 0
        self.session_id: int = 0
        self.seq: int = 0
        self.role: str = ""
        self.server_role: str = ""
        self.epoch: int = 0
        self._connect()

    # -- plumbing ----------------------------------------------------------

    def _connect(self) -> None:
        """Open a socket to the current endpoint (advancing past
        unreachable ones) and complete the ``hello`` handshake."""
        raw: socket.socket | None = None
        last_error: OSError | None = None
        for offset in range(len(self._endpoints)):
            index = (self._endpoint_index + offset) % len(self._endpoints)
            try:
                raw = socket.create_connection(
                    self._endpoints[index], timeout=self._timeout
                )
            except OSError as error:
                last_error = error
                continue
            self._endpoint_index = index
            break
        if raw is None:
            assert last_error is not None
            raise last_error
        raw.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock: Any = raw
        if self._faults is not None:
            sock = FaultySocket(raw, self._faults)
        self._sock = sock
        rid = next(self._rids)
        try:
            send_frame(sock, {
                "op": "hello",
                "user": self._user,
                "purpose": self._purpose,
                "client_id": self.client_id,
                "rid": rid,
            })
            hello = self._read_matching(rid)
        except BaseException:
            self._drop_socket()
            raise
        if not hello.get("ok", False):
            self._drop_socket()
            raise ServerReplyError(hello.get("error", {}))
        self.session_id = hello["session"]
        self.seq = hello["seq"]
        self.role = hello.get("role", "")
        self.server_role = hello.get("server_role", "")
        self.epoch = hello.get("epoch", 0)

    def _rotate_endpoint(self) -> None:
        self._endpoint_index = (
            self._endpoint_index + 1
        ) % len(self._endpoints)
        get_metrics().counter("client.endpoint_rotations").inc()

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
            self._sock = None

    def _read_matching(self, rid: int) -> dict[str, Any]:
        """Read until a reply for *rid* arrives, discarding stale frames
        (injected duplicates, leftovers from an abandoned request)."""
        while True:
            reply = recv_frame(self._sock)
            got = reply.get("rid")
            if got is None or got == rid:
                return reply
            get_metrics().counter("client.stale_replies").inc()

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one logical request, retrying as classified; the reply.

        Raises :class:`ServerReplyError` on a terminal error reply and
        :class:`RetriesExhaustedError` when every attempt failed
        retryably.
        """
        if self._closed:
            raise ServerError("client is closed")
        with self._lock:
            rid = next(self._rids)
            frame = {**message, "rid": rid}
            if (
                self._read_your_writes
                and self.last_write_seq > 0
                and "min_seq" not in frame
                and frame.get("op") in ("ask", "profile", "sql", "refresh")
            ):
                frame["min_seq"] = self.last_write_seq

            def attempt() -> dict[str, Any]:
                try:
                    if self._sock is None:
                        self.reconnects += 1
                        get_metrics().counter("client.reconnects").inc()
                        self._connect()
                    send_frame(self._sock, frame)
                    reply = self._read_matching(rid)
                except _RetryableFailure:
                    raise
                except ServerReplyError as error:
                    # A rejected hello during reconnect (e.g. the server
                    # is draining): retryable if the server says so.
                    self._drop_socket()
                    if error.error.get("retryable", False):
                        raise _RetryableFailure(
                            error, reconnect=True
                        ) from error
                    raise
                except (OSError, ProtocolError) as error:
                    # Transport death: ambiguous (the server may have
                    # executed the request) — safe to retry because
                    # mutating frames carry an idempotency key.
                    self._drop_socket()
                    raise _RetryableFailure(error, reconnect=True) from error
                if not reply.get("ok", False):
                    error_payload = reply.get("error", {})
                    cause = ServerReplyError(error_payload)
                    if error_payload.get("rotate", False) and (
                        len(self._endpoints) > 1
                    ):
                        # e.g. NotPrimaryError: this node will *never*
                        # take the write — move to the next endpoint now
                        # instead of backing off against it.
                        self._drop_socket()
                        self._rotate_endpoint()
                        raise _RetryableFailure(cause, reconnect=True)
                    if error_payload.get("retryable", False):
                        raise _RetryableFailure(cause, reconnect=False)
                    raise cause
                if "seq" in reply:
                    self.seq = reply["seq"]
                    if "result" in reply or "improved" in reply:
                        # The reply acknowledges a write this client
                        # made: later reads must observe at least this.
                        self.last_write_seq = max(
                            self.last_write_seq, reply["seq"]
                        )
                return reply

            def on_retry(attempt_number: int, error: BaseException) -> None:
                get_metrics().counter("server.retries").inc()

            try:
                return self._retry.call(attempt, on_retry=on_retry)
            except _RetryableFailure as failure:
                raise RetriesExhaustedError(
                    self._retry.attempts, failure.cause
                ) from failure.cause

    def close(self) -> None:
        """Say ``bye`` (best effort) and close the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._sock is None:
            return
        try:
            send_frame(self._sock, {"op": "bye"})
            recv_frame(self._sock)
        except (OSError, ServerError):
            pass
        finally:
            self._drop_socket()

    def __enter__(self) -> "RetryingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- operations --------------------------------------------------------

    def _idempotency_key(self) -> str:
        return f"{self.client_id}:{next(self._keys)}"

    def ask(
        self,
        sql: str,
        fraction: float = 1.0,
        *,
        deadline_ms: float | None = None,
    ) -> dict[str, Any]:
        """Run the PCQE pipeline; retried with an idempotency key (an
        approved increment plan commits a write-back)."""
        message: dict[str, Any] = {
            "op": "ask",
            "sql": sql,
            "fraction": fraction,
            "idempotency_key": self._idempotency_key(),
        }
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return self.request(message)

    def profile(
        self,
        sql: str,
        fraction: float = 1.0,
        *,
        deadline_ms: float | None = None,
    ) -> dict[str, Any]:
        """``ask`` with a stage-by-stage profile report attached."""
        message: dict[str, Any] = {
            "op": "profile",
            "sql": sql,
            "fraction": fraction,
            "idempotency_key": self._idempotency_key(),
        }
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return self.request(message)

    def sql(self, sql: str) -> dict[str, Any]:
        """Run one SQL statement; DML retries are deduplicated by key."""
        return self.request({
            "op": "sql",
            "sql": sql,
            "idempotency_key": self._idempotency_key(),
        })

    def refresh(self) -> int:
        """Re-pin the latest generation; returns the new ``seq``."""
        return self.request({"op": "refresh"})["seq"]

    def metrics(self) -> str:
        """The server's OpenMetrics exposition text."""
        return self.request({"op": "metrics"})["openmetrics"]
