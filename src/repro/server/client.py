"""A blocking socket client for the PCQE server.

Used by the ``connect`` CLI command, the integration tests, and
``benchmarks/serve_bench.py``.  One :class:`ServerClient` is one session:
the constructor performs the ``hello`` handshake, every call maps to one
request frame, and :meth:`close` says ``bye`` and closes the socket.

>>> with ServerClient("127.0.0.1", 7433, user="bob",
...                   purpose="investment") as client:
...     reply = client.ask("SELECT Company FROM Proposal", fraction=1.0)
...     reply["status"], reply["rows"]

Replies are the server's JSON objects verbatim.  A transport failure
raises :class:`~repro.errors.ProtocolError`; an application error reply
(``ok: false``) raises :class:`ServerReplyError` carrying the structured
error payload, so callers can branch on ``error["type"]`` (e.g.
``"AdmissionError"``) without string matching.
"""

from __future__ import annotations

import socket
from typing import Any

from ..errors import ServerError
from .protocol import recv_frame, send_frame

__all__ = ["ServerClient", "ServerReplyError"]


class ServerReplyError(ServerError):
    """The server answered ``ok: false``; :attr:`error` has the payload."""

    def __init__(self, error: dict[str, Any]) -> None:
        super().__init__(
            f"{error.get('type', 'ServerError')}: "
            f"{error.get('message', '(no message)')}"
        )
        self.error = error

    @property
    def type(self) -> str:
        return str(self.error.get("type", "ServerError"))


class ServerClient:
    """One connection = one session with a pinned snapshot."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        user: str,
        purpose: str,
        timeout: float | None = 30.0,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._closed = False
        hello = self.request(
            {"op": "hello", "user": user, "purpose": purpose}
        )
        self.session_id: int = hello["session"]
        self.seq: int = hello["seq"]
        self.role: str = hello.get("role", "")

    # -- plumbing ----------------------------------------------------------

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one frame, wait for the reply, raise on ``ok: false``."""
        if self._closed:
            raise ServerError("client is closed")
        send_frame(self._sock, message)
        reply = recv_frame(self._sock)
        if not reply.get("ok", False):
            raise ServerReplyError(reply.get("error", {}))
        if "seq" in reply:
            self.seq = reply["seq"]
        return reply

    def close(self) -> None:
        """Say ``bye`` (best effort) and close the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            send_frame(self._sock, {"op": "bye"})
            recv_frame(self._sock)
        except OSError:
            pass
        except ServerError:
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- operations --------------------------------------------------------

    def ask(
        self,
        sql: str,
        fraction: float = 1.0,
        *,
        deadline_ms: float | None = None,
    ) -> dict[str, Any]:
        """Run the PCQE pipeline; returns the status/rows/confidences reply."""
        message: dict[str, Any] = {
            "op": "ask",
            "sql": sql,
            "fraction": fraction,
        }
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return self.request(message)

    def profile(
        self,
        sql: str,
        fraction: float = 1.0,
        *,
        deadline_ms: float | None = None,
    ) -> dict[str, Any]:
        """``ask`` with a stage-by-stage profile report attached."""
        message: dict[str, Any] = {
            "op": "profile",
            "sql": sql,
            "fraction": fraction,
        }
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return self.request(message)

    def sql(self, sql: str) -> dict[str, Any]:
        """Run one SQL statement (SELECT reads the snapshot; DML commits)."""
        return self.request({"op": "sql", "sql": sql})

    def refresh(self) -> int:
        """Re-pin the latest generation; returns the new ``seq``."""
        return self.request({"op": "refresh"})["seq"]

    def metrics(self) -> str:
        """The server's OpenMetrics exposition text."""
        return self.request({"op": "metrics"})["openmetrics"]
