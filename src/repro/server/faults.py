"""Deterministic network fault injection for the serving layer.

The storage layer proves crash safety with a seeded fault matrix
(:mod:`repro.storage.durability.faults`); this module is the same idea
for the wire.  A :class:`NetworkFaultInjector` is armed with one
:class:`NetworkFaultSpec` — a (point, mode, occurrence) cell — and
consulted at named fault points on both ends of a connection:

* ``server.write`` — just before the server writes a reply frame.
  Modes: ``torn_frame`` (a seeded prefix of the frame is written, then
  the transport is aborted), ``disconnect`` (close without writing),
  ``reset`` (abort → RST), ``delay`` (the reply is held back), ``dup``
  (the frame is written twice), ``slow_write`` (the frame dribbles out
  in small chunks — a server-side slow-loris).
* ``server.read`` — before the server reads the next request.  Mode
  ``disconnect`` drops the connection mid-conversation.
* ``client.send`` — inside the client socket's ``sendall``.  Modes:
  ``torn_frame`` (a prefix of the request leaves, then the socket dies)
  and ``disconnect`` (the socket dies before any byte leaves).
* ``client.recv`` — inside the client socket's ``recv``, i.e. after the
  request was sent but before the reply arrives.  Mode ``disconnect``
  manufactures the *ambiguous failure*: the server may well have
  executed the request, the client will never know — the case
  idempotency keys exist for.

The injector is pure decision logic: it never touches sockets itself
(the server applies directives with asyncio primitives, the client's
:class:`FaultySocket` with blocking calls), so one implementation serves
both ends and stays trivially testable.  All randomness (torn prefix
lengths) comes from ``random.Random(spec.seed)``; ``tripped`` records
whether the armed fault actually fired — a matrix cell whose point is
never reached is a harness bug, not a pass.
"""

from __future__ import annotations

import random
import socket
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "FaultAction",
    "NetworkFaultSpec",
    "NetworkFaultInjector",
    "FaultySocket",
    "NETWORK_FAULT_POINTS",
    "REPLICATION_FAULT_POINTS",
    "iter_network_fault_specs",
    "iter_replication_fault_specs",
]


#: Fault points and the modes meaningful at each.
NETWORK_FAULT_POINTS: tuple[tuple[str, tuple[str, ...]], ...] = (
    (
        "server.write",
        ("torn_frame", "disconnect", "reset", "delay", "dup", "slow_write"),
    ),
    ("server.read", ("disconnect",)),
    ("client.send", ("torn_frame", "disconnect")),
    ("client.recv", ("disconnect",)),
)

#: Replication-link fault points, kept out of ``NETWORK_FAULT_POINTS``
#: so client/server chaos matrices stay replication-free (their harness
#: asserts every armed cell trips, and a single-node topology never
#: reaches these points).  Consulted by the replica's pull loop:
#:
#: * ``repl.pull`` — around one pull round-trip.  ``disconnect`` kills
#:   the feed socket (forces reconnect + source rotation),
#:   ``torn_frame`` tears the pull request mid-frame (the primary sees
#:   a started frame — the torn-stream case), ``delay`` stalls the pull
#:   (a partitioned/lagging link).
#: * ``repl.frame`` — per received frame.  ``dup`` delivers the frame
#:   twice to the apply path, proving exactly-once apply.
#: * ``repl.apply`` — before applying a frame.  ``delay`` simulates a
#:   lagging apply thread (read-your-writes must wait, not lie).
REPLICATION_FAULT_POINTS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("repl.pull", ("disconnect", "torn_frame", "delay")),
    ("repl.frame", ("dup",)),
    ("repl.apply", ("delay",)),
)

_ALL_POINTS = dict(NETWORK_FAULT_POINTS) | dict(REPLICATION_FAULT_POINTS)

_ALL_MODES = frozenset(
    mode for modes in _ALL_POINTS.values() for mode in modes
)


@dataclass(frozen=True)
class NetworkFaultSpec:
    """One cell of the network fault matrix.

    The fault fires on the ``occurrence``-th hit of ``point`` (hits are
    counted across the injector's whole lifetime, so a spec can target
    e.g. "the second reply after the hello").  ``delay_s`` sizes the
    ``delay`` and ``slow_write`` modes; keep it small — the matrix runs
    in CI.
    """

    point: str
    mode: str
    occurrence: int = 1
    seed: int = 0
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.point not in _ALL_POINTS:
            raise ValueError(f"unknown fault point {self.point!r}")
        if self.mode not in _ALL_MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if self.mode not in _ALL_POINTS[self.point]:
            raise ValueError(
                f"mode {self.mode!r} is not meaningful at {self.point!r}"
            )
        if self.occurrence < 1:
            raise ValueError("occurrence must be >= 1")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")


@dataclass(frozen=True)
class FaultAction:
    """What the transport layer should do, decided by the injector.

    ``cut`` is the byte offset for ``torn_frame`` (how much of the frame
    reaches the peer before the connection dies); ``chunk`` is the write
    granularity for ``slow_write``.
    """

    mode: str
    cut: int = 0
    delay_s: float = 0.0
    chunk: int = 1


def iter_network_fault_specs(
    seed: int = 0, occurrence: int = 2
) -> Iterator[NetworkFaultSpec]:
    """Every (point, mode) cell as a spec, for matrix-style harnesses.

    The default ``occurrence=2`` skips the hello handshake (the first
    write/read on a connection) so faults land mid-conversation, where
    a session pin is held and state can actually leak.
    """
    for point, modes in NETWORK_FAULT_POINTS:
        for mode in modes:
            yield NetworkFaultSpec(point, mode, occurrence=occurrence, seed=seed)


def iter_replication_fault_specs(
    seed: int = 0, occurrence: int = 2
) -> Iterator[NetworkFaultSpec]:
    """Every replication-link (point, mode) cell as a spec.

    ``occurrence=2`` lands the fault after the first successful pull, so
    the replica already holds state when the link misbehaves.
    """
    for point, modes in REPLICATION_FAULT_POINTS:
        for mode in modes:
            yield NetworkFaultSpec(point, mode, occurrence=occurrence, seed=seed)


class NetworkFaultInjector:
    """Counts fault-point hits and emits the armed :class:`FaultAction`.

    One injector drives one scripted chaos cell: hand it to
    ``PCQEServer(..., faults=injector)`` for server-side points or wrap
    the client socket in a :class:`FaultySocket` for client-side ones.
    Thread-safe by construction for our use (server points fire on the
    event loop, client points on the client thread; one spec only ever
    targets one side).
    """

    def __init__(self, spec: NetworkFaultSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.hits: dict[str, int] = {}
        self.tripped = False

    def decide(self, point: str, nbytes: int = 0) -> FaultAction | None:
        """Consult the injector at *point*; ``None`` means proceed clean."""
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        if point != self.spec.point or count != self.spec.occurrence:
            return None
        self.tripped = True
        mode = self.spec.mode
        if mode == "torn_frame":
            # Always tear inside the frame: at least one byte leaves (the
            # peer sees a started frame, not a clean close) and at least
            # one byte is missing.
            cut = self.rng.randrange(1, max(2, nbytes))
            return FaultAction(mode, cut=cut)
        if mode == "slow_write":
            chunk = max(1, nbytes // 8)
            return FaultAction(mode, delay_s=self.spec.delay_s / 8.0, chunk=chunk)
        if mode == "delay":
            return FaultAction(mode, delay_s=self.spec.delay_s)
        return FaultAction(mode)


class FaultySocket:
    """A blocking socket wrapper applying ``client.*`` fault points.

    Only the surface :func:`~repro.server.protocol.send_frame` /
    :func:`~repro.server.protocol.recv_frame` use is wrapped (``sendall``
    / ``recv`` / ``close`` / ``settimeout``); everything else delegates.
    Injected deaths close the real socket and raise
    ``ConnectionResetError`` so they are indistinguishable from a peer
    reset to the retry machinery above.
    """

    def __init__(
        self, sock: socket.socket, injector: NetworkFaultInjector
    ) -> None:
        self._sock = sock
        self._injector = injector

    def sendall(self, data: bytes) -> None:
        action = self._injector.decide("client.send", len(data))
        if action is None:
            self._sock.sendall(data)
            return
        if action.mode == "torn_frame":
            self._sock.sendall(data[: action.cut])
        self._sock.close()
        raise ConnectionResetError(
            f"injected {action.mode} during send ({len(data)} byte frame)"
        )

    def recv(self, nbytes: int) -> bytes:
        action = self._injector.decide("client.recv", nbytes)
        if action is not None:
            self._sock.close()
            raise ConnectionResetError(
                f"injected {action.mode} before recv"
            )
        return self._sock.recv(nbytes)

    def close(self) -> None:
        self._sock.close()

    def settimeout(self, value: float | None) -> None:
        self._sock.settimeout(value)

    def setsockopt(self, *args) -> None:
        self._sock.setsockopt(*args)

    def __getattr__(self, name: str):  # pragma: no cover - passthrough
        return getattr(self._sock, name)
