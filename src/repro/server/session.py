"""Per-connection sessions: a pinned snapshot plus a policy context.

A :class:`Session` is what one client connection holds between frames:

* a :class:`~repro.server.mvcc.Snapshot` pin, so every query the session
  runs observes one immutable database state until the session refreshes
  (or commits a write of its own — writes are read-your-own-writes);
* a ⟨user, role, purpose⟩ **policy context** resolved against the policy
  store once at session start, carried through spans and audit fields;
* the PCQE configuration (solver, engine mode) its ``ask``s run with.

The :class:`SessionDatabase` facade is what actually gets handed to
:class:`~repro.core.PCQEngine`: reads delegate to the session's *current*
pinned generation, while confidence write-backs (the improvement step of
an approved increment plan) commit through the MVCC layer and re-pin —
so a session that pays for improvement immediately sees it, and nobody
else's pinned snapshot moves.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping

from ..core import PCQEngine, PCQEResult, QueryRequest
from ..errors import (
    NotPrimaryError,
    QuarantinedTableError,
    ReplicaLagError,
    SessionClosedError,
    UnknownUserError,
)
from ..policy import PolicyStore
from ..storage.tuples import StoredTuple, TupleId
from .mvcc import MVCCDatabase, Snapshot, SnapshotTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sql import DmlResult

__all__ = ["Session", "SessionContext", "SessionDatabase"]

_session_ids = itertools.count(1)


class SessionContext:
    """The ⟨user, role, purpose⟩ triple a session's requests run under."""

    __slots__ = ("user", "roles", "purpose")

    def __init__(self, user: str, roles: tuple[str, ...], purpose: str) -> None:
        self.user = user
        self.roles = roles
        self.purpose = purpose

    @property
    def role(self) -> str:
        """Display form of the role set (sessions may hold several)."""
        return ",".join(self.roles) if self.roles else "(none)"

    def __repr__(self) -> str:  # pragma: no cover - display only
        return (
            f"SessionContext(user={self.user!r}, roles={self.roles!r}, "
            f"purpose={self.purpose!r})"
        )


class SessionDatabase:
    """Database facade bound to a session's current snapshot.

    Reads always go to the generation the session has pinned *now*;
    :meth:`apply_confidences` commits through MVCC and re-pins, giving
    the session read-your-own-writes without disturbing other pins.
    """

    def __init__(self, session: "Session") -> None:
        self._session = session

    @property
    def _db(self):
        return self._session._snapshot().db

    @property
    def name(self) -> str:
        return self._db.name

    @property
    def seq(self) -> int:
        return self._db.seq

    @property
    def is_durable(self) -> bool:
        return self._db.is_durable

    # -- reads (delegate to the pinned generation) -------------------------

    def table(self, name: str) -> SnapshotTable:
        quarantine = self._session.quarantine
        if quarantine and name.lower() in quarantine:
            raise QuarantinedTableError(
                f"table {name!r} is quarantined on this replica pending "
                f"resync (scrub found a fingerprint divergence)",
                table=name.lower(),
            )
        return self._db.table(name)

    def has_table(self, name: str) -> bool:
        return self._db.has_table(name)

    def tables(self) -> Iterator[SnapshotTable]:
        return self._db.tables()

    def table_names(self) -> list[str]:
        return self._db.table_names()

    def view_definition(self, name: str) -> str | None:
        return self._db.view_definition(name)

    def view_names(self) -> list[str]:
        return self._db.view_names()

    def resolve(self, tid: TupleId) -> StoredTuple:
        return self._db.resolve(tid)

    def confidence_of(self, tid: TupleId) -> float:
        return self._db.confidence_of(tid)

    def confidences(self, tids: Iterable[TupleId]) -> dict[TupleId, float]:
        return self._db.confidences(tids)

    # -- the one sanctioned write ------------------------------------------

    def apply_confidences(self, updates: Mapping[TupleId, float]) -> None:
        """Commit a confidence write-back and advance this session's pin.

        This is the improvement step of an approved increment plan: it
        must actually land in the shared database (and the WAL), and the
        paying session must see it on re-evaluation — so the commit goes
        through MVCC and the session re-pins the resulting generation.
        Other sessions' pinned snapshots are unaffected until they
        refresh.
        """
        self._session.commit(lambda db: db.apply_confidences(updates))

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"SessionDatabase({self._session!r})"


class Session:
    """One client's pinned view of the database plus its policy context.

    Thread-compatible: the server runs at most one request per session at
    a time (requests on one connection are processed in arrival order),
    but different sessions run fully in parallel on the worker pool.
    """

    def __init__(
        self,
        mvcc: MVCCDatabase,
        policies: PolicyStore,
        user: str,
        purpose: str,
        *,
        solver: str = "greedy",
        engine: str = "auto",
        fallback: "tuple[str, ...] | None" = None,
        client_id: str | None = None,
        read_only: bool = False,
        quarantine: "set[str] | None" = None,
    ) -> None:
        try:
            roles = tuple(sorted(policies.user(user).roles))
        except UnknownUserError:
            raise
        self.id = next(_session_ids)
        self.context = SessionContext(user, roles, purpose)
        self.policies = policies
        self.solver = solver
        self.engine = engine
        # Degradation chain for deadline-pressed asks: unless configured
        # otherwise, a non-greedy primary falls back to greedy (fast,
        # always-feasible-when-feasible) instead of failing the request.
        # A greedy primary has no cheaper hop; its anytime incumbent is
        # the degradation (see docs/ROBUSTNESS.md).
        if fallback is None:
            fallback = ("greedy",) if solver != "greedy" else ()
        self.fallback: tuple[str, ...] = tuple(fallback)
        #: Stable client identity for idempotency dedup: a reconnecting
        #: retry presents the same id, so its keys match across sessions.
        self.client_id = client_id or f"session-{self.id}"
        #: Replica mode: every mutation path raises NotPrimaryError.
        self.read_only = read_only
        #: Shared (with the server) set of lowercase quarantined table
        #: names; the planner touches every referenced table through
        #: SessionDatabase.table, so enforcement is exact.
        self.quarantine: "set[str]" = (
            quarantine if quarantine is not None else set()
        )
        self._mvcc = mvcc
        self._lock = threading.Lock()
        self._handle: Snapshot | None = mvcc.snapshot()
        self.db = SessionDatabase(self)

    # -- snapshot management -----------------------------------------------

    def _snapshot(self) -> Snapshot:
        handle = self._handle
        if handle is None:
            raise SessionClosedError(f"session {self.id} is closed")
        return handle

    @property
    def seq(self) -> int:
        """The generation this session currently observes."""
        return self._snapshot().seq

    def refresh(self) -> int:
        """Re-pin the latest generation; returns the new ``seq``."""
        with self._lock:
            self._handle = self._mvcc.refresh(self._snapshot())
            return self._handle.seq

    def ensure_seq(self, min_seq: int, wait_s: float = 0.0) -> int:
        """Guarantee this session observes at least generation *min_seq*.

        The read-your-writes contract: a client that wrote at seq N and
        reconnected to a replica must not see pre-N state.  Refreshes the
        pin if the node is already there; otherwise waits up to *wait_s*
        for replication to catch up, then raises the retryable
        :class:`ReplicaLagError` so the client can try elsewhere.
        """
        if self.seq >= min_seq:
            return self.seq
        if self._mvcc.current_seq >= min_seq or (
            wait_s > 0 and self._mvcc.wait_for_seq(min_seq, wait_s)
        ):
            return self.refresh()
        raise ReplicaLagError(
            f"replica is at seq {self._mvcc.current_seq}, request requires "
            f"{min_seq} (waited {wait_s * 1000:.0f} ms)",
            min_seq=min_seq,
            position=self._mvcc.current_seq,
            waited_ms=wait_s * 1000.0,
        )

    def commit(self, mutate) -> Any:
        """Run a mutation through MVCC, then advance this session's pin."""
        self._snapshot()  # closed-session check before touching storage
        if self.read_only:
            raise NotPrimaryError(
                f"session {self.id} is bound to a read-only replica; "
                f"writes must go to the primary"
            )
        result = self._mvcc.commit(mutate)
        self.refresh()
        return result

    def close(self) -> None:
        """Release the snapshot pin (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.release()
                self._handle = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- queries -------------------------------------------------------------

    def ask(
        self,
        sql: str,
        required_fraction: float = 1.0,
        *,
        profile: bool = False,
        deadline_ms: float | None = None,
    ) -> PCQEResult:
        """Run the full PCQE pipeline against this session's snapshot."""
        engine = PCQEngine(
            self.db,
            self.policies,
            solver=self.solver,
            # The degradation chain only engages under a deadline — an
            # unbudgeted ask keeps the direct single-solver fast path.
            fallback=self.fallback if deadline_ms is not None else (),
            deadline_ms=deadline_ms,
            engine=self.engine,
        )
        request = QueryRequest(
            sql,
            self.context.purpose,
            required_fraction,
            profile=profile,
            deadline_ms=deadline_ms,
        )
        return engine.execute(request, user=self.context.user)

    def run_sql(self, sql: str, *, idempotency: str | None = None):
        """Run one SQL statement.

        SELECTs read the pinned snapshot; DML/DDL commits through MVCC
        (one WAL batch) and advances this session's pin so the statement
        is immediately visible to its own connection.  When *idempotency*
        is given, a no-op dedup marker is journaled inside the same WAL
        record, making the (client, key) pair durable — it survives
        crash recovery and replication, so a retry after failover is
        deduplicated on the promoted primary too.
        """
        from ..sql import SelectStatement, SetStatement, execute_sql, parse_command

        command = parse_command(sql)
        if isinstance(command, (SelectStatement, SetStatement)):
            return execute_sql(self.db, sql, engine=self.engine)

        def mutate(db):
            result = execute_sql(db, sql, engine=self.engine)
            if idempotency is not None:
                db._journal(
                    {
                        "op": "idempotency",
                        "client": self.client_id,
                        "key": idempotency,
                    }
                )
            return result

        return self.commit(mutate)

    def __repr__(self) -> str:  # pragma: no cover - display only
        handle = self._handle
        seq = handle.seq if handle is not None else "closed"
        return (
            f"Session(id={self.id}, user={self.context.user!r}, "
            f"purpose={self.context.purpose!r}, seq={seq})"
        )
