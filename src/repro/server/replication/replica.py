"""A pull-based replica: applies the primary's WAL, serves snapshot reads.

One :class:`Replica` owns three things:

* its **database** (durable under its own ``data_dir``, or in-memory for
  a read-scaling cache) kept in sync by a daemon pull thread that
  streams committed WAL frames from the primary and applies them through
  the same recovery path a crash restart uses — import the frame into
  the local WAL first, then apply the op under suspended journaling, then
  publish the MVCC generation *at the primary's seq*;
* a read-only :class:`~repro.server.server.PCQEServer` so clients run
  ``ask``/``sql`` sessions against pinned snapshots tagged with the
  replication position (writes answer ``NotPrimaryError`` with
  ``rotate: true``);
* the **failover machinery**: a persisted epoch adopted from (and
  offered to) every peer, endpoint rotation when the current primary
  dies, automatic self-promotion after ``auto_promote_after`` seconds
  without any live primary, and digest-based divergence detection that
  truncates a forked log back to the common prefix by resyncing from a
  primary snapshot.

The pull protocol is the ordinary length-prefixed JSON framing on the
same port clients use; ``repl.*`` ops are session-less (see
``PCQEServer._dispatch_repl``).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from collections import deque
from contextlib import nullcontext
from typing import Any, Iterable

from ...errors import ProtocolError, ReproError, ServerError, StaleEpochError
from ...obs import TIMING_BUCKETS, get_metrics
from ...policy import PolicyStore
from ...storage.database import Database
from ...storage.durability.checksum import crc32c
from ...storage.durability.codec import decode_op
from ...storage.durability.recovery import apply_op
from ...storage.durability.snapshot import populate_database
from ..client import ServerReplyError
from ..faults import NetworkFaultInjector
from ..protocol import encode_frame, recv_frame, send_frame
from ..server import PCQEServer
from .epoch import load_epoch, store_epoch
from .feed import iter_idempotency_markers
from .reconcile import divergence_point

__all__ = ["Replica"]

#: Frames of (seq, digest) history kept for divergence checks.
_DIGEST_WINDOW = 512


class _ResyncNeeded(Exception):
    """Internal: the incremental stream cannot continue; bootstrap from
    a primary snapshot instead (gap, divergence, or apply failure)."""


def _parse_endpoint(endpoint: "str | tuple[str, int]") -> tuple[str, int]:
    if isinstance(endpoint, tuple):
        return endpoint[0], int(endpoint[1])
    host, _, port = endpoint.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"endpoint must be 'host:port', got {endpoint!r}")
    return host, int(port)


_replica_ids = iter(range(1, 1 << 30))


class Replica:
    """A read-only node pulling the replicated log from a primary fleet."""

    def __init__(
        self,
        endpoints: "Iterable[str | tuple[str, int]]",
        policies: PolicyStore,
        *,
        data_dir: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        replica_id: str | None = None,
        pull_interval: float = 0.05,
        wait_ms: int = 200,
        max_frames: int = 256,
        auto_promote_after: float | None = None,
        faults: NetworkFaultInjector | None = None,
        connect_timeout: float = 5.0,
        **server_kwargs: Any,
    ) -> None:
        self.endpoints = [_parse_endpoint(e) for e in endpoints]
        if not self.endpoints:
            raise ValueError("a replica needs at least one primary endpoint")
        self.data_dir = data_dir
        self.replica_id = replica_id or f"replica-{next(_replica_ids)}"
        self.pull_interval = pull_interval
        self.wait_ms = wait_ms
        self.max_frames = max_frames
        self.auto_promote_after = auto_promote_after
        self.faults = faults
        self.connect_timeout = connect_timeout
        if data_dir is not None:
            self._db = Database.open(data_dir, name=self.replica_id)
            self.epoch = load_epoch(data_dir)
        else:
            self._db = Database(self.replica_id)
            self.epoch = 1
        self._manager = self._db._durability
        self.server = PCQEServer(
            self._db,
            policies,
            host,
            port,
            read_only=True,
            epoch=self.epoch,
            **server_kwargs,
        )
        #: Highest primary WAL seq durably applied here.  Distinct from
        #: the MVCC generation counter (which never rewinds): a resync
        #: may move the position backwards to a snapshot's seq.
        self._position = self._manager.last_seq if self._manager else 0
        self._position_cv = threading.Condition()
        self._recent_digests: "deque[tuple[int, int]]" = deque(
            maxlen=_DIGEST_WINDOW
        )
        self._endpoint_index = 0
        self._last_contact = time.monotonic()
        self._force_resync = False
        self._stop = threading.Event()
        self._promote_lock = threading.Lock()
        self.promoted = False
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Replica":
        self.server.start()
        self._thread = threading.Thread(
            target=self._run, name=f"{self.replica_id}-pull", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.server.stop()
        self._db.close()

    def __enter__(self) -> "Replica":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def position(self) -> int:
        """Highest primary seq applied (and durable, when on disk)."""
        return self._position

    @property
    def address(self) -> str:
        return self.server.address

    def wait_for_position(self, seq: int, timeout: float = 5.0) -> bool:
        """Block until the replica has applied *seq* (or timeout)."""
        with self._position_cv:
            return self._position_cv.wait_for(
                lambda: self._position >= seq, timeout=timeout
            )

    def request_resync(self) -> None:
        """Ask the pull loop to rebuild from a primary snapshot (used by
        the scrubber when it finds corruption or divergence)."""
        self._force_resync = True

    # -- failover ----------------------------------------------------------

    def promote(self, epoch: int | None = None) -> int:
        """Stop pulling and become the writable primary (idempotent).

        The new epoch must exceed every epoch this node has seen, so the
        deposed primary's frames are fenced off fleet-wide.
        """
        with self._promote_lock:
            if self.promoted:
                return self.epoch
            new_epoch = self.epoch + 1 if epoch is None else epoch
            if new_epoch <= self.epoch:
                raise ServerError(
                    f"promotion epoch {new_epoch} must exceed the current "
                    f"epoch {self.epoch}"
                )
            self.promoted = True
        # Retire the pull thread BEFORE accepting writes: a still-running
        # pull could otherwise fetch this node's own post-promotion
        # frames back from a follower's feed (same epoch — fencing can't
        # catch it) and "resync" the new primary from its own replica.
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=10.0)
        with self._promote_lock:
            self.epoch = new_epoch
            if self.data_dir is not None:
                store_epoch(self.data_dir, new_epoch)
            self.server.promote_to_primary(new_epoch)
            get_metrics().counter("repl.promotions").inc()
            return new_epoch

    # -- the pull loop -----------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set() and not self.promoted:
            try:
                self._sync_once()
            except StaleEpochError:
                # This endpoint is behind a newer reign; try the next.
                self._rotate_endpoint()
            except (OSError, ProtocolError, ServerError, ReproError):
                self._rotate_endpoint()
            except Exception:  # pragma: no cover - defensive backstop
                get_metrics().counter("repl.pull_errors").inc()
                self._rotate_endpoint()
            if self._stop.is_set() or self.promoted:
                break
            self._maybe_auto_promote()
            self._stop.wait(self.pull_interval)

    def _rotate_endpoint(self) -> None:
        self._endpoint_index = (self._endpoint_index + 1) % len(self.endpoints)
        get_metrics().counter("repl.endpoint_rotations").inc()

    def _maybe_auto_promote(self) -> None:
        if self.auto_promote_after is None or self.promoted:
            return
        silent = time.monotonic() - self._last_contact
        if silent >= self.auto_promote_after:
            get_metrics().counter("repl.auto_promotions").inc()
            self.promote()

    def _own_address(self) -> "tuple[str, int] | None":
        try:
            return (self.server.host, self.server.port)
        except ServerError:
            return None

    def _connect(self) -> socket.socket:
        own = self._own_address()
        for offset in range(len(self.endpoints)):
            index = (self._endpoint_index + offset) % len(self.endpoints)
            endpoint = self.endpoints[index]
            if endpoint == own:
                continue  # never pull from ourselves post-promotion
            try:
                sock = socket.create_connection(
                    endpoint, timeout=self.connect_timeout
                )
            except OSError:
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._endpoint_index = index
            return sock
        raise OSError("no replication endpoint is reachable")

    def _request(
        self, sock: socket.socket, message: dict[str, Any]
    ) -> dict[str, Any]:
        if self.faults is not None and message.get("op") == "repl.pull":
            action = self.faults.decide(
                "repl.pull", len(encode_frame(message))
            )
            if action is not None:
                get_metrics().counter("repl.faults.injected").inc()
                if action.mode == "disconnect":
                    sock.close()
                    raise OSError("injected: replication link dropped")
                if action.mode == "torn_frame":
                    sock.sendall(encode_frame(message)[: action.cut])
                    sock.close()
                    raise OSError("injected: torn replication frame")
                if action.mode == "delay":
                    time.sleep(action.delay_s)
        send_frame(sock, message)
        reply = recv_frame(sock)
        if not reply.get("ok", False):
            # Includes a peer that fenced itself on seeing our higher
            # epoch (StaleEpochError): treat it as a dead endpoint.
            raise ServerReplyError(reply.get("error", {}))
        self._adopt_epoch(reply.get("epoch"))
        return reply

    def _adopt_epoch(self, peer_epoch: Any) -> None:
        if not isinstance(peer_epoch, int):
            return
        if peer_epoch < self.epoch:
            # A deposed primary is still talking: refuse its stream.
            get_metrics().counter("repl.stale_frames_rejected").inc()
            raise StaleEpochError(
                f"peer epoch {peer_epoch} is behind ours ({self.epoch}); "
                f"rejecting its frames",
                stale_epoch=peer_epoch,
                current_epoch=self.epoch,
            )
        if peer_epoch > self.epoch:
            self.epoch = peer_epoch
            if self.data_dir is not None:
                store_epoch(self.data_dir, peer_epoch)
            self.server.set_epoch(peer_epoch)

    def _sync_once(self) -> None:
        sock = self._connect()
        try:
            handshake = self._request(
                sock,
                {
                    "op": "repl.handshake",
                    "replica": self.replica_id,
                    "epoch": self.epoch,
                    "last_seq": self._position,
                },
            )
            self._last_contact = time.monotonic()
            try:
                if self._force_resync:
                    self._resync(sock)
                    self._force_resync = False
                else:
                    self._check_divergence(sock, handshake)
                self._pull_loop(sock)
            except _ResyncNeeded:
                self._resync(sock)
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best effort
                pass

    def _check_divergence(self, sock: socket.socket, handshake: dict) -> None:
        """Compare recent frame digests with the primary's; a forked tail
        (we applied frames the new reign never committed) is truncated to
        the common prefix via a snapshot resync."""
        local = sorted(self._recent_digests)
        primary_last = handshake.get("last_seq")
        if isinstance(primary_last, int) and primary_last < self._position:
            # We are *ahead* of the primary: those frames were never
            # acknowledged by this reign and must be rolled back.
            get_metrics().counter("repl.divergences").inc()
            raise _ResyncNeeded()
        if not local:
            return
        reply = self._request(
            sock,
            {
                "op": "repl.digest",
                "from_seq": local[0][0] - 1,
                "to_seq": local[-1][0],
                "epoch": self.epoch,
            },
        )
        if reply.get("resync"):
            raise _ResyncNeeded()
        remote = [
            (int(seq), int(digest))
            for seq, digest in reply.get("digests", [])
        ]
        if divergence_point(local, remote) is not None:
            get_metrics().counter("repl.divergences").inc()
            raise _ResyncNeeded()

    def _pull_loop(self, sock: socket.socket) -> None:
        metrics = get_metrics()
        while not self._stop.is_set() and not self.promoted:
            if self._force_resync:
                self._resync(sock)
                self._force_resync = False
            reply = self._request(
                sock,
                {
                    "op": "repl.pull",
                    "from_seq": self._position,
                    "max_frames": self.max_frames,
                    "wait_ms": self.wait_ms,
                    "applied": self._position,
                    "epoch": self.epoch,
                },
            )
            self._last_contact = time.monotonic()
            if reply.get("resync"):
                raise _ResyncNeeded()
            for entry in reply.get("frames", []):
                seq, text = int(entry[0]), entry[1]
                payload = text.encode("utf-8")
                if self.faults is not None:
                    action = self.faults.decide("repl.frame", len(payload))
                    if action is not None and action.mode == "dup":
                        metrics.counter("repl.faults.injected").inc()
                        self._apply_frame(seq, payload)
                self._apply_frame(seq, payload)
            last_seq = reply.get("last_seq")
            if isinstance(last_seq, int):
                metrics.gauge("repl.lag_frames").set(
                    max(0, last_seq - self._position)
                )

    def _apply_frame(self, seq: int, payload: bytes) -> None:
        metrics = get_metrics()
        if seq <= self._position:
            # Exactly-once: re-delivered frames (duplicated by the link
            # or re-pulled after a torn reply) are recognized by seq and
            # dropped before touching the WAL.
            metrics.counter("repl.duplicate_frames").inc()
            return
        if seq != self._position + 1:
            raise _ResyncNeeded()  # gap in the stream
        if self.faults is not None:
            action = self.faults.decide("repl.apply", len(payload))
            if action is not None and action.mode == "delay":
                metrics.counter("repl.faults.injected").inc()
                time.sleep(action.delay_s)
        started = time.perf_counter()
        try:
            raw = json.loads(payload.decode("utf-8"))
            raw.pop("seq", None)
            op = decode_op(raw)
            # WAL-first, exactly like a local commit: the frame is
            # durable before its effects are visible, so a crash between
            # the two replays it on restart.
            if self._manager is not None:
                self._manager.import_frame(payload, seq)

            def mutate(db):
                guard = (
                    self._manager.suspended()
                    if self._manager is not None
                    else nullcontext()
                )
                with guard:
                    apply_op(db, op)
                # Advance the position while still under the commit lock
                # so paused_commits() observers (the scrubber's pinned
                # fingerprint compare) see state and position atomically.
                with self._position_cv:
                    self._position = seq
                    self._position_cv.notify_all()

            self.server.mvcc.commit_replicated(seq, mutate)
        except _ResyncNeeded:
            raise
        except (ReproError, ValueError, KeyError) as error:
            metrics.counter("repl.apply_errors").inc()
            raise _ResyncNeeded() from error
        for client, key in iter_idempotency_markers(op):
            self.server.record_replicated_key(client, key, seq)
        self._recent_digests.append((seq, crc32c(payload)))
        metrics.counter("repl.frames_applied").inc()
        metrics.histogram("repl.apply_seconds", TIMING_BUCKETS).observe(
            time.perf_counter() - started
        )
        if self._manager is not None:
            self._manager.maybe_checkpoint()

    def _resync(self, sock: socket.socket) -> None:
        """Bootstrap (or truncate-and-rebuild) from a primary snapshot.

        Replaces the whole logical state under one MVCC publish, realigns
        the local WAL to the snapshot's seq (discarding any divergent
        suffix via the checkpoint's rotation), and lifts every scrubber
        quarantine — the rebuilt tables are byte-fresh from the primary.
        """
        if self.promoted or self._stop.is_set():
            # Never rebuild a retiring or promoted node from a peer.
            return
        metrics = get_metrics()
        reply = self._request(sock, {"op": "repl.snapshot", "epoch": self.epoch})
        snap_seq = reply["seq"]
        payload = reply["snapshot"]

        def mutate(db):
            guard = (
                self._manager.suspended()
                if self._manager is not None
                else nullcontext()
            )
            with guard:
                for name in list(db.view_names()):
                    db.drop_view(name)
                for name in list(db.table_names()):
                    db.drop_table(name)
                populate_database(db, payload)
            with self._position_cv:
                self._position = snap_seq
                self._position_cv.notify_all()

        self.server.mvcc.commit_replicated(snap_seq, mutate)
        if self._manager is not None:
            self._manager.reset_to(snap_seq)
        self._recent_digests.clear()
        self.server.quarantine.clear()
        metrics.counter("repl.resyncs").inc()
        metrics.gauge("repl.lag_frames").set(0)
