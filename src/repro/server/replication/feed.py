"""The primary's replication feed: committed WAL frames, in order.

A :class:`ReplicationFeed` is a bounded in-memory window over the tail
of the primary's WAL — every durable record (commit or imported frame)
lands here via a :class:`~repro.storage.durability.DurabilityManager`
commit listener, byte-identical to what was fsync'd.  Replicas pull
ranges with a long-poll; a replica that has fallen behind the window's
floor is told to resync from a snapshot instead.

:class:`PrimaryReplication` wraps the feed with acknowledgement
tracking: replicas piggyback their applied position on every pull, and
semi-synchronous commits (``min_sync_replicas``) block in
:meth:`wait_for_acks` until enough replicas confirm the commit's seq —
this is the mechanism behind the "zero acknowledged-commit loss on
failover" contract (docs/SERVING.md).
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque

from ...obs import get_metrics
from ...storage.durability.checksum import crc32c
from ...storage.durability.manager import DurabilityManager
from ...storage.durability.recovery import WAL_FILE
from ...storage.durability.wal import scan_wal

__all__ = ["ReplicationFeed", "PrimaryReplication", "iter_idempotency_markers"]


def iter_idempotency_markers(op: dict):
    """Yield every ``(client, key)`` dedup marker inside a decoded op.

    Markers are journaled inside the same WAL record as the write they
    guard (possibly nested in a batch), so walking a frame's op tree
    recovers the exactly-once map after a crash or on a replica.
    """
    kind = op.get("op")
    if kind == "idempotency":
        client, key = op.get("client"), op.get("key")
        if isinstance(client, str) and isinstance(key, str):
            yield client, key
    elif kind == "batch":
        for sub in op.get("ops", ()):
            if isinstance(sub, dict):
                yield from iter_idempotency_markers(sub)

#: Frames retained in memory; a replica further behind than this
#: bootstraps from a snapshot instead of replaying frames.
DEFAULT_CAPACITY = 4096


class ReplicationFeed:
    """Bounded ordered window of (seq, payload) WAL frames."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._capacity = capacity
        self._frames: "deque[tuple[int, bytes]]" = deque()
        #: Highest seq *below* the window: pulls from here are servable.
        self._base = 0
        self._lock = threading.Lock()
        self._arrival = threading.Condition(self._lock)

    @property
    def base(self) -> int:
        return self._base

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._frames[-1][0] if self._frames else self._base

    def set_position(self, seq: int) -> None:
        """Anchor an empty feed at *seq* (frames start at ``seq + 1``)."""
        with self._lock:
            if not self._frames:
                self._base = seq

    def append(self, seq: int, payload: bytes) -> None:
        with self._arrival:
            if self._frames and seq <= self._frames[-1][0]:
                return  # duplicate notification; the log is append-only
            self._frames.append((seq, payload))
            while len(self._frames) > self._capacity:
                dropped_seq, _payload = self._frames.popleft()
                self._base = dropped_seq
            self._arrival.notify_all()

    def frames_since(
        self, from_seq: int, max_frames: int, wait_s: float = 0.0
    ) -> "list[tuple[int, bytes]] | None":
        """Frames with ``seq > from_seq`` (oldest first), at most
        *max_frames*.

        Returns ``None`` when *from_seq* has fallen below the window —
        the caller must resync from a snapshot.  Blocks up to *wait_s*
        when the replica is already caught up (long-poll).
        """
        with self._arrival:
            if from_seq < self._base:
                return None
            if wait_s > 0:
                self._arrival.wait_for(
                    lambda: (self._frames and self._frames[-1][0] > from_seq)
                    or from_seq < self._base,
                    timeout=wait_s,
                )
                if from_seq < self._base:
                    return None
            out: "list[tuple[int, bytes]]" = []
            for seq, payload in self._frames:
                if seq <= from_seq:
                    continue
                out.append((seq, payload))
                if len(out) >= max_frames:
                    break
            return out

    def digests(
        self, from_seq: int, to_seq: int
    ) -> "list[tuple[int, int]] | None":
        """``(seq, CRC32C(payload))`` for frames in ``(from_seq, to_seq]``.

        ``None`` when the range dips below the window (resync instead).
        Used by replicas to detect divergence without shipping payloads.
        """
        with self._lock:
            if from_seq < self._base:
                return None
            return [
                (seq, crc32c(payload))
                for seq, payload in self._frames
                if from_seq < seq <= to_seq
            ]

    def snapshot_frames(self) -> "list[tuple[int, bytes]]":
        """A point-in-time copy of the retained frames (oldest first)."""
        with self._lock:
            return list(self._frames)

    def __len__(self) -> int:
        with self._lock:
            return len(self._frames)


class PrimaryReplication:
    """Feed + acknowledgement tracking, attached to one durable manager."""

    def __init__(
        self,
        manager: DurabilityManager,
        *,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self._manager = manager
        self.feed = ReplicationFeed(capacity)
        self._metrics = get_metrics()
        # Preload the frames already on disk so a replica that restarts
        # shortly after the primary does not need a full resync.
        wal_path = os.path.join(manager.data_dir, WAL_FILE)
        if os.path.exists(wal_path):
            for payload in scan_wal(wal_path).payloads:
                try:
                    seq = json.loads(payload.decode("utf-8")).get("seq")
                except (UnicodeDecodeError, json.JSONDecodeError):
                    continue  # recovery already vetted the log; be safe
                if not isinstance(seq, int):
                    continue
                if len(self.feed) == 0:
                    self.feed.set_position(seq - 1)
                self.feed.append(seq, payload)
        if len(self.feed) == 0:
            # Empty WAL (fresh dir or just checkpointed): everything up
            # to the manager's position is only available via snapshot.
            self.feed.set_position(manager.last_seq)
        self._positions: dict[str, int] = {}
        self._ack_lock = threading.Lock()
        self._acked = threading.Condition(self._ack_lock)
        manager.add_commit_listener(self._on_commit)

    def _on_commit(self, seq: int, payload: bytes) -> None:
        self.feed.append(seq, payload)
        self._metrics.gauge("repl.feed_frames").set(len(self.feed))

    def detach(self) -> None:
        self._manager.remove_commit_listener(self._on_commit)

    # -- acknowledgements --------------------------------------------------

    def record_ack(self, replica_id: str, seq: int) -> None:
        """A replica reported it has durably applied up through *seq*."""
        with self._acked:
            if seq > self._positions.get(replica_id, -1):
                self._positions[replica_id] = seq
                self._acked.notify_all()

    def replica_positions(self) -> dict[str, int]:
        with self._ack_lock:
            return dict(self._positions)

    def acked_count(self, seq: int) -> int:
        with self._ack_lock:
            return sum(1 for pos in self._positions.values() if pos >= seq)

    def wait_for_acks(self, seq: int, required: int, timeout: float) -> int:
        """Block until *required* replicas confirm *seq*; returns the
        count actually confirmed (may be short on timeout)."""
        with self._acked:
            self._acked.wait_for(
                lambda: sum(
                    1 for pos in self._positions.values() if pos >= seq
                ) >= required,
                timeout=timeout,
            )
            return sum(1 for pos in self._positions.values() if pos >= seq)

    def lag_of(self, replica_id: str) -> int:
        """Frames between the feed head and *replica_id*'s last ack."""
        with self._ack_lock:
            position = self._positions.get(replica_id, 0)
        return max(0, self.feed.last_seq - position)
