"""Pure log-reconciliation math: find where two WAL histories diverge.

A replica that crashed mid-apply (or accepted frames from a deposed
primary) may hold a WAL whose tail disagrees with the new primary's.
Reconciliation compares per-frame digests over the suspect range and
answers one question: *what is the highest seq both logs agree on?*
Everything after that point on the replica is truncated (logically, by
rebuilding from a snapshot ≥ that point) and re-pulled.

Pure functions, no IO — the property tests drive them with arbitrary
divergent histories.
"""

from __future__ import annotations

from ...storage.durability.checksum import crc32c

__all__ = ["frame_digests", "common_prefix_seq", "divergence_point"]


def frame_digests(frames: "list[tuple[int, bytes]]") -> "list[tuple[int, int]]":
    """``(seq, CRC32C(payload))`` per frame, in the given order."""
    return [(seq, crc32c(payload)) for seq, payload in frames]


def common_prefix_seq(
    local: "list[tuple[int, int]]", remote: "list[tuple[int, int]]"
) -> int:
    """The highest seq where *local* and *remote* digests still agree.

    Both lists are ``(seq, digest)`` sorted by seq.  Returns 0 when they
    disagree from the very first frame (or share no range at all).  A
    seq present in only one list ends the common prefix — a gap is not
    agreement.
    """
    remote_by_seq = dict(remote)
    agreed = 0
    expected = None
    for seq, digest in sorted(local):
        if expected is not None and seq != expected:
            break
        if remote_by_seq.get(seq) != digest:
            break
        agreed = seq
        expected = seq + 1
    return agreed


def divergence_point(
    local: "list[tuple[int, int]]", remote: "list[tuple[int, int]]"
) -> "int | None":
    """The first seq where the histories disagree, or ``None`` if the
    shared range matches (the shorter log is simply behind, not
    divergent)."""
    remote_by_seq = dict(remote)
    for seq, digest in sorted(local):
        other = remote_by_seq.get(seq)
        if other is not None and other != digest:
            return seq
    return None
