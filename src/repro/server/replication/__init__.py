"""WAL-shipping replication: primary feed, replicas, failover, scrubbing.

The moving parts (see docs/SERVING.md for the topology):

* :class:`~repro.server.replication.feed.PrimaryReplication` — attached
  to every durable :class:`~repro.server.server.PCQEServer`; retains the
  WAL tail in memory and tracks replica acknowledgements for
  semi-synchronous commits.
* :class:`~repro.server.replication.replica.Replica` — a read-only node
  that pulls committed frames, applies them through the recovery path,
  serves snapshot reads, and can be promoted to primary with a fenced
  epoch.
* :class:`~repro.server.replication.scrub.Scrubber` — the online
  integrity loop re-verifying on-disk checksums and cross-checking
  table fingerprints against the primary, quarantining divergence.
* :mod:`~repro.server.replication.reconcile` — pure divergence math
  shared with the property tests.
"""

from .epoch import EPOCH_FILE, load_epoch, store_epoch
from .feed import (
    PrimaryReplication,
    ReplicationFeed,
    iter_idempotency_markers,
)
from .reconcile import common_prefix_seq, divergence_point, frame_digests


def __getattr__(name: str):
    # Replica/Scrubber import the server (which imports this package for
    # the feed): resolve them lazily to keep the import graph acyclic.
    if name == "Replica":
        from .replica import Replica

        return Replica
    if name == "Scrubber":
        from .scrub import Scrubber

        return Scrubber
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "EPOCH_FILE",
    "load_epoch",
    "store_epoch",
    "PrimaryReplication",
    "ReplicationFeed",
    "iter_idempotency_markers",
    "common_prefix_seq",
    "divergence_point",
    "frame_digests",
    "Replica",
    "Scrubber",
]
