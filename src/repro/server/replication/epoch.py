"""Persisted failover epochs.

An epoch is a monotonically increasing integer naming one primary's
reign.  Promotion bumps it; every replication message carries it; a
message from a lower epoch is fenced off with
:class:`~repro.errors.StaleEpochError`.  The value is persisted next to
the WAL (atomic write) so a restarting node cannot be fooled back into
an old reign.
"""

from __future__ import annotations

import os

from ...storage.durability.atomic import atomic_write_text

__all__ = ["EPOCH_FILE", "load_epoch", "store_epoch"]

EPOCH_FILE = "epoch"


def load_epoch(data_dir: str, default: int = 1) -> int:
    """The persisted epoch under *data_dir* (``default`` if none/garbage)."""
    path = os.path.join(data_dir, EPOCH_FILE)
    try:
        with open(path, encoding="utf-8") as handle:
            return max(default, int(handle.read().strip()))
    except (FileNotFoundError, ValueError):
        return default


def store_epoch(data_dir: str, epoch: int) -> None:
    """Durably persist *epoch* under *data_dir*."""
    os.makedirs(data_dir, exist_ok=True)
    atomic_write_text(os.path.join(data_dir, EPOCH_FILE), f"{epoch}\n")
