"""The online integrity scrubber: trust, but re-verify.

A replica that applies frames correctly can still rot: disk corruption
under the WAL or snapshot, or logical divergence from a bug or a frame
accepted from a deposed primary.  The :class:`Scrubber` re-checks both,
on a timer or on demand:

1. **Physical**: re-run the offline checker
   (:func:`~repro.storage.durability.fsck.fsck_data_dir`) over the
   replica's own ``data_dir`` — every WAL frame CRC, the snapshot
   checksum.  Any issue schedules a resync (the primary's state is the
   recovery source; nothing is truncated locally).
2. **Logical**: fetch per-table fingerprints from the primary at a pinned
   seq, wait until the replica has applied that same seq, and compare
   against fingerprints of the live tables.  Divergent tables are
   **quarantined** — sessions touching them get the retryable
   ``QuarantinedTableError`` instead of silently wrong rows — and a
   resync is scheduled, which rebuilds the state and lifts the
   quarantine.
"""

from __future__ import annotations

import socket
import threading
from typing import TYPE_CHECKING, Any

from ...errors import ProtocolError, ReproError, ServerError
from ...obs import get_metrics
from ...storage.durability.fingerprint import database_fingerprints
from ...storage.durability.fsck import fsck_data_dir
from ..client import ServerReplyError
from ..protocol import recv_frame, send_frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .replica import Replica

__all__ = ["Scrubber"]


class Scrubber:
    """Periodic (or on-demand) integrity checks for one replica."""

    def __init__(self, replica: "Replica", *, interval: float = 5.0) -> None:
        self.replica = replica
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Scrubber":
        self._thread = threading.Thread(
            target=self._run,
            name=f"{self.replica.replica_id}-scrub",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if self.replica.promoted:
                return  # a primary is the fingerprint authority now
            try:
                self.run_once()
            except (OSError, ReproError, ProtocolError):
                get_metrics().counter("repl.scrub.errors").inc()

    # -- one pass ----------------------------------------------------------

    def run_once(self) -> dict[str, Any]:
        """One full scrub pass; returns a small structured report."""
        metrics = get_metrics()
        metrics.counter("repl.scrub.runs").inc()
        report: dict[str, Any] = {
            "corruption": [],
            "divergent": [],
            "checked": False,
        }
        replica = self.replica
        if replica.data_dir is not None:
            fsck = fsck_data_dir(replica.data_dir)
            if not fsck.clean:
                metrics.counter("repl.scrub.corruption").inc()
                report["corruption"] = [
                    issue.format() for issue in fsck.issues
                ]
                replica.request_resync()
                return report  # physical damage first; skip the compare
        divergent = self._fingerprint_check()
        if divergent is None:
            metrics.counter("repl.scrub.skipped").inc()
            return report
        report["checked"] = True
        report["divergent"] = divergent
        if divergent:
            metrics.counter("repl.scrub.divergences").inc(len(divergent))
            replica.server.quarantine.update(divergent)
            replica.request_resync()
        return report

    def _fingerprint_check(self) -> "list[str] | None":
        """Compare live table fingerprints against the primary's at one
        pinned seq.  ``None`` means the check could not be anchored (no
        reachable primary, or replication did not reach the seq in
        time) — skipped, not passed."""
        replica = self.replica
        try:
            sock = replica._connect()
        except OSError:
            return None
        try:
            self._request(
                sock,
                {
                    "op": "repl.handshake",
                    "replica": f"{replica.replica_id}-scrub",
                    "epoch": replica.epoch,
                },
            )
            reply = self._request(
                sock, {"op": "repl.fingerprints", "epoch": replica.epoch}
            )
        except (OSError, ServerReplyError, ProtocolError, ServerError):
            return None
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
        seq = reply.get("seq")
        theirs = reply.get("fingerprints")
        if not isinstance(seq, int) or not isinstance(theirs, dict):
            return None
        if not replica.wait_for_position(seq, timeout=2.0):
            return None
        # Pin the comparison: no replicated commit may land between the
        # position check and the fingerprint walk.
        with replica.server.mvcc.paused_commits():
            if replica.position != seq:
                return None  # the primary moved on; compare next pass
            ours = database_fingerprints(replica._db)
        divergent = sorted(
            name
            for name in set(ours) | set(theirs)
            if ours.get(name) != theirs.get(name)
        )
        return divergent

    def _request(
        self, sock: socket.socket, message: dict[str, Any]
    ) -> dict[str, Any]:
        send_frame(sock, message)
        reply = recv_frame(sock)
        if not reply.get("ok", False):
            raise ServerReplyError(reply.get("error", {}))
        return reply
