"""The PCQE socket server: many sessions, one MVCC database.

:class:`PCQEServer` accepts connections on an asyncio event loop (run on
a daemon thread, so tests and the CLI can start/stop it synchronously),
speaks the length-prefixed JSON protocol of
:mod:`~repro.server.protocol`, and runs the actual query work on a
thread pool — the event loop only ever parses frames and schedules.

Each connection starts with a ``hello`` naming ⟨user, purpose⟩ and gets
a :class:`~repro.server.session.Session` with a pinned snapshot.
Requests on one connection run in arrival order; sessions run in
parallel up to the pool size, with everything beyond that queueing.

Admission control: a request carrying ``deadline_ms`` is given a PR-3
:class:`~repro.increment.Budget` at arrival.  Before queueing, the
server projects the queue wait from the current in-flight count and an
EWMA of recent service times; if the projection already exceeds the
budget's remaining time, the request is rejected immediately with a
structured :class:`~repro.errors.AdmissionError` — a fast "no" instead
of a guaranteed-late answer.

Observability: every request runs inside a ``server.request`` span;
``server.active_sessions`` / ``server.queue_depth`` gauges and the
``server.request.latency_seconds`` histogram (p50/p95/p99 via the obs
stack's interpolation) feed the OpenMetrics exposition.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from ..errors import (
    AdmissionError,
    ProtocolError,
    ReproError,
    ServerError,
)
from ..increment import Budget
from ..obs import TIMING_BUCKETS, get_metrics, get_tracer
from ..policy import PolicyStore
from ..storage.database import Database
from .mvcc import MVCCDatabase
from .protocol import read_frame, write_frame
from .session import Session

__all__ = ["PCQEServer"]

#: Weight of the newest observation in the service-time EWMA.
_EWMA_ALPHA = 0.2


class PCQEServer:
    """Serve PCQE queries over a socket with snapshot-isolated sessions.

    ``port=0`` binds an ephemeral port (tests/benchmarks); :attr:`port`
    reports the bound one.  *workers* sizes the query thread pool.
    *service_time_hint* seeds the admission controller's service-time
    estimate (seconds) before any request has completed.
    """

    def __init__(
        self,
        db: Database,
        policies: PolicyStore,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 8,
        solver: str = "greedy",
        engine: str = "auto",
        service_time_hint: float = 0.0,
    ) -> None:
        self.mvcc = MVCCDatabase(db)
        self.policies = policies
        self.solver = solver
        self.engine = engine
        self.workers = workers
        self._host = host
        self._port = port
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="pcqe-worker"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None
        self._bound: tuple[str, int] | None = None
        self._sessions: set[Session] = set()
        self._sessions_lock = threading.Lock()
        # Admission state: in-flight request count + service-time EWMA.
        self._admission_lock = threading.Lock()
        self._inflight = 0
        self._service_ewma = service_time_hint

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        if self._bound is None:
            raise ServerError("server is not running")
        return self._bound[0]

    @property
    def port(self) -> int:
        if self._bound is None:
            raise ServerError("server is not running")
        return self._bound[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "PCQEServer":
        """Bind and serve on a daemon thread; returns once listening."""
        if self._thread is not None:
            raise ServerError("server already started")
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(ready,), name="pcqe-server", daemon=True
        )
        self._thread.start()
        ready.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=5.0)
            self._thread = None
            self._startup_error = None
            raise ServerError(f"server failed to start: {error}") from error
        return self

    def _run(self, ready: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._handle, self._host, self._port)
            )
            self._bound = self._server.sockets[0].getsockname()[:2]
        except BaseException as error:
            self._startup_error = error
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        """Stop accepting, drain workers, release every session pin."""
        if self._thread is None:
            return
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._thread = None
        self._executor.shutdown(wait=True)
        with self._sessions_lock:
            sessions, self._sessions = list(self._sessions), set()
        for session in sessions:
            session.close()
        self._bound = None

    def __enter__(self) -> "PCQEServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connection handling ----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics = get_metrics()
        session: Session | None = None
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as error:
                    await write_frame(writer, _error_reply(error))
                    return
                if request is None:
                    return  # clean disconnect
                op = request.get("op")
                if session is None:
                    if op != "hello":
                        await write_frame(
                            writer,
                            _error_reply(
                                ProtocolError(
                                    f"first frame must be 'hello', got {op!r}"
                                )
                            ),
                        )
                        return
                    try:
                        session = self._open_session(request)
                    except ReproError as error:
                        await write_frame(writer, _error_reply(error))
                        return
                    metrics.gauge("server.active_sessions").inc()
                    await write_frame(
                        writer,
                        {
                            "ok": True,
                            "session": session.id,
                            "seq": session.seq,
                            "user": session.context.user,
                            "role": session.context.role,
                            "purpose": session.context.purpose,
                        },
                    )
                    continue
                if op == "bye":
                    await write_frame(writer, {"ok": True, "closed": True})
                    return
                reply = await self._dispatch(session, op, request)
                await write_frame(writer, reply)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; the finally block cleans up
        finally:
            if session is not None:
                session.close()
                with self._sessions_lock:
                    self._sessions.discard(session)
                metrics.gauge("server.active_sessions").dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    def _open_session(self, request: dict[str, Any]) -> Session:
        user = request.get("user")
        purpose = request.get("purpose")
        if not isinstance(user, str) or not isinstance(purpose, str):
            raise ProtocolError("hello needs string 'user' and 'purpose'")
        session = Session(
            self.mvcc,
            self.policies,
            user,
            purpose,
            solver=self.solver,
            engine=self.engine,
        )
        with self._sessions_lock:
            self._sessions.add(session)
        return session

    # -- request dispatch --------------------------------------------------

    async def _dispatch(
        self, session: Session, op: Any, request: dict[str, Any]
    ) -> dict[str, Any]:
        handlers: dict[str, Callable[[Session, dict[str, Any]], dict[str, Any]]] = {
            "ask": self._op_ask,
            "profile": self._op_profile,
            "sql": self._op_sql,
            "refresh": self._op_refresh,
            "metrics": self._op_metrics,
        }
        handler = handlers.get(op) if isinstance(op, str) else None
        if handler is None:
            return _error_reply(
                ProtocolError(
                    f"unknown op {op!r} (expected one of "
                    f"{sorted(handlers)} or 'bye')"
                )
            )
        deadline_ms = request.get("deadline_ms")
        try:
            budget = self._admit(op, deadline_ms)
        except ReproError as error:
            get_metrics().counter("server.rejected").inc()
            return _error_reply(error)

        def run() -> dict[str, Any]:
            started = time.perf_counter()
            tracer = get_tracer()
            try:
                with tracer.span(
                    "server.request",
                    op=op,
                    session=session.id,
                    user=session.context.user,
                    purpose=session.context.purpose,
                    seq=session.seq,
                ):
                    try:
                        return handler(session, request)
                    except ReproError as error:
                        return _error_reply(error)
            finally:
                self._finish(time.perf_counter() - started)

        del budget  # consumed by admission; queries budget via deadline_ms
        assert self._loop is not None
        reply = await self._loop.run_in_executor(self._executor, run)
        return reply

    def _admit(self, op: str, deadline_ms: Any) -> Budget | None:
        """Gate one request; returns its deadline budget (None = no SLO).

        Projection model: the pool drains in-flight requests at roughly
        one EWMA service time per *workers* slots, so a request arriving
        with ``q`` requests in flight waits about ``q / workers * ewma``
        seconds before it runs.  Reject when that projection alone blows
        the deadline.
        """
        metrics = get_metrics()
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
        ):
            raise ProtocolError(
                f"deadline_ms must be a positive number, got {deadline_ms!r}"
            )
        with self._admission_lock:
            queue_depth = self._inflight
            ewma = self._service_ewma
            budget = None
            if deadline_ms is not None:
                budget = Budget.from_deadline_ms(float(deadline_ms))
                projected = queue_depth * ewma / max(1, self.workers)
                remaining = budget.deadline - time.perf_counter()
                if projected > remaining:
                    raise AdmissionError(
                        f"{op} rejected at admission: projected queue wait "
                        f"{projected * 1000.0:.1f} ms exceeds the "
                        f"{float(deadline_ms):g} ms deadline "
                        f"({queue_depth} request(s) in flight)",
                        deadline_ms=float(deadline_ms),
                        projected_wait_ms=projected * 1000.0,
                        queue_depth=queue_depth,
                    )
            self._inflight += 1
            metrics.gauge("server.queue_depth").set(self._inflight)
        metrics.counter("server.requests").inc()
        return budget

    def _finish(self, elapsed_seconds: float) -> None:
        metrics = get_metrics()
        with self._admission_lock:
            self._inflight -= 1
            metrics.gauge("server.queue_depth").set(self._inflight)
            if self._service_ewma <= 0.0:
                self._service_ewma = elapsed_seconds
            else:
                self._service_ewma += _EWMA_ALPHA * (
                    elapsed_seconds - self._service_ewma
                )
        metrics.histogram(
            "server.request.latency_seconds", TIMING_BUCKETS
        ).observe(elapsed_seconds)

    # -- ops (run on worker threads) ---------------------------------------

    def _op_ask(
        self, session: Session, request: dict[str, Any], profile: bool = False
    ) -> dict[str, Any]:
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ProtocolError("ask needs a non-empty 'sql' string")
        fraction = request.get("fraction", 1.0)
        if not isinstance(fraction, (int, float)):
            raise ProtocolError(f"fraction must be a number, got {fraction!r}")
        deadline_ms = request.get("deadline_ms")
        result = session.ask(
            sql,
            float(fraction),
            profile=profile,
            deadline_ms=float(deadline_ms) if deadline_ms is not None else None,
        )
        reply: dict[str, Any] = {
            "ok": True,
            "status": result.status.value,
            "threshold": result.threshold,
            "seq": session.seq,
            "rows": [list(row.values) for row, _conf in result.released],
            "confidences": [conf for _row, conf in result.released],
            "released": len(result.released),
            "withheld": result.withheld_count,
        }
        if result.quote is not None:
            reply["quote"] = {
                "cost": result.quote.cost,
                "shortfall": result.quote.shortfall,
            }
        if result.receipt is not None:
            reply["improved"] = result.receipt.tuples_improved
            reply["improvement_cost"] = result.receipt.total_cost
        if result.profile is not None:
            reply["profile"] = result.profile.format()
        return reply

    def _op_profile(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        return self._op_ask(session, request, profile=True)

    def _op_sql(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        from ..sql import DmlResult

        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ProtocolError("sql needs a non-empty 'sql' string")
        result = session.run_sql(sql)
        if isinstance(result, DmlResult):
            return {"ok": True, "result": str(result), "seq": session.seq}
        return {
            "ok": True,
            "columns": list(result.schema.names),
            "rows": [list(row.values) for row in result.rows],
            "confidences": [
                conf for _row, conf in result.with_confidences(session.db)
            ],
            "count": len(result),
            "seq": session.seq,
        }

    def _op_refresh(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        return {"ok": True, "seq": session.refresh()}

    def _op_metrics(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        from ..obs import render_openmetrics

        return {"ok": True, "openmetrics": render_openmetrics()}


def _error_reply(error: BaseException) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, AdmissionError):
        payload.update(error.details())
    return {"ok": False, "error": payload}
