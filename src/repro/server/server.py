"""The PCQE socket server: many sessions, one MVCC database.

:class:`PCQEServer` accepts connections on an asyncio event loop (run on
a daemon thread, so tests and the CLI can start/stop it synchronously),
speaks the length-prefixed JSON protocol of
:mod:`~repro.server.protocol`, and runs the actual query work on a
thread pool — the event loop only ever parses frames and schedules.

Each connection starts with a ``hello`` naming ⟨user, purpose⟩ and gets
a :class:`~repro.server.session.Session` with a pinned snapshot.
Requests on one connection run in arrival order; sessions run in
parallel up to the pool size, with everything beyond that queueing.

Admission control: a request carrying ``deadline_ms`` is given a PR-3
:class:`~repro.increment.Budget` at arrival.  Before queueing, the
server projects the queue wait from the current in-flight count and an
EWMA of recent service times; if the projection already exceeds the
budget's remaining time, the request is rejected immediately with a
structured :class:`~repro.errors.AdmissionError` — a fast "no" instead
of a guaranteed-late answer.

Failure hardening (see ``docs/ROBUSTNESS.md``, "Serving under failure"):

* every reply goes through one frame-write boundary that absorbs
  half-closed sockets (``server.write_errors``) and applies injected
  chaos (:mod:`~repro.server.faults`, ``server.faults.injected``);
* a per-request server-side timeout (``request_timeout``) answers with a
  retryable :class:`~repro.errors.RequestTimeoutError` and then performs
  a cancellation handshake — budgets are cooperative, so the worker is
  given a bounded grace to acknowledge before the connection is poisoned
  (closed) rather than sharing a session with a zombie thread;
* a load-shedding tier above admission control rejects by priority class
  (``ask`` sheds first, ``metrics`` last) when the queue exceeds a
  per-class multiple of the pool (``server.shed``);
* a per-connection circuit breaker converts repeated handler failures
  into fast :class:`~repro.errors.CircuitOpenError` rejections;
* requests carrying an ``idempotency_key`` are deduplicated in a bounded
  LRU keyed by ⟨client id, key⟩, so a client retrying after an ambiguous
  failure (timeout, torn reply) gets the completed reply instead of a
  second execution (``server.idempotent_replays``);
* :meth:`PCQEServer.drain` stops accepting, lets in-flight requests
  finish (new ones get :class:`~repro.errors.ServerDrainingError`),
  checkpoints a durable database, and stops.

Observability: every request runs inside a ``server.request`` span;
``server.active_sessions`` / ``server.queue_depth`` /
``server.breaker.open`` / ``server.draining`` gauges and the
``server.request.latency_seconds`` histogram (p50/p95/p99 via the obs
stack's interpolation) feed the OpenMetrics exposition.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from ..errors import (
    AdmissionError,
    CircuitOpenError,
    OverloadError,
    ProtocolError,
    ReplicationError,
    ReplicationTimeoutError,
    ReproError,
    RequestTimeoutError,
    ServerDrainingError,
    ServerError,
    StaleEpochError,
)
from ..increment import Budget
from ..obs import TIMING_BUCKETS, get_metrics, get_tracer
from ..policy import PolicyStore
from ..storage.database import Database
from ..storage.durability.fingerprint import database_fingerprints
from ..storage.durability.snapshot import snapshot_payload
from .faults import NetworkFaultInjector
from .mvcc import MVCCDatabase
from .protocol import encode_frame, read_frame
from .replication.feed import PrimaryReplication, iter_idempotency_markers
from .session import Session

__all__ = ["PCQEServer", "PRIORITY_CLASSES"]

logger = logging.getLogger("repro.server")

#: Weight of the newest observation in the service-time EWMA.
_EWMA_ALPHA = 0.2

#: Priority class per op for the load shedder: lower sheds first.  Asks
#: are the expensive solver work and the first to go; plain SQL is mid;
#: ``metrics``/``refresh`` stay up so operators can watch the overload.
PRIORITY_CLASSES: dict[str, int] = {
    "ask": 0,
    "profile": 0,
    "sql": 1,
    "refresh": 2,
    "metrics": 2,
}

#: Queue-depth multiple of ``workers`` above which each priority class
#: is shed.  No entry = never shed.
DEFAULT_SHED_MULTIPLIERS: dict[int, float] = {0: 2.0, 1: 4.0}


class _ConnectionPoisoned(Exception):
    """Internal: send *reply*, then close the connection (zombie worker)."""

    def __init__(self, reply: dict[str, Any]) -> None:
        super().__init__("connection poisoned")
        self.reply = reply


class _ConnectionBreaker:
    """Per-connection circuit breaker over handler failures.

    ``closed`` → normal; ``threshold`` consecutive failures → ``open``
    (fast rejections, no queueing) for ``cooldown`` seconds → one
    ``half_open`` probe; its success closes the breaker, its failure
    re-opens it.  ``threshold <= 0`` disables the breaker entirely.
    The ``server.breaker.open`` gauge counts currently-open breakers.
    """

    __slots__ = ("threshold", "cooldown", "clock", "failures", "state",
                 "opened_at")

    def __init__(
        self,
        threshold: int,
        cooldown: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self.failures = 0
        self.state = "closed"
        self.opened_at = 0.0

    def _set_state(self, state: str) -> None:
        if state == self.state:
            return
        gauge = get_metrics().gauge("server.breaker.open")
        if self.state == "open":
            gauge.dec()
        if state == "open":
            gauge.inc()
            self.opened_at = self.clock()
        self.state = state

    def allow(self) -> tuple[bool, float]:
        """(admit?, seconds until the next probe if not)."""
        if self.state != "open":
            return True, 0.0
        elapsed = self.clock() - self.opened_at
        if elapsed >= self.cooldown:
            self._set_state("half_open")
            return True, 0.0
        return False, self.cooldown - elapsed

    def record_success(self) -> None:
        self.failures = 0
        self._set_state("closed")

    def record_failure(self) -> None:
        if self.threshold <= 0:
            return
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.threshold:
            self._set_state("open")

    def discard(self) -> None:
        """Connection teardown: an open breaker leaves the gauge with it."""
        self._set_state("closed")


class _ReplicatedKeys:
    """Bounded map of ⟨client id, idempotency key⟩ → commit seq, built
    from WAL-journaled dedup markers.

    Unlike :class:`_IdempotencyCache` (volatile, holds full replies)
    this map is reconstructed from the *replicated log* — on startup
    from the local WAL, on replicas from every applied frame — so a
    retry that lands on a freshly-promoted primary after failover is
    still deduplicated, even though the node that executed the original
    is dead.  The replay cannot reproduce the original reply payload
    (that died with the old primary); it answers with the committed seq,
    which is exactly what an exactly-once writer needs.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, str], int] = OrderedDict()

    def get(self, key: tuple[str, str]) -> "int | None":
        with self._lock:
            seq = self._entries.get(key)
            if seq is not None:
                self._entries.move_to_end(key)
            return seq

    def put(self, key: tuple[str, str], seq: int) -> None:
        with self._lock:
            self._entries[key] = seq
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _IdempotencyCache:
    """Bounded LRU of ⟨client id, idempotency key⟩ → reply (or in-flight
    future).  Storing the *future* at admission closes the double-execute
    race: a retry that lands while the original is still running awaits
    the same execution instead of starting a second one.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, str], Any] = OrderedDict()

    def get(self, key: tuple[str, str]) -> Any:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: tuple[str, str], value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def drop(self, key: tuple[str, str]) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class PCQEServer:
    """Serve PCQE queries over a socket with snapshot-isolated sessions.

    ``port=0`` binds an ephemeral port (tests/benchmarks); :attr:`port`
    reports the bound one.  *workers* sizes the query thread pool.
    *service_time_hint* seeds the admission controller's service-time
    estimate (seconds) before any request has completed.

    *request_timeout* (seconds) bounds every request server-side: the
    client gets a retryable :class:`~repro.errors.RequestTimeoutError`
    and the worker — whose ask budget is capped to the same horizon — is
    given a grace window to stop before the connection is closed.
    *faults* arms a :class:`~repro.server.faults.NetworkFaultInjector`
    for chaos testing.  *breaker_threshold* / *breaker_cooldown*
    configure the per-connection circuit breaker (``threshold=0``
    disables it); *shed_multipliers* maps priority class → queue-depth
    multiple of *workers* above which that class is shed.
    """

    def __init__(
        self,
        db: Database,
        policies: PolicyStore,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 8,
        solver: str = "greedy",
        engine: str = "auto",
        fallback: "tuple[str, ...] | None" = None,
        service_time_hint: float = 0.0,
        request_timeout: float | None = None,
        faults: NetworkFaultInjector | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 1.0,
        shed_multipliers: "dict[int, float] | None" = None,
        idempotency_capacity: int = 1024,
        read_only: bool = False,
        epoch: int = 1,
        min_sync_replicas: int = 0,
        sync_timeout: float = 2.0,
        min_seq_wait: float = 2.0,
    ) -> None:
        self.mvcc = MVCCDatabase(db)
        self.policies = policies
        self.solver = solver
        self.engine = engine
        self.fallback = fallback
        self.workers = workers
        self.request_timeout = request_timeout
        self.faults = faults
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.shed_multipliers = (
            dict(DEFAULT_SHED_MULTIPLIERS)
            if shed_multipliers is None
            else dict(shed_multipliers)
        )
        self._db = db
        self._host = host
        self._port = port
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="pcqe-worker"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None
        self._bound: tuple[str, int] | None = None
        self._sessions: set[Session] = set()
        self._sessions_lock = threading.Lock()
        # Admission state: in-flight request count + service-time EWMA.
        self._admission_lock = threading.Lock()
        self._inflight = 0
        self._service_ewma = service_time_hint
        self._draining = False
        # Requests admitted but whose reply has not been written yet;
        # drain waits on this so an accepted request is never dropped
        # between its worker finishing and its reply leaving the socket.
        self._requests_open = 0
        self._idempotency = _IdempotencyCache(idempotency_capacity)
        # -- replication state --------------------------------------------
        #: Replica mode: sessions are read-only, writes answer
        #: NotPrimaryError with rotate:true.  Flipped by promotion.
        self.read_only = read_only
        self.epoch = epoch
        get_metrics().gauge("server.epoch").set(epoch)
        self.min_sync_replicas = min_sync_replicas
        self.sync_timeout = sync_timeout
        self.min_seq_wait = min_seq_wait
        #: Lowercase table names the scrubber has quarantined; shared
        #: with every session (enforced at SessionDatabase.table).
        self.quarantine: "set[str]" = set()
        self._replicated_keys = _ReplicatedKeys(idempotency_capacity)
        self._durability = db._durability if db.is_durable else None
        self.replication: PrimaryReplication | None = (
            PrimaryReplication(self._durability)
            if self._durability is not None
            else None
        )
        if self.replication is not None:
            # Rebuild the durable exactly-once map from markers already
            # in the WAL (a restarted primary must keep deduplicating
            # keys it committed before the restart).
            for seq, payload in self.replication.feed.snapshot_frames():
                try:
                    op = json.loads(payload.decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    continue
                for client, idem_key in iter_idempotency_markers(op):
                    self._replicated_keys.put((client, idem_key), seq)
        if request_timeout is not None and request_timeout <= 0:
            raise ServerError("request_timeout must be positive")
        self._timeout_grace = (
            max(1.0, 2.0 * request_timeout)
            if request_timeout is not None
            else 1.0
        )

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        if self._bound is None:
            raise ServerError("server is not running")
        return self._bound[0]

    @property
    def port(self) -> int:
        if self._bound is None:
            raise ServerError("server is not running")
        return self._bound[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def role(self) -> str:
        return "replica" if self.read_only else "primary"

    def set_epoch(self, epoch: int) -> None:
        self.epoch = epoch
        get_metrics().gauge("server.epoch").set(epoch)

    def promote_to_primary(self, epoch: int) -> None:
        """Flip a replica server into the writable primary role.

        Existing sessions keep their read-only flag (they were opened
        under the old regime and reconnect through the retrying client);
        new sessions accept writes.  *epoch* fences the deposed primary.
        """
        self.read_only = False
        self.set_epoch(epoch)
        get_metrics().counter("server.promotions").inc()

    def record_replicated_key(self, client: str, key: str, seq: int) -> None:
        """Harvested WAL idempotency marker (replica apply path)."""
        self._replicated_keys.put((client, key), seq)

    def start(self) -> "PCQEServer":
        """Bind and serve on a daemon thread; returns once listening."""
        if self._thread is not None:
            raise ServerError("server already started")
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(ready,), name="pcqe-server", daemon=True
        )
        self._thread.start()
        ready.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=5.0)
            self._thread = None
            self._startup_error = None
            raise ServerError(f"server failed to start: {error}") from error
        return self

    def _run(self, ready: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._handle, self._host, self._port)
            )
            self._bound = self._server.sockets[0].getsockname()[:2]
        except BaseException as error:
            self._startup_error = error
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        """Stop accepting, drain workers, release every session pin."""
        if self._thread is None:
            return
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._thread = None
        self._executor.shutdown(wait=True)
        if self.replication is not None:
            self.replication.detach()
        with self._sessions_lock:
            sessions, self._sessions = list(self._sessions), set()
        for session in sessions:
            session.close()
        self._bound = None

    def drain(self, timeout: float = 5.0) -> dict[str, Any]:
        """Graceful shutdown: finish in-flight work, checkpoint, stop.

        Stops accepting new connections immediately; requests already
        admitted get up to *timeout* seconds to finish **and** have their
        replies written, while new requests (on existing connections) are
        rejected with a retryable
        :class:`~repro.errors.ServerDrainingError`.  Once quiescent — or
        at the deadline — a durable database is checkpointed and the
        server stops.  Returns a report: ``drained`` is True iff nothing
        in flight was abandoned.
        """
        if self._thread is None:
            raise ServerError("server is not running")
        assert self._loop is not None
        metrics = get_metrics()
        metrics.gauge("server.draining").set(1)
        self._draining = True
        server = self._server
        if server is not None:
            self._loop.call_soon_threadsafe(server.close)
        started = time.monotonic()
        deadline = started + timeout
        while time.monotonic() < deadline:
            with self._admission_lock:
                busy = self._inflight or self._requests_open
            if not busy:
                break
            time.sleep(0.005)
        with self._admission_lock:
            leftover = self._inflight + self._requests_open
        checkpoint_bytes = 0
        if leftover == 0 and self._db.is_durable:
            checkpoint_bytes = self._db.checkpoint()
        self.stop()
        metrics.gauge("server.draining").set(0)
        return {
            "drained": leftover == 0,
            "waited_s": time.monotonic() - started,
            "inflight": leftover,
            "checkpoint_bytes": checkpoint_bytes,
        }

    def __enter__(self) -> "PCQEServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connection handling ----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics = get_metrics()
        session: Session | None = None
        repl_peer: "dict[str, Any] | None" = None
        breaker = _ConnectionBreaker(
            self.breaker_threshold, self.breaker_cooldown
        )
        try:
            while True:
                if self.faults is not None:
                    action = self.faults.decide("server.read")
                    if action is not None:
                        metrics.counter("server.faults.injected").inc()
                        return
                try:
                    request = await read_frame(reader)
                except ProtocolError as error:
                    await self._write_frame(writer, _error_reply(error))
                    return
                if request is None:
                    return  # clean disconnect
                op = request.get("op")
                rid = request.get("rid")
                if isinstance(op, str) and op.startswith("repl."):
                    # Replication is session-less: no snapshot pin, no
                    # policy context, and no admission accounting — a
                    # draining primary keeps feeding its replicas so
                    # acknowledged commits reach safety before shutdown.
                    if session is not None:
                        reply = _error_reply(
                            ProtocolError(
                                "replication ops are not valid on a "
                                "client session"
                            ),
                            rid=rid,
                        )
                    else:
                        if repl_peer is None:
                            repl_peer = {"id": None}
                        reply = await self._dispatch_repl(
                            op, request, repl_peer
                        )
                    if not await self._write_frame(writer, _stamp(reply, rid)):
                        return
                    continue
                if session is None:
                    if repl_peer is not None:
                        await self._write_frame(
                            writer,
                            _error_reply(
                                ProtocolError(
                                    "this connection is a replication "
                                    "link; client ops are not valid"
                                ),
                                rid=rid,
                            ),
                        )
                        return
                    if op != "hello":
                        await self._write_frame(
                            writer,
                            _error_reply(
                                ProtocolError(
                                    f"first frame must be 'hello', got {op!r}"
                                ),
                                rid=rid,
                            ),
                        )
                        return
                    if self._draining:
                        await self._write_frame(
                            writer,
                            _error_reply(
                                ServerDrainingError(
                                    "hello rejected: server is draining"
                                ),
                                rid=rid,
                            ),
                        )
                        return
                    try:
                        session = self._open_session(request)
                    except ReproError as error:
                        await self._write_frame(
                            writer, _error_reply(error, rid=rid)
                        )
                        return
                    metrics.gauge("server.active_sessions").inc()
                    await self._write_frame(
                        writer,
                        _stamp(
                            {
                                "ok": True,
                                "session": session.id,
                                "seq": session.seq,
                                "user": session.context.user,
                                "role": session.context.role,
                                "purpose": session.context.purpose,
                                "server_role": self.role,
                                "epoch": self.epoch,
                            },
                            rid,
                        ),
                    )
                    continue
                if op == "bye":
                    await self._write_frame(
                        writer, _stamp({"ok": True, "closed": True}, rid)
                    )
                    return
                poisoned = False
                with self._admission_lock:
                    self._requests_open += 1
                try:
                    try:
                        reply = await self._dispatch(
                            session, breaker, op, request
                        )
                    except _ConnectionPoisoned as zombie:
                        reply = zombie.reply
                        poisoned = True
                    wrote = await self._write_frame(
                        writer, _stamp(reply, rid)
                    )
                finally:
                    with self._admission_lock:
                        self._requests_open -= 1
                if poisoned or not wrote:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; the finally block cleans up
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection task while it was
            # parked in read_frame.  Finish normally instead of ending in
            # the cancelled state: Python 3.11's streams done-callback
            # calls task.exception() and would log the CancelledError as
            # an unhandled callback exception.
            pass
        except Exception:  # pragma: no cover - defensive backstop
            metrics.counter("server.connection_errors").inc()
            logger.exception("connection handler failed")
        finally:
            if session is not None:
                session.close()
                with self._sessions_lock:
                    self._sessions.discard(session)
                metrics.gauge("server.active_sessions").dec()
            breaker.discard()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass  # pragma: no cover
            except asyncio.CancelledError:  # pragma: no cover - shutdown
                pass

    async def _write_frame(
        self, writer: asyncio.StreamWriter, message: dict[str, Any]
    ) -> bool:
        """The single frame-write boundary: faults in, socket errors out.

        Returns False when the connection is unusable afterwards — the
        caller must stop the conversation (the ``finally`` in
        :meth:`_handle` releases the session pin either way).
        """
        metrics = get_metrics()
        data = encode_frame(message)
        action = (
            self.faults.decide("server.write", len(data))
            if self.faults is not None
            else None
        )
        try:
            if action is None:
                writer.write(data)
                await writer.drain()
                return True
            metrics.counter("server.faults.injected").inc()
            if action.mode == "disconnect":
                return False
            if action.mode == "reset":
                writer.transport.abort()
                return False
            if action.mode == "torn_frame":
                writer.write(data[: action.cut])
                await writer.drain()
                writer.transport.abort()
                return False
            if action.mode == "delay":
                await asyncio.sleep(action.delay_s)
            elif action.mode == "slow_write":
                for offset in range(0, len(data), action.chunk):
                    writer.write(data[offset : offset + action.chunk])
                    await writer.drain()
                    await asyncio.sleep(action.delay_s)
                return True
            elif action.mode == "dup":
                writer.write(data)
            writer.write(data)
            await writer.drain()
            return True
        except (ConnectionResetError, BrokenPipeError, OSError):
            # Half-closed peer: count it, close quietly.  Never let a
            # write error escape into the asyncio exception handler.
            metrics.counter("server.write_errors").inc()
            return False

    def _open_session(self, request: dict[str, Any]) -> Session:
        user = request.get("user")
        purpose = request.get("purpose")
        if not isinstance(user, str) or not isinstance(purpose, str):
            raise ProtocolError("hello needs string 'user' and 'purpose'")
        client_id = request.get("client_id")
        if client_id is not None and not isinstance(client_id, str):
            raise ProtocolError("client_id must be a string")
        session = Session(
            self.mvcc,
            self.policies,
            user,
            purpose,
            solver=self.solver,
            engine=self.engine,
            fallback=self.fallback,
            client_id=client_id,
            read_only=self.read_only,
            quarantine=self.quarantine,
        )
        with self._sessions_lock:
            self._sessions.add(session)
        return session

    # -- request dispatch --------------------------------------------------

    async def _dispatch(
        self,
        session: Session,
        breaker: _ConnectionBreaker,
        op: Any,
        request: dict[str, Any],
    ) -> dict[str, Any]:
        handlers: dict[str, Callable[[Session, dict[str, Any]], dict[str, Any]]] = {
            "ask": self._op_ask,
            "profile": self._op_profile,
            "sql": self._op_sql,
            "refresh": self._op_refresh,
            "metrics": self._op_metrics,
        }
        handler = handlers.get(op) if isinstance(op, str) else None
        if handler is None:
            return _error_reply(
                ProtocolError(
                    f"unknown op {op!r} (expected one of "
                    f"{sorted(handlers)} or 'bye')"
                )
            )
        metrics = get_metrics()
        key = request.get("idempotency_key")
        ckey: tuple[str, str] | None = None
        if key is not None:
            if not isinstance(key, str):
                return _error_reply(
                    ProtocolError("idempotency_key must be a string")
                )
            ckey = (session.client_id, key)
            entry = self._idempotency.get(ckey)
            if entry is not None:
                metrics.counter("server.idempotent_replays").inc()
                if isinstance(entry, asyncio.Future):
                    reply = await asyncio.shield(entry)
                else:
                    reply = entry
                reply = dict(reply)
                reply["idempotent_replay"] = True
                return reply
            seq_seen = self._replicated_keys.get(ckey)
            if seq_seen is not None:
                # Durable dedup: the key was journaled inside the commit
                # it guards, so it survives crash recovery *and* failover
                # to a promoted replica.  The full reply is gone (it lived
                # in the dead primary's volatile cache); re-acknowledge the
                # commit without re-executing it.
                metrics.counter("server.idempotent_replays").inc()

                def replay(seq: int = seq_seen) -> dict[str, Any]:
                    try:
                        self._confirm_replicated(seq)
                    except ReproError as error:
                        return _error_reply(error)
                    return {
                        "ok": True,
                        "idempotent_replay": True,
                        "seq": seq,
                        "result": "ok (deduplicated from the replicated log)",
                    }

                assert self._loop is not None
                return await asyncio.shield(
                    self._loop.run_in_executor(self._executor, replay)
                )
        allowed, retry_after = breaker.allow()
        if not allowed:
            metrics.counter("server.breaker.rejections").inc()
            return _error_reply(
                CircuitOpenError(
                    f"{op} rejected: circuit breaker open after "
                    f"{breaker.failures} consecutive failure(s); retry in "
                    f"{retry_after * 1000.0:.0f} ms",
                    failures=breaker.failures,
                    retry_after_ms=retry_after * 1000.0,
                )
            )
        deadline_ms = request.get("deadline_ms")
        try:
            budget = self._admit(op, deadline_ms)
        except ReproError as error:
            metrics.counter("server.rejected").inc()
            return _error_reply(error)
        del budget  # consumed by admission; queries budget via deadline_ms
        if self.request_timeout is not None and op in ("ask", "profile"):
            # Cap the worker's cooperative deadline by the server-side
            # timeout so a timed-out ask *stops* (degrading through the
            # session's fallback chain) instead of running on as a
            # zombie after its client already got the timeout reply.
            cap_ms = self.request_timeout * 1000.0
            if not isinstance(deadline_ms, (int, float)) or deadline_ms > cap_ms:
                request = {**request, "deadline_ms": cap_ms}

        def run() -> dict[str, Any]:
            started = time.perf_counter()
            tracer = get_tracer()
            try:
                with tracer.span(
                    "server.request",
                    op=op,
                    session=session.id,
                    user=session.context.user,
                    purpose=session.context.purpose,
                    seq=session.seq,
                ):
                    try:
                        return handler(session, request)
                    except ReproError as error:
                        return _error_reply(error)
                    except Exception as error:
                        get_metrics().counter("server.handler_errors").inc()
                        logger.exception("unexpected failure in %s handler", op)
                        return _error_reply(
                            ServerError(
                                f"internal error in {op}: "
                                f"{type(error).__name__}: {error}"
                            )
                        )
            finally:
                self._finish(time.perf_counter() - started)

        assert self._loop is not None
        future = self._loop.run_in_executor(self._executor, run)
        if ckey is not None:
            cache_key = ckey
            self._idempotency.put(cache_key, future)
            future.add_done_callback(
                lambda fut: self._settle_idempotent(cache_key, fut)
            )
        if self.request_timeout is None:
            reply = await asyncio.shield(future)
        else:
            try:
                reply = await asyncio.wait_for(
                    asyncio.shield(future), self.request_timeout
                )
            except asyncio.TimeoutError:
                metrics.counter("server.timeouts").inc()
                breaker.record_failure()
                timeout_reply = _error_reply(
                    RequestTimeoutError(
                        f"{op} exceeded the server-side request timeout of "
                        f"{self.request_timeout * 1000.0:g} ms",
                        op=str(op),
                        timeout_ms=self.request_timeout * 1000.0,
                    )
                )
                # Cancellation handshake: budgets are cooperative, so the
                # worker (whose deadline was capped above) should yield
                # shortly.  If it does not, the connection is poisoned —
                # closed after this reply — so the session is never shared
                # with a still-running worker.
                done, _pending = await asyncio.wait(
                    {future}, timeout=self._timeout_grace
                )
                if not done:
                    raise _ConnectionPoisoned(timeout_reply)
                return timeout_reply
        if reply.get("ok", False):
            breaker.record_success()
        else:
            breaker.record_failure()
        return reply

    def _settle_idempotent(
        self, key: tuple[str, str], future: "asyncio.Future"
    ) -> None:
        """Swap the in-flight future for the completed reply (ok replies
        only — a failed attempt must not pin its error as the permanent
        answer for the key)."""
        if future.cancelled() or future.exception() is not None:
            self._idempotency.drop(key)
            return
        reply = future.result()
        if isinstance(reply, dict) and reply.get("ok", False):
            self._idempotency.put(key, reply)
        else:
            self._idempotency.drop(key)

    def _admit(self, op: str, deadline_ms: Any) -> Budget | None:
        """Gate one request; returns its deadline budget (None = no SLO).

        Three tiers, cheapest first: a drain check (the server is going
        away), the load shedder (queue depth vs. a per-priority-class
        multiple of the pool — overload protection that needs no client
        deadline), then the EWMA deadline projection: the pool drains
        in-flight requests at roughly one EWMA service time per
        *workers* slots, so a request arriving with ``q`` requests in
        flight waits about ``q / workers * ewma`` seconds before it
        runs.  Reject when that projection alone blows the deadline.
        """
        metrics = get_metrics()
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
        ):
            raise ProtocolError(
                f"deadline_ms must be a positive number, got {deadline_ms!r}"
            )
        if self._draining:
            raise ServerDrainingError(
                f"{op} rejected: server is draining (in-flight work is "
                f"finishing; no new work is accepted)"
            )
        with self._admission_lock:
            queue_depth = self._inflight
            ewma = self._service_ewma
            priority = PRIORITY_CLASSES.get(op, 1)
            multiplier = self.shed_multipliers.get(priority)
            if multiplier is not None:
                limit = max(1, int(self.workers * multiplier))
                if queue_depth >= limit:
                    metrics.counter("server.shed").inc()
                    raise OverloadError(
                        f"{op} shed: {queue_depth} request(s) in flight >= "
                        f"the class-{priority} limit of {limit} "
                        f"({self.workers} worker(s) x {multiplier:g})",
                        op=str(op),
                        priority=priority,
                        queue_depth=queue_depth,
                        limit=limit,
                    )
            budget = None
            if deadline_ms is not None:
                budget = Budget.from_deadline_ms(float(deadline_ms))
                projected = queue_depth * ewma / max(1, self.workers)
                remaining = budget.deadline - time.perf_counter()
                if projected > remaining:
                    raise AdmissionError(
                        f"{op} rejected at admission: projected queue wait "
                        f"{projected * 1000.0:.1f} ms exceeds the "
                        f"{float(deadline_ms):g} ms deadline "
                        f"({queue_depth} request(s) in flight)",
                        deadline_ms=float(deadline_ms),
                        projected_wait_ms=projected * 1000.0,
                        queue_depth=queue_depth,
                    )
            self._inflight += 1
            metrics.gauge("server.queue_depth").set(self._inflight)
        metrics.counter("server.requests").inc()
        return budget

    def _finish(self, elapsed_seconds: float) -> None:
        metrics = get_metrics()
        with self._admission_lock:
            self._inflight -= 1
            metrics.gauge("server.queue_depth").set(self._inflight)
            if self._service_ewma <= 0.0:
                self._service_ewma = elapsed_seconds
            else:
                self._service_ewma += _EWMA_ALPHA * (
                    elapsed_seconds - self._service_ewma
                )
        metrics.histogram(
            "server.request.latency_seconds", TIMING_BUCKETS
        ).observe(elapsed_seconds)

    # -- ops (run on worker threads) ---------------------------------------

    def _op_ask(
        self, session: Session, request: dict[str, Any], profile: bool = False
    ) -> dict[str, Any]:
        self._ensure_min_seq(session, request)
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ProtocolError("ask needs a non-empty 'sql' string")
        fraction = request.get("fraction", 1.0)
        if not isinstance(fraction, (int, float)):
            raise ProtocolError(f"fraction must be a number, got {fraction!r}")
        deadline_ms = request.get("deadline_ms")
        result = session.ask(
            sql,
            float(fraction),
            profile=profile,
            deadline_ms=float(deadline_ms) if deadline_ms is not None else None,
        )
        reply: dict[str, Any] = {
            "ok": True,
            "status": result.status.value,
            "threshold": result.threshold,
            "seq": session.seq,
            "rows": [list(row.values) for row, _conf in result.released],
            "confidences": [conf for _row, conf in result.released],
            "released": len(result.released),
            "withheld": result.withheld_count,
        }
        if result.degraded:
            reply["degraded"] = True
        if result.quote is not None:
            reply["quote"] = {
                "cost": result.quote.cost,
                "shortfall": result.quote.shortfall,
            }
        if result.receipt is not None:
            reply["improved"] = result.receipt.tuples_improved
            reply["improvement_cost"] = result.receipt.total_cost
            # The improvement write-back committed; under semi-sync
            # replication the acknowledgement must wait for replicas too.
            self._confirm_replicated(session.seq)
        if result.profile is not None:
            reply["profile"] = result.profile.format()
        return reply

    def _op_profile(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        return self._op_ask(session, request, profile=True)

    def _op_sql(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        from ..sql import DmlResult

        self._ensure_min_seq(session, request)
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ProtocolError("sql needs a non-empty 'sql' string")
        key = request.get("idempotency_key")
        idempotency = (
            key if isinstance(key, str) and self._db.is_durable else None
        )
        result = session.run_sql(sql, idempotency=idempotency)
        if isinstance(result, DmlResult):
            seq = session.seq
            if idempotency is not None:
                # Record before confirming: if the semi-sync wait times
                # out and the client retries, the retry must hit the
                # durable replay path, not re-execute the statement.
                self._replicated_keys.put((session.client_id, idempotency), seq)
            self._confirm_replicated(seq)
            return {"ok": True, "result": str(result), "seq": seq}
        return {
            "ok": True,
            "columns": list(result.schema.names),
            "rows": [list(row.values) for row in result.rows],
            "confidences": [
                conf for _row, conf in result.with_confidences(session.db)
            ],
            "count": len(result),
            "seq": session.seq,
        }

    def _op_refresh(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        self._ensure_min_seq(session, request)
        return {"ok": True, "seq": session.refresh()}

    def _op_metrics(
        self, session: Session, request: dict[str, Any]
    ) -> dict[str, Any]:
        from ..obs import render_openmetrics

        return {"ok": True, "openmetrics": render_openmetrics()}

    # -- read-your-writes + semi-sync helpers --------------------------------

    def _ensure_min_seq(self, session: Session, request: dict[str, Any]) -> None:
        """Honor the request's ``min_seq`` read-your-writes floor."""
        min_seq = request.get("min_seq")
        if min_seq is None:
            return
        if not isinstance(min_seq, int) or min_seq < 0:
            raise ProtocolError(
                f"min_seq must be a non-negative integer, got {min_seq!r}"
            )
        session.ensure_seq(min_seq, self.min_seq_wait)

    def _confirm_replicated(self, seq: int) -> None:
        """Block an acknowledgement until ``min_sync_replicas`` replicas
        have durably applied *seq* (semi-synchronous replication).

        On timeout the commit is NOT rolled back — it is durable locally
        and still streaming — but the client gets a retryable error, so
        "acknowledged" always implies "on at least N replicas".
        """
        if self.min_sync_replicas <= 0 or self.replication is None:
            return
        acked = self.replication.wait_for_acks(
            seq, self.min_sync_replicas, self.sync_timeout
        )
        if acked < self.min_sync_replicas:
            get_metrics().counter("server.sync_timeouts").inc()
            raise ReplicationTimeoutError(
                f"commit at seq {seq} reached only {acked} of "
                f"{self.min_sync_replicas} required replica(s) within "
                f"{self.sync_timeout * 1000.0:.0f} ms",
                seq=seq,
                required=self.min_sync_replicas,
                acked=acked,
            )

    # -- replication ops (session-less; see _handle) -------------------------

    async def _dispatch_repl(
        self, op: str, request: dict[str, Any], peer: dict[str, Any]
    ) -> dict[str, Any]:
        handlers: dict[str, Callable[..., dict[str, Any]]] = {
            "repl.handshake": self._repl_handshake,
            "repl.pull": self._repl_pull,
            "repl.snapshot": self._repl_snapshot,
            "repl.digest": self._repl_digest,
            "repl.fingerprints": self._repl_fingerprints,
        }
        handler = handlers.get(op)
        if handler is None:
            return _error_reply(
                ProtocolError(
                    f"unknown replication op {op!r} "
                    f"(expected one of {sorted(handlers)})"
                )
            )
        if self.replication is None:
            return _error_reply(
                ServerError(
                    "replication requires a durable database "
                    "(this server is in-memory)"
                )
            )
        if op != "repl.handshake" and peer["id"] is None:
            return _error_reply(
                ProtocolError(
                    f"{op} before repl.handshake: the handshake names the "
                    f"replica and agrees on an epoch first"
                )
            )

        def run() -> dict[str, Any]:
            try:
                return handler(request, peer)
            except ReproError as error:
                return _error_reply(error)
            except Exception as error:
                get_metrics().counter("server.handler_errors").inc()
                logger.exception("unexpected failure in %s handler", op)
                return _error_reply(
                    ServerError(
                        f"internal error in {op}: "
                        f"{type(error).__name__}: {error}"
                    )
                )

        assert self._loop is not None
        return await asyncio.shield(
            self._loop.run_in_executor(self._executor, run)
        )

    def _repl_epoch_guard(self, request: dict[str, Any]) -> None:
        """Fence a deposed primary: a peer announcing a *higher* epoch
        proves a promotion happened behind our back, so this node must
        stop acting as primary for replication purposes.  Lower peer
        epochs are fine — the reply carries ours and the replica adopts
        it."""
        peer_epoch = request.get("epoch")
        if peer_epoch is None:
            return
        if not isinstance(peer_epoch, int) or peer_epoch < 0:
            raise ProtocolError(
                f"epoch must be a non-negative integer, got {peer_epoch!r}"
            )
        if peer_epoch > self.epoch:
            get_metrics().counter("server.fenced").inc()
            raise StaleEpochError(
                f"this server's epoch {self.epoch} is stale: a peer is at "
                f"epoch {peer_epoch} (a newer primary has been promoted)",
                stale_epoch=self.epoch,
                current_epoch=peer_epoch,
            )

    def _repl_handshake(
        self, request: dict[str, Any], peer: dict[str, Any]
    ) -> dict[str, Any]:
        replica = request.get("replica")
        if not isinstance(replica, str) or not replica:
            raise ProtocolError(
                "repl.handshake needs a non-empty 'replica' id"
            )
        self._repl_epoch_guard(request)
        peer["id"] = replica
        last_seq = request.get("last_seq")
        if isinstance(last_seq, int) and last_seq >= 0:
            assert self.replication is not None
            self.replication.record_ack(replica, last_seq)
        assert self._durability is not None
        return {
            "ok": True,
            "epoch": self.epoch,
            "last_seq": self._durability.last_seq,
            "role": self.role,
        }

    def _repl_pull(
        self, request: dict[str, Any], peer: dict[str, Any]
    ) -> dict[str, Any]:
        self._repl_epoch_guard(request)
        assert self.replication is not None and self._durability is not None
        from_seq = request.get("from_seq")
        if not isinstance(from_seq, int) or from_seq < 0:
            raise ProtocolError(
                f"repl.pull needs a non-negative integer 'from_seq', "
                f"got {from_seq!r}"
            )
        max_frames = request.get("max_frames", 256)
        if not isinstance(max_frames, int) or not 1 <= max_frames <= 1024:
            raise ProtocolError(
                f"max_frames must be an integer in [1, 1024], "
                f"got {max_frames!r}"
            )
        wait_ms = request.get("wait_ms", 0)
        if not isinstance(wait_ms, (int, float)) or not 0 <= wait_ms <= 2000:
            raise ProtocolError(
                f"wait_ms must be a number in [0, 2000], got {wait_ms!r}"
            )
        applied = request.get("applied")
        if isinstance(applied, int) and applied >= 0:
            self.replication.record_ack(peer["id"], applied)
        frames = self.replication.feed.frames_since(
            from_seq, max_frames, wait_ms / 1000.0
        )
        if frames is None:
            return {"ok": True, "epoch": self.epoch, "resync": True,
                    "last_seq": self._durability.last_seq}
        return {
            "ok": True,
            "epoch": self.epoch,
            "last_seq": self._durability.last_seq,
            "frames": [
                [seq, payload.decode("utf-8")] for seq, payload in frames
            ],
        }

    def _repl_snapshot(
        self, request: dict[str, Any], peer: dict[str, Any]
    ) -> dict[str, Any]:
        self._repl_epoch_guard(request)
        assert self._durability is not None
        # Pause commits so the payload and its wal_seq agree exactly —
        # the replica anchors its replication position at this seq.
        with self.mvcc.paused_commits():
            wal_seq = self._durability.last_seq
            payload = snapshot_payload(self._db, wal_seq)
        return {
            "ok": True,
            "epoch": self.epoch,
            "seq": wal_seq,
            "snapshot": payload,
        }

    def _repl_digest(
        self, request: dict[str, Any], peer: dict[str, Any]
    ) -> dict[str, Any]:
        self._repl_epoch_guard(request)
        assert self.replication is not None and self._durability is not None
        from_seq = request.get("from_seq")
        to_seq = request.get("to_seq")
        if not isinstance(from_seq, int) or not isinstance(to_seq, int):
            raise ProtocolError(
                "repl.digest needs integer 'from_seq' and 'to_seq'"
            )
        digests = self.replication.feed.digests(from_seq, to_seq)
        if digests is None:
            return {"ok": True, "epoch": self.epoch, "resync": True,
                    "last_seq": self._durability.last_seq}
        return {
            "ok": True,
            "epoch": self.epoch,
            "digests": [[seq, digest] for seq, digest in digests],
            "last_seq": self._durability.last_seq,
        }

    def _repl_fingerprints(
        self, request: dict[str, Any], peer: dict[str, Any]
    ) -> dict[str, Any]:
        self._repl_epoch_guard(request)
        assert self._durability is not None
        with self.mvcc.paused_commits():
            seq = self._durability.last_seq
            prints = database_fingerprints(self._db)
        return {
            "ok": True,
            "epoch": self.epoch,
            "seq": seq,
            "fingerprints": prints,
        }


def _stamp(reply: dict[str, Any], rid: Any) -> dict[str, Any]:
    """Echo the client's request id so retrying clients can discard
    stale/duplicated replies on a reused connection."""
    if rid is None:
        return reply
    return {**reply, "rid": rid}


def _error_reply(error: BaseException, rid: Any = None) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, ServerError):
        payload["retryable"] = error.retryable
        payload.update(error.details())
    reply = {"ok": False, "error": payload}
    return _stamp(reply, rid)
