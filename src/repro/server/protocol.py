"""Length-prefixed JSON framing for the PCQE socket protocol.

Every frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding one object.  The same framing is
used in both directions; requests carry an ``op`` field and responses an
``ok`` boolean:

.. code-block:: text

    → {"op": "hello", "user": "bob", "purpose": "investment"}
    ← {"ok": true, "session": 3, "seq": 17, "role": "Manager"}
    → {"op": "ask", "sql": "SELECT ...", "fraction": 1.0}
    ← {"ok": true, "status": "satisfied", "rows": [...], ...}
    → {"op": "bye"}
    ← {"ok": true, "closed": true}

Errors come back as ``{"ok": false, "error": {"type": ..., "message":
..., ...}}`` — ``type`` is the server-side exception class name, and
admission rejections additionally carry the structured numbers from
:class:`~repro.errors.AdmissionError`.

Zero dependencies: :mod:`struct` + :mod:`json` over raw sockets or
asyncio streams.  Both async (server-side) and blocking (client-side)
frame helpers live here so the two ends cannot drift.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

from ..errors import ProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "encode_frame",
    "read_frame",
    "write_frame",
    "recv_frame",
    "send_frame",
]

_LENGTH = struct.Struct(">I")

#: Upper bound on one frame; anything larger is a protocol violation
#: (large results should be paginated by the caller, not streamed as one
#: multi-gigabyte JSON document).
MAX_FRAME_BYTES = 32 * 1024 * 1024


def encode_frame(message: dict[str, Any]) -> bytes:
    """Serialize one message to its wire form (length prefix + JSON)."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(body)) + body


def _decode_body(body: bytes) -> dict[str, Any]:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must encode a JSON object, got {type(message).__name__}"
        )
    return message


def _check_length(length: int) -> int:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"announced frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return length


# -- asyncio side (server) -------------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between frames
        raise ProtocolError(
            f"connection closed mid-header ({len(error.partial)}/4 bytes)"
        ) from None
    (length,) = _LENGTH.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"connection closed mid-frame "
            f"({len(error.partial)}/{length} bytes)"
        ) from None
    return _decode_body(body)


async def write_frame(
    writer: asyncio.StreamWriter, message: dict[str, Any]
) -> None:
    writer.write(encode_frame(message))
    await writer.drain()


# -- blocking side (client) ------------------------------------------------


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            got = count - remaining
            if not chunks and got == 0:
                raise ProtocolError("connection closed by server")
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any]:
    """Blocking read of one frame from *sock*."""
    (length,) = _LENGTH.unpack(_recv_exactly(sock, _LENGTH.size))
    _check_length(length)
    return _decode_body(_recv_exactly(sock, length))


def send_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    """Blocking write of one frame to *sock*."""
    sock.sendall(encode_frame(message))
