"""MVCC over the storage engine: copy-on-write table generations.

The WAL already assigns every committed mutation a monotonically
increasing ``seq``; this module turns that sequence into a version
authority for snapshot isolation:

* a **generation** is an immutable copy of the database state, keyed by
  the WAL ``seq`` it is current *as of* (in-memory databases use an
  internal commit counter instead);
* :meth:`MVCCDatabase.snapshot` pins the current generation and returns
  a :class:`Snapshot` — a read-only :class:`SnapshotDatabase` view whose
  tables never change, no matter what writers commit afterwards;
* writers serialize through :meth:`MVCCDatabase.commit`: the mutation
  runs against the live :class:`~repro.storage.database.Database` inside
  one durability batch, and a fresh generation is published on success.
  Publication is copy-on-write per table — tables whose
  :attr:`~repro.storage.table.Table.data_version` did not move are
  shared with the previous generation, so a commit touching one table
  copies one table;
* readers never block writers (they hold no storage locks at all — a
  pinned generation is plain immutable data) and writers never block
  readers; generations are garbage-collected as soon as no snapshot pins
  them and a newer one is current.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Mapping, TypeVar

from ..errors import (
    SessionClosedError,
    SnapshotWriteError,
    UnknownTableError,
    UnknownTupleError,
)
from ..obs import get_metrics
from ..storage.database import Database
from ..storage.schema import Schema
from ..storage.table import Table
from ..storage.tuples import StoredTuple, TupleId

__all__ = ["MVCCDatabase", "Snapshot", "SnapshotDatabase", "SnapshotTable"]

T = TypeVar("T")


class SnapshotTable:
    """An immutable copy of one table at one generation.

    Mirrors the read surface of :class:`~repro.storage.table.Table`
    (``scan``/``column_data``/``lookup``/``get``/``len``/``schema``) so
    the SQL planner and both engines run against it unchanged.  Rows are
    *copies* of the live :class:`StoredTuple` objects — confidence
    write-backs on the live table cannot leak into a pinned snapshot.
    Mutating methods raise :class:`~repro.errors.SnapshotWriteError`.
    """

    def __init__(self, source: Table) -> None:
        self._name = source.name
        self._schema = source.schema
        # One locked read of the live table: _sorted_rows() holds the
        # table lock during any rebuild, so the row list is a consistent
        # cut even while writers run.
        self._rows_sorted = [
            StoredTuple(
                tid=row.tid,
                values=row.values,
                confidence=row.confidence,
                cost_model=row.cost_model,
            )
            for row in source.scan()
        ]
        self._rows = {row.tid.ordinal: row for row in self._rows_sorted}
        self.data_version = source.data_version
        self._column_cache: (
            tuple[tuple[list[Any], ...], list[TupleId]] | None
        ) = None
        self._column_lock = threading.Lock()

    # -- metadata (Table surface) ----------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def schema(self) -> Schema:
        return self._schema

    def __len__(self) -> int:
        return len(self._rows_sorted)

    # -- reading ----------------------------------------------------------

    def scan(self) -> Iterator[StoredTuple]:
        return iter(self._rows_sorted)

    def __iter__(self) -> Iterator[StoredTuple]:
        return self.scan()

    def rows(self) -> list[tuple[Any, ...]]:
        return [row.values for row in self._rows_sorted]

    def get(self, tid: TupleId) -> StoredTuple:
        if tid.table != self._name or tid.ordinal not in self._rows:
            raise UnknownTupleError(
                f"no tuple {tid} in snapshot of table {self._name!r}"
            )
        return self._rows[tid.ordinal]

    def confidence_of(self, tid: TupleId) -> float:
        return self.get(tid).confidence

    def column_data(self) -> tuple[tuple[list[Any], ...], list[TupleId]]:
        cache = self._column_cache
        if cache is None:
            with self._column_lock:
                cache = self._column_cache
                if cache is None:
                    tids = [row.tid for row in self._rows_sorted]
                    if self._rows_sorted:
                        columns = tuple(
                            list(column)
                            for column in zip(
                                *[row.values for row in self._rows_sorted]
                            )
                        )
                    else:
                        columns = tuple([] for _ in self._schema)
                    cache = (columns, tids)
                    self._column_cache = cache
        return cache

    def index_on(self, column: str):
        """Snapshots carry no hash indexes; engines fall back to scans."""
        return None

    def lookup(self, column: str, value: Any) -> list[StoredTuple]:
        column_index = self._schema.index_of(column)
        return [
            row
            for row in self._rows_sorted
            if row.values[column_index] == value
        ]

    # -- mutation is forbidden --------------------------------------------

    def _readonly(self, operation: str):
        raise SnapshotWriteError(
            f"cannot {operation} on snapshot of table {self._name!r}: "
            f"snapshots are immutable; commit through MVCCDatabase.commit"
        )

    def insert(self, *args, **kwargs):
        self._readonly("insert")

    def insert_many(self, *args, **kwargs):
        self._readonly("insert_many")

    def delete(self, *args, **kwargs):
        self._readonly("delete")

    def update(self, *args, **kwargs):
        self._readonly("update")

    def set_confidence(self, *args, **kwargs):
        self._readonly("set_confidence")

    def assign_confidences(self, *args, **kwargs):
        self._readonly("assign_confidences")

    def create_index(self, *args, **kwargs):
        self._readonly("create_index")

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"SnapshotTable({self._name!r}, {len(self)} rows)"


class _Generation:
    """One immutable database state: {table name: SnapshotTable} + views."""

    __slots__ = ("seq", "tables", "views", "table_versions")

    def __init__(
        self,
        seq: int,
        tables: dict[str, SnapshotTable],
        views: dict[str, str],
    ) -> None:
        self.seq = seq
        self.tables = tables
        self.views = views
        self.table_versions = {
            name: table.data_version for name, table in tables.items()
        }


class SnapshotDatabase:
    """Read-only :class:`Database` view over one pinned generation.

    Duck-types the read surface the SQL layer, the lineage engine, and
    policy enforcement use (``table``/``resolve``/``confidences``/
    ``view_definition``...).  DDL/DML raise
    :class:`~repro.errors.SnapshotWriteError`.
    """

    def __init__(self, generation: _Generation, name: str, durable: bool) -> None:
        self._generation = generation
        self.name = name
        self._durable = durable

    @property
    def seq(self) -> int:
        """The WAL/commit sequence this view is current as of."""
        return self._generation.seq

    @property
    def is_durable(self) -> bool:
        return self._durable

    # -- catalog ----------------------------------------------------------

    def table(self, name: str) -> SnapshotTable:
        try:
            return self._generation.tables[name.lower()]
        except KeyError:
            raise UnknownTableError(
                f"no table {name!r} in snapshot @seq={self.seq}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._generation.tables

    def tables(self) -> Iterator[SnapshotTable]:
        return iter(self._generation.tables.values())

    def table_names(self) -> list[str]:
        return [table.name for table in self._generation.tables.values()]

    def view_definition(self, name: str) -> str | None:
        return self._generation.views.get(name.lower())

    def view_names(self) -> list[str]:
        return list(self._generation.views)

    # -- tuple-id resolution ----------------------------------------------

    def resolve(self, tid: TupleId) -> StoredTuple:
        return self.table(tid.table).get(tid)

    def confidence_of(self, tid: TupleId) -> float:
        return self.resolve(tid).confidence

    def confidences(self, tids: Iterable[TupleId]) -> dict[TupleId, float]:
        return {tid: self.confidence_of(tid) for tid in tids}

    # -- mutation is forbidden --------------------------------------------

    def _readonly(self, operation: str):
        raise SnapshotWriteError(
            f"cannot {operation} on snapshot @seq={self.seq}: snapshots "
            f"are immutable; commit through MVCCDatabase.commit"
        )

    def create_table(self, *args, **kwargs):
        self._readonly("create_table")

    def drop_table(self, *args, **kwargs):
        self._readonly("drop_table")

    def create_view(self, *args, **kwargs):
        self._readonly("create_view")

    def drop_view(self, *args, **kwargs):
        self._readonly("drop_view")

    def set_confidence(self, *args, **kwargs):
        self._readonly("set_confidence")

    def apply_confidences(self, *args, **kwargs):
        self._readonly("apply_confidences")

    def __repr__(self) -> str:  # pragma: no cover - display only
        return (
            f"SnapshotDatabase({self.name!r}, seq={self.seq}, "
            f"tables={self.table_names()})"
        )


class Snapshot:
    """A pinned generation: hold it and the view cannot change.

    Obtained from :meth:`MVCCDatabase.snapshot`; release with
    :meth:`release` (or use as a context manager) so the generation can
    be garbage-collected.  Releasing twice is a no-op.
    """

    def __init__(self, owner: "MVCCDatabase", db: SnapshotDatabase) -> None:
        self._owner = owner
        self.db = db
        self._released = False

    @property
    def seq(self) -> int:
        return self.db.seq

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._owner._unpin(self.db.seq)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class MVCCDatabase:
    """Snapshot isolation over a live :class:`Database`.

    One writer at a time commits through :meth:`commit`; any number of
    readers hold :class:`Snapshot` pins concurrently.  The live database
    object must not be mutated behind this wrapper's back — route every
    write through :meth:`commit` (the constructor does not seize the
    storage objects, so nothing enforces this; the server layer does).
    """

    def __init__(self, db: Database) -> None:
        self._db = db
        self._commit_lock = threading.RLock()
        # Guards generation bookkeeping (pins + map); never held while
        # running user mutations, so readers snapshot/release in O(1)
        # regardless of writer activity.
        self._state_lock = threading.Lock()
        self._generations: dict[int, _Generation] = {}
        self._pins: dict[int, int] = {}
        self._commit_counter = 0
        self._seq_advanced = threading.Condition(self._state_lock)
        durability = db._durability
        if durability is not None:
            # Key generations by WAL seq *exactly* (a fresh dir boots at
            # 0, not 1): generation keys and replication positions then
            # agree across primary and replicas, which read-your-writes
            # routing (`min_seq`) relies on.
            self._commit_counter = durability.last_seq
            self._current_seq = self._commit_counter
        else:
            self._current_seq = self._next_seq()
        self._generations[self._current_seq] = self._build_generation(
            self._current_seq, previous=None
        )

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Pin the current generation and return a read-only view."""
        with self._state_lock:
            seq = self._current_seq
            self._pins[seq] = self._pins.get(seq, 0) + 1
            generation = self._generations[seq]
        view = SnapshotDatabase(generation, self._db.name, self._db.is_durable)
        self._gauge()
        return Snapshot(self, view)

    @property
    def current_seq(self) -> int:
        return self._current_seq

    def generation_seqs(self) -> list[int]:
        """Retained generation keys, oldest first (GC observability)."""
        with self._state_lock:
            return sorted(self._generations)

    # -- writing -----------------------------------------------------------

    def commit(self, mutate: Callable[[Database], T]) -> T:
        """Run *mutate* on the live database and publish a new generation.

        The mutation executes under the commit lock inside one durability
        batch, so concurrent commits serialize and a durable database
        recovers the whole commit or none of it.  If *mutate* raises, no
        generation is published (the live tables may have partially
        changed — the caller's exception reports that — but no snapshot
        ever observes the partial state, and the next successful commit
        re-publishes everything whose version moved).
        """
        with self._commit_lock:
            with self._db.durability_batch():
                result = mutate(self._db)
            self._publish()
        return result

    def commit_replicated(self, seq: int, mutate: Callable[[Database], T]) -> T:
        """Apply an already-durable mutation and publish at *seq*.

        The replica path: the frame is in the local WAL before this runs
        (import-then-apply), so the mutation must **not** journal again —
        callers wrap it in ``DurabilityManager.suspended()``.  The new
        generation is keyed by the primary's *seq* so snapshot tags line
        up with replication positions across the fleet; the publish guard
        still refuses to rewind (generation keys are node-local and
        strictly monotonic even across a resync).
        """
        with self._commit_lock:
            result = mutate(self._db)
            self._publish(seq)
        return result

    def wait_for_seq(self, seq: int, timeout: float) -> bool:
        """Block until the current generation reaches *seq* (or timeout)."""
        deadline = threading.TIMEOUT_MAX if timeout is None else timeout
        with self._seq_advanced:
            return self._seq_advanced.wait_for(
                lambda: self._current_seq >= seq, timeout=deadline
            )

    @contextmanager
    def paused_commits(self) -> Iterator[int]:
        """Hold the commit lock for the duration of the block.

        Yields the current seq.  Used to take a consistent cut of the
        live database (snapshot payloads, fingerprints) that is
        guaranteed to correspond to exactly one replication position.
        """
        with self._commit_lock:
            yield self._current_seq

    def refresh(self, snapshot: Snapshot) -> Snapshot:
        """Exchange *snapshot* for a pin on the current generation."""
        fresh = self.snapshot()
        snapshot.release()
        return fresh

    # -- internals ---------------------------------------------------------

    def _next_seq(self) -> int:
        """The key for the generation published now.

        A durable database uses the WAL sequence — the generation is the
        state as of that record.  In-memory databases (and the edge case
        of a commit that journaled nothing) fall back to a monotonic
        commit counter so keys never collide.
        """
        durability = self._db._durability
        self._commit_counter += 1
        if durability is not None:
            last = durability.last_seq
            if last > self._commit_counter:
                self._commit_counter = last
        return self._commit_counter

    def _build_generation(
        self, seq: int, previous: _Generation | None
    ) -> _Generation:
        tables: dict[str, SnapshotTable] = {}
        for table in self._db.tables():
            key = table.name.lower()
            if previous is not None:
                existing = previous.tables.get(key)
                if (
                    existing is not None
                    and existing.data_version == table.data_version
                ):
                    tables[key] = existing  # copy-on-write: share unchanged
                    continue
            tables[key] = SnapshotTable(table)
        views = {
            name.lower(): self._db.view_definition(name)
            for name in self._db.view_names()
        }
        return _Generation(seq, tables, views)

    def _publish(self, seq: int | None = None) -> None:
        with self._state_lock:
            previous = self._generations[self._current_seq]
        if seq is None:
            seq = self._next_seq()
        elif seq > self._commit_counter:
            self._commit_counter = seq
        if seq <= self._current_seq:
            # Never rewind or collide with a (possibly pinned) existing
            # generation — replicated publishes behind the local chain
            # still move strictly forward.
            seq = self._current_seq + 1
            self._commit_counter = max(self._commit_counter, seq)
        generation = self._build_generation(seq, previous)
        with self._state_lock:
            self._generations[seq] = generation
            self._current_seq = seq
            self._collect_locked()
            self._seq_advanced.notify_all()
        self._gauge()

    def _unpin(self, seq: int) -> None:
        with self._state_lock:
            count = self._pins.get(seq)
            if count is None:  # pragma: no cover - double release guard
                raise SessionClosedError(
                    f"generation {seq} is not pinned"
                )
            if count <= 1:
                del self._pins[seq]
            else:
                self._pins[seq] = count - 1
            self._collect_locked()
        self._gauge()

    def _collect_locked(self) -> None:
        """Drop every generation that is neither current nor pinned."""
        for seq in [
            seq
            for seq in self._generations
            if seq != self._current_seq and seq not in self._pins
        ]:
            del self._generations[seq]

    def _gauge(self) -> None:
        get_metrics().gauge("mvcc.generations").set(len(self._generations))

    def __repr__(self) -> str:  # pragma: no cover - display only
        return (
            f"MVCCDatabase({self._db.name!r}, seq={self._current_seq}, "
            f"generations={len(self._generations)})"
        )
