"""Opt-in stdlib-logging configuration for the ``repro`` package.

The library itself only ever *emits* records through per-module
``logging.getLogger(__name__)`` loggers and never touches handlers; an
application (or the CLI) calls :func:`configure_logging` once to see them.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["configure_logging"]

_HANDLER_MARKER = "_repro_obs_handler"

DEFAULT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def configure_logging(
    level: int | str = logging.INFO,
    stream: "IO[str] | None" = None,
    fmt: str = DEFAULT_FORMAT,
    logger_name: str = "repro",
) -> logging.Logger:
    """Attach (or update) one stream handler on the package logger.

    Idempotent: repeat calls reconfigure the existing handler instead of
    stacking duplicates, so tests and REPL sessions can call it freely.
    Returns the configured logger.
    """
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    logger = logging.getLogger(logger_name)
    logger.setLevel(level)
    handler = next(
        (
            existing
            for existing in logger.handlers
            if getattr(existing, _HANDLER_MARKER, False)
        ),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        setattr(handler, _HANDLER_MARKER, True)
        logger.addHandler(handler)
    elif stream is not None and isinstance(handler, logging.StreamHandler):
        handler.setStream(stream)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(fmt))
    return logger
