"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments,
get-or-created on first use::

    metrics = get_metrics()
    metrics.counter("solver.greedy.gain_evaluations").inc(120)
    metrics.histogram("lineage.formula_nodes").observe(17)

Instruments are deliberately simple (no label sets): the paper's pipeline
has a fixed, known set of stages, and a flat dotted name per (stage,
quantity) keeps snapshots diffable with plain dictionaries —
:func:`metrics_diff` is what ``profile=True`` uses to attribute counter
movement to one engine run.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "metrics_diff",
]

#: Default histogram bucket upper bounds: generic log-ish scale that covers
#: sub-millisecond timings and formula/partition sizes alike.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    50.0,
    100.0,
    500.0,
    1000.0,
)


class Counter:
    """A monotonically increasing count.

    Thread-safe: the degradation chain runs solvers on worker threads, so
    ``inc`` (a read-modify-write) takes a per-instrument lock — plain
    ``+=`` on a float drops increments under contention.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        with self._lock:
            self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (last write wins); thread-safe."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summary.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; the final
    slot is the overflow bucket (``> buckets[-1]``).

    :meth:`percentile` estimates quantiles by locating the bucket the
    requested rank falls into and interpolating *linearly within it*
    (clamped to the observed min/max).  The estimate is exact when the
    rank lands on a bucket boundary; otherwise the error is bounded by
    the width of the containing bucket — pick bucket boundaries around
    your SLO targets (see :data:`~repro.obs.instrument.TIMING_BUCKETS`)
    and p50/p95/p99 are trustworthy to that resolution.
    """

    __slots__ = (
        "name",
        "buckets",
        "bucket_counts",
        "count",
        "sum",
        "min",
        "max",
        "_lock",
    )

    def __init__(self, name: str, buckets: Iterable[float] | None = None) -> None:
        self.name = name
        self.buckets: tuple[float, ...] = tuple(
            sorted(buckets) if buckets is not None else DEFAULT_BUCKETS
        )
        if not self.buckets:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float | None:
        """The *p*-th percentile (``0 <= p <= 100``), or ``None`` if empty.

        Rank semantics: the value at cumulative position ``p/100 * count``
        under the histogram's bucketing, interpolated linearly inside the
        containing bucket.  The first bucket interpolates from the observed
        minimum and the overflow bucket toward the observed maximum, so the
        estimate never leaves ``[min, max]``.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if self.count == 0:
                return None
            counts = list(self.bucket_counts)
            count = self.count
            low = self.min if self.min is not None else 0.0
            high = self.max if self.max is not None else 0.0
        target = (p / 100.0) * count
        cumulative = 0.0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                # Bucket i spans (lower, upper]; interpolate the rank's
                # position inside it assuming uniform spread.
                lower = low if index == 0 else self.buckets[index - 1]
                upper = high if index == len(self.buckets) else self.buckets[index]
                fraction = (target - cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                return min(max(estimate, low), high)
            cumulative += bucket_count
        return high  # p == 100 with floating-point drift

    def summary(self) -> dict[str, Any]:
        """count/sum/mean plus interpolated p50/p95/p99 (for expositions)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "mean": self.mean,
                "buckets": {
                    **{
                        f"le_{bound:g}": count
                        for bound, count in zip(self.buckets, self.bucket_counts)
                    },
                    "overflow": self.bucket_counts[-1],
                },
            }


class MetricsRegistry:
    """Flat, thread-safe namespace of named instruments."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, *args: Any) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = kind(name, *args)
                    self._instruments[name] = instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: Iterable[float] | None = None
    ) -> Histogram:
        # Buckets go through the locked get-or-create unconditionally (a
        # ``None`` reaches Histogram as DEFAULT_BUCKETS): a pre-check here
        # would be check-then-act, and a first-touch racing it could win
        # creation with the wrong bucket bounds.  First creator's buckets
        # stick; later callers' bucket argument is ignored.
        return self._get_or_create(name, Histogram, buckets)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """Every instrument's current value, keyed by name."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: instrument.snapshot() for name, instrument in instruments}

    def reset(self) -> None:
        """Drop every registered instrument (tests / run isolation)."""
        with self._lock:
            self._instruments.clear()


def metrics_diff(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> dict[str, Any]:
    """What moved between two :meth:`MetricsRegistry.snapshot` calls.

    Scalar instruments (counters/gauges) diff numerically; histograms diff
    their ``count``/``sum`` and report the interval's mean.  Instruments
    that did not change are omitted.
    """
    delta: dict[str, Any] = {}
    for name, now in after.items():
        was = before.get(name)
        if isinstance(now, dict):  # histogram
            was_count = was["count"] if isinstance(was, dict) else 0
            was_sum = was["sum"] if isinstance(was, dict) else 0.0
            count = now["count"] - was_count
            if count:
                total = now["sum"] - was_sum
                delta[name] = {
                    "count": count,
                    "sum": total,
                    "mean": total / count,
                }
        else:
            moved = now - (was if was is not None else 0.0)
            if moved:
                delta[name] = moved
    return delta


_GLOBAL_METRICS = MetricsRegistry()
_GLOBAL_METRICS_LOCK = threading.Lock()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry used by all built-in instrumentation."""
    return _GLOBAL_METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry (returns the previous one).

    The swap is atomic: concurrent ``set_metrics`` calls (e.g. a test
    installing an isolated registry while server workers run) serialize,
    so the returned "previous" registry is always the one this call
    actually displaced and restore-previous stacks unwind correctly.
    """
    global _GLOBAL_METRICS
    with _GLOBAL_METRICS_LOCK:
        previous = _GLOBAL_METRICS
        _GLOBAL_METRICS = registry
        return previous
