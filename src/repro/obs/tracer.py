"""Nested tracing spans with pluggable sinks.

A :class:`Tracer` produces :class:`Span` objects arranged in a tree: the
current span is tracked in a :mod:`contextvars` context variable, so
``with tracer.span("child"):`` nested anywhere under an open span records
the parent/child relationship without threading span objects through call
signatures.  Completed spans are delivered to every attached
:class:`~repro.obs.sinks.SpanSink`.

The tracer is engineered for a *disabled-by-default* deployment: with no
sinks attached, :meth:`Tracer.span` returns a shared no-op context manager
and the instrumented code pays only an attribute read and a truthiness
check — the overhead guardrail for the solver hot paths.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
import uuid
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .sinks import InMemorySink, SpanSink

__all__ = ["Span", "SpanEvent", "Tracer", "get_tracer", "set_tracer"]

_span_ids = itertools.count(1)
_start_indexes = itertools.count(1)


class SpanEvent:
    """A point-in-time annotation inside a span."""

    __slots__ = ("name", "timestamp", "attributes")

    def __init__(self, name: str, attributes: dict[str, Any] | None = None) -> None:
        self.name = name
        self.timestamp = time.time()
        self.attributes = attributes or {}

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {"name": self.name, "timestamp": self.timestamp}
        if self.attributes:
            record["attributes"] = self.attributes
        return record


class Span:
    """One timed operation in a trace tree."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_index",
        "start_time",
        "attributes",
        "events",
        "status",
        "_started_ns",
        "duration_seconds",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: int | None,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = next(_span_ids)
        self.parent_id = parent_id
        self.start_index = next(_start_indexes)
        # Wall-clock timestamp is an *attribute* of the span (for log
        # correlation); durations are measured on the monotonic clock so a
        # clock adjustment mid-span can never produce a negative duration.
        self.start_time = time.time()
        self.attributes: dict[str, Any] = dict(attributes) if attributes else {}
        self.events: list[SpanEvent] = []
        self.status = "ok"
        self._started_ns = time.monotonic_ns()
        self.duration_seconds: float | None = None

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add_event(self, name: str, **attributes: Any) -> None:
        self.events.append(SpanEvent(name, attributes or None))

    def _finish(self, status: str | None = None) -> None:
        self.duration_seconds = (time.monotonic_ns() - self._started_ns) / 1e9
        if status is not None:
            self.status = status

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable record of this span (sink interchange format)."""
        record: dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_index": self.start_index,
            "start_time": self.start_time,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
        }
        if self.attributes:
            record["attributes"] = self.attributes
        if self.events:
            record["events"] = [event.to_dict() for event in self.events]
        return record

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class _NoopSpan:
    """Shared do-nothing span used while tracing is disabled."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager binding a live span to the current context."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._token: contextvars.Token | None = None

    def __enter__(self) -> Span:
        self._token = self._tracer._current.set(self._span)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self._token is not None:
            self._tracer._current.reset(self._token)
        self._span._finish("error" if exc_type is not None else None)
        self._tracer._export(self._span)


class Tracer:
    """Factory for spans; delivers completed spans to attached sinks."""

    def __init__(self, sinks: "list[SpanSink] | None" = None) -> None:
        self._sinks: list[SpanSink] = list(sinks) if sinks else []
        self._current: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
            "repro_current_span", default=None
        )
        self._lock = threading.Lock()

    # -- configuration -------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether any sink is attached (spans are recorded at all)."""
        return bool(self._sinks)

    @property
    def sinks(self) -> "tuple[SpanSink, ...]":
        return tuple(self._sinks)

    def add_sink(self, sink: "SpanSink") -> "SpanSink":
        with self._lock:
            self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: "SpanSink") -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    # -- span creation -------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Any:
        """Open a span named *name*; use as a context manager.

        Returns a shared no-op object when no sink is attached, so
        instrumentation in hot paths costs one attribute check.
        """
        if not self._sinks:
            return _NOOP_SPAN
        parent = self._current.get()
        if parent is None:
            trace_id = uuid.uuid4().hex[:16]
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return _ActiveSpan(self, Span(name, trace_id, parent_id, attributes))

    def current_span(self) -> Span | None:
        """The innermost open span in this context, if any."""
        return self._current.get()

    def capture(self) -> "_Capture":
        """Temporarily attach an in-memory sink; yields it.

        ``with tracer.capture() as sink:`` records every span closed during
        the block into ``sink.spans`` (alongside any permanent sinks), then
        detaches — the mechanism behind ``profile=True``.
        """
        return _Capture(self)

    def _export(self, span: Span) -> None:
        for sink in self._sinks:
            sink.export(span)


class _Capture:
    __slots__ = ("_tracer", "_sink")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        from .sinks import InMemorySink

        self._sink = InMemorySink()

    def __enter__(self) -> "InMemorySink":
        self._tracer.add_sink(self._sink)
        return self._sink

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer.remove_sink(self._sink)


_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer used by all built-in instrumentation."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide tracer (returns the previous one)."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous
