"""Replaying the audit journal into deterministic explanations.

:func:`reconstruct_decisions` rebuilds the exact decision records a live
run produced (the byte-identity contract behind ``benchmarks/obs_smoke``),
and :func:`explain_decision` renders the full story of one (query, tuple)
pair — policy triple, confidence vs β, contributing lineage, and any
increment write-back that changed the verdict — from nothing but the log.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ...errors import ReproError

__all__ = [
    "AuditReplayError",
    "AuditTrail",
    "build_trails",
    "explain_decision",
    "reconstruct_decisions",
]


class AuditReplayError(ReproError):
    """The audit journal does not contain the requested trail."""


@dataclass
class AuditTrail:
    """Every record of one query, grouped for replay."""

    query_id: str
    query: dict[str, Any] | None = None
    decisions: list[dict[str, Any]] = field(default_factory=list)
    increments: list[dict[str, Any]] = field(default_factory=list)
    outcome: dict[str, Any] | None = None

    def phases(self, tuple_id: str) -> list[dict[str, Any]]:
        """The tuple's decision records in phase order (append order)."""
        return [
            record
            for record in self.decisions
            if record["tuple_id"] == tuple_id
        ]


def build_trails(records: list[dict[str, Any]]) -> dict[str, AuditTrail]:
    """Group raw journal records into per-query trails, in append order."""
    trails: dict[str, AuditTrail] = {}
    for record in records:
        query_id = record.get("query_id")
        if not query_id:
            continue
        trail = trails.setdefault(query_id, AuditTrail(query_id))
        kind = record.get("kind")
        if kind == "query":
            trail.query = record
        elif kind == "decision":
            trail.decisions.append(record)
        elif kind == "increment":
            trail.increments.append(record)
        elif kind == "outcome":
            trail.outcome = record
    return trails


def reconstruct_decisions(
    records: list[dict[str, Any]], query_id: str
) -> list[bytes]:
    """The query's decision records re-encoded canonically, in order.

    Byte-identical to what the live run appended: the journal stores the
    canonical encoding (sorted keys, compact separators), so re-encoding a
    replayed record reproduces the original bytes exactly — the acceptance
    check that replay reconstructs every release/block decision.
    """
    trails = build_trails(records)
    if query_id not in trails:
        raise AuditReplayError(f"audit log has no query {query_id!r}")
    return [
        json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
        for record in trails[query_id].decisions
    ]


def explain_decision(
    records: list[dict[str, Any]], query_id: str, tuple_id: str
) -> str:
    """Deterministic, human-readable explanation of one decision.

    Raises :class:`AuditReplayError` when the journal has no such query or
    tuple — an explanation must come from the log, never be synthesized.
    """
    trails = build_trails(records)
    trail = trails.get(query_id)
    if trail is None:
        raise AuditReplayError(f"audit log has no query {query_id!r}")
    phases = trail.phases(tuple_id)
    if not phases:
        raise AuditReplayError(
            f"query {query_id} has no decision for tuple {tuple_id!r}"
        )

    lines: list[str] = []
    query = trail.query
    if query is not None:
        lines.append(
            f"query {query_id}: user={query['user']} "
            f"policy=⟨{query['role']}, {query['purpose']}, "
            f"β={query['threshold']:g}⟩ "
            f"required_fraction={query['required_fraction']:g}"
        )
        lines.append(f"  sql: {query['sql']}")
    for record in phases:
        verdict = record["verdict"]
        comparator = ">" if verdict == "released" else "<="
        lines.append(
            f"{record['phase']}: {tuple_id} {_render_values(record['values'])} "
            f"confidence {record['confidence']:.6g} {comparator} "
            f"β → {verdict}"
        )
        for tid, conf in record["lineage"]:
            lines.append(f"    lineage {tid} confidence={conf:.6g}")
    for increment in trail.increments:
        touched = {
            tid: conf
            for tid, conf in increment["targets"].items()
            if any(
                tid == lineage_id
                for record in phases
                for lineage_id, _conf in record["lineage"]
            )
        }
        state = "applied" if increment["approved"] else "quoted only"
        lines.append(
            f"increment ({state}): cost={increment['cost']:.6g}, "
            f"{len(increment['targets'])} target(s)"
            + (f", {len(touched)} in this tuple's lineage" if touched else "")
        )
        for tid, conf in sorted(touched.items()):
            lines.append(f"    write-back {tid} → {conf:.6g}")
    if len(phases) >= 2:
        first, last = phases[0], phases[-1]
        if first["verdict"] != last["verdict"]:
            lines.append(
                f"verdict changed: {first['verdict']} → {last['verdict']} "
                f"(confidence {first['confidence']:.6g} → "
                f"{last['confidence']:.6g})"
            )
        else:
            lines.append(f"verdict unchanged across phases: {last['verdict']}")
    if trail.outcome is not None:
        outcome = trail.outcome
        lines.append(
            f"outcome: {outcome['status']} "
            f"(released={outcome['released']}, withheld={outcome['withheld']}, "
            f"shortfall={outcome['shortfall']})"
        )
    return "\n".join(lines)


def _render_values(values: list[Any]) -> str:
    rendered = ", ".join("NULL" if v is None else str(v) for v in values)
    return f"({rendered})"
