"""Audit-grade decision provenance for policy-compliant query evaluation.

The paper's contract is that a result tuple is released only when its
lineage-derived confidence clears the policy threshold β — this package
records *why* each release/block decision was made, durably enough to
survive a crash and deterministically enough to be replayed:

* :class:`AuditLog` — an append-only journal of per-decision records
  (policy ⟨role, purpose, β⟩, computed confidence, contributing base-tuple
  lineage, verdict, and any increment write-back that changed it), framed
  through the same checksummed write-ahead-log discipline as the storage
  layer (`docs/ROBUSTNESS.md`): length-prefixed CRC32C records with
  torn-tail truncation on read.
* :func:`read_audit_log` / :class:`AuditTrail` — replay the journal into
  per-query decision trails.
* :func:`explain_decision` — the deterministic explanation behind one
  (query, tuple) decision, the CLI's ``audit explain``.

Enable auditing by passing an :class:`AuditLog` to
:class:`~repro.core.framework.PCQEngine` (``audit=``) or the shell's
``--audit-log`` flag; see ``docs/OBSERVABILITY.md``.
"""

from .log import AUDIT_SCHEMA_VERSION, AuditLog, read_audit_log
from .explain import (
    AuditReplayError,
    AuditTrail,
    build_trails,
    explain_decision,
    reconstruct_decisions,
)

__all__ = [
    "AUDIT_SCHEMA_VERSION",
    "AuditLog",
    "read_audit_log",
    "AuditReplayError",
    "AuditTrail",
    "build_trails",
    "explain_decision",
    "reconstruct_decisions",
]
