"""The append-only audit journal.

Every record is one JSON object framed through the storage layer's
write-ahead-log format (:mod:`repro.storage.durability.wal`): length
prefix, CRC32C payload and header checksums, torn-tail truncation on
reopen.  An audit trail must be trustworthy after a crash — a record the
caller saw appended is intact or provably absent, never silently mangled.

Record kinds (all carry ``query_id``; the ``query`` record additionally
carries ``schema``, declaring the record layout for its whole trail):

``query``
    One per PCQE ``ask``: user, purpose, the matched policy's role, the
    effective threshold β, the requested fraction θ, and the SQL text.
``decision``
    One per result tuple per enforcement pass: the tuple's values, its
    computed confidence, the verdict (``released``/``blocked``), the
    contributing base-tuple lineage (ids + confidences at decision time),
    and the ``phase`` (``initial`` or ``post_increment``).  The engine
    records ``post_increment`` decisions only for tuples whose confidence
    or verdict the increment actually changed — an unchanged tuple's
    ``initial`` record remains its decision of record.
``increment``
    A strategy-finding write-back: quoted cost, approval, and the target
    confidence per base tuple.
``outcome``
    The query's final status plus released/withheld/shortfall counts.

Records are written in deterministic order (decisions follow result-set
order), so replay reconstructs the live run byte-for-byte.

Write batching and the deferred writer
--------------------------------------
Records buffer in memory per query and land as **one WAL frame per
query** when ``end_query`` closes the trail — one checksum + one write
per ask instead of one per record, and crash atomicity at query
granularity: after recovery a query's trail is either complete or
absent, never half-audited.  The frame payload is the batch encoded as
**one canonical JSON array** (sorted keys, compact separators): a single
C-speed ``json.dumps`` call, and each record's canonical document is a
byte-identical substring of the frame, so replay can be verified
directly against the bytes on disk.

By default (``deferred=False``) the batch is encoded and appended
synchronously inside ``end_query`` — one bounded, predictable cost per
ask.  ``deferred=True`` hands completed batches to a daemon writer
thread instead; batches are written strictly in completion order, so
replay determinism is unaffected, and :meth:`drain` blocks until
everything enqueued is on disk (readers call it before scanning).
Deferring pays off only when the sink actually blocks — ``sync=True``
fsyncs, a slow volume — because under the GIL the encoding CPU cannot
overlap the serving thread, while the extra runnable thread adds
scheduler handoff jitter on contended hosts.  A write failure is counted
under ``audit.write_errors`` and surfaced on :attr:`write_error`;
:meth:`close` drains, flushes any trail whose query died mid-pipeline,
and joins the writer.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from typing import Any, Iterable, Mapping

from ...storage.durability.retry import RetryPolicy
from ...storage.durability.wal import WriteAheadLog, scan_wal, truncate_torn_tail
from ..metrics import get_metrics

__all__ = ["AUDIT_SCHEMA_VERSION", "AuditLog", "read_audit_log"]

#: Version of the audit record layout; bump on incompatible changes.
AUDIT_SCHEMA_VERSION = 1

_VERDICTS = ("released", "blocked")


def _crc32(data: bytes) -> int:
    """The audit journal's frame checksum: zlib's C-speed CRC32.

    The storage WAL keeps CRC32C (its on-disk format predates this
    module); the audit journal reuses the same frame layout and torn-tail
    discipline but checksums at C speed — per-query batches are large
    enough that a pure-Python CRC would tax the serving path.
    """
    return zlib.crc32(data) & 0xFFFFFFFF


def _encode(record: Mapping[str, Any]) -> bytes:
    """Canonical byte encoding: compact separators, sorted keys."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def _encode_batch(batch: "list[dict[str, Any]]") -> bytes:
    """One query's frame payload: the batch as one canonical JSON array.

    A single ``json.dumps`` call is ~2× cheaper than encoding records one
    by one, and because list/dict encoding share the same canonical
    settings, each element of the array is byte-identical to
    ``_encode(record)`` — replay can re-derive the exact frame bytes.

    ``sort_keys`` is deliberately omitted: every record constructor in
    this module builds its dict in sorted key order (Python dicts
    preserve insertion order), so plain encoding already produces the
    canonical bytes while skipping a per-dict ``sorted`` on the hot
    path.  The invariant is enforced end-to-end — the obs smoke and the
    unit tests re-encode parsed frames through :func:`_encode` (which
    *does* sort) and require byte identity with the disk frames.
    """
    return json.dumps(batch, separators=(",", ":")).encode("utf-8")


def read_audit_log(path: "str | os.PathLike[str]") -> list[dict[str, Any]]:
    """Every intact record of the journal at *path*, in append order.

    A torn tail (crash mid-append) is skipped, matching the WAL's
    recovery contract; checksum corruption raises
    :class:`~repro.errors.CorruptLogError`.
    """
    if not os.path.exists(path):
        return []
    scan = scan_wal(path, checksum=_crc32)
    records: list[dict[str, Any]] = []
    for payload in scan.payloads:
        # One frame = one query's batch, a canonical JSON array.
        records.extend(json.loads(payload.decode("utf-8")))
    return records


class AuditLog:
    """Append-only, checksummed journal of PCQE release/block decisions.

    Parameters
    ----------
    path:
        Journal file (conventionally ``audit.log``).  Reopening an
        existing journal truncates any torn tail and resumes the query-id
        counter after the highest id already recorded.
    sync:
        fsync every record (per-decision durability).  The default
        ``False`` leaves durability at OS-crash granularity but keeps the
        audit overhead within the serving path's budget; records are
        still written straight to the file descriptor, so a process crash
        loses nothing already appended.
    retry:
        :class:`~repro.storage.durability.retry.RetryPolicy` for
        transient append IO errors.
    deferred:
        Hand completed batches to a daemon writer thread instead of
        writing inside ``end_query``.  Worth it only when appends block
        on IO (``sync=True``); see the module docstring.
    """

    def __init__(
        self,
        path: str,
        *,
        sync: bool = False,
        retry: RetryPolicy | None = None,
        deferred: bool = False,
    ) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._metrics = get_metrics()
        last_query = 0
        if os.path.exists(path) and os.path.getsize(path) > 0:
            scan = scan_wal(path, checksum=_crc32)
            truncate_torn_tail(path, scan)
            for payload in scan.payloads:
                for record in json.loads(payload.decode("utf-8")):
                    number = _query_number(record.get("query_id", ""))
                    last_query = max(last_query, number)
        self._wal = WriteAheadLog(
            path, sync=sync, retry=retry, checksum=_crc32
        )
        self._next_query = last_query + 1
        #: query_id -> record dicts awaiting their end_query flush.
        self._buffers: dict[str, list[dict[str, Any]]] = {}
        #: completed batches awaiting the writer thread, in flush order.
        self._queue: list[list[dict[str, Any]]] = []
        self._writing = False
        self._stopping = False
        self._closed = False
        self._error: BaseException | None = None
        self._writer: threading.Thread | None = None
        if deferred:
            self._writer = threading.Thread(
                target=self._write_loop, name="repro-audit-writer", daemon=True
            )
            self._writer.start()

    @property
    def write_error(self) -> BaseException | None:
        """The first writer-thread failure, if any (also counted under
        ``audit.write_errors``)."""
        return self._error

    # -- record appends ----------------------------------------------------

    def _append(self, record: dict[str, Any]) -> None:
        """Buffer one record under its query's pending batch."""
        query_id = str(record.get("query_id", ""))
        with self._lock:
            if self._closed:
                raise ValueError(f"audit log {self.path} is closed")
            self._buffers.setdefault(query_id, []).append(record)

    def _flush(self, query_id: str) -> None:
        """Hand a query's completed batch to the writer (or write now)."""
        with self._work:
            batch = self._buffers.pop(query_id, None)
            if not batch:
                return
            if self._writer is not None:
                self._queue.append(batch)
                self._work.notify_all()
                return
        self._write_batch(batch)

    def _write_batch(self, batch: list[dict[str, Any]]) -> None:
        """Encode, checksum and append one query's batch as one frame."""
        try:
            nbytes = self._wal.append(_encode_batch(batch))
        except BaseException as error:  # surfaced via write_error
            if self._error is None:
                self._error = error
            self._metrics.counter("audit.write_errors").inc()
            return
        decisions = sum(1 for record in batch if record["kind"] == "decision")
        self._metrics.counter("audit.records").inc(len(batch))
        self._metrics.counter("audit.decisions").inc(decisions)
        self._metrics.counter("audit.bytes").inc(nbytes)

    def _write_loop(self) -> None:
        while True:
            with self._work:
                self._writing = False
                self._work.notify_all()
                while not self._queue and not self._stopping:
                    self._work.wait()
                if not self._queue:
                    return  # stopping, fully drained
                batch = self._queue.pop(0)
                self._writing = True
            self._write_batch(batch)

    def drain(self) -> None:
        """Block until every batch flushed so far is on disk.

        Readers (``audit list``/``explain`` on a live journal) call this
        so a just-finished query's trail is visible to ``scan_wal``.
        """
        if self._writer is None:
            return
        with self._work:
            while self._queue or self._writing:
                self._work.wait(timeout=0.05)

    def begin_query(
        self,
        *,
        user: str,
        purpose: str,
        role: str,
        threshold: float,
        required_fraction: float,
        sql: str,
    ) -> str:
        """Open a query trail; returns its id (``q1``, ``q2``, …)."""
        with self._lock:
            query_id = f"q{self._next_query}"
            self._next_query += 1
        # Keys in sorted order — the _encode_batch fast path relies on it.
        self._append(
            {
                "kind": "query",
                "purpose": purpose,
                "query_id": query_id,
                "required_fraction": required_fraction,
                "role": role,
                "schema": AUDIT_SCHEMA_VERSION,
                "sql": sql,
                "threshold": threshold,
                "user": user,
            }
        )
        self._metrics.counter("audit.queries").inc()
        return query_id

    def record_decision(
        self,
        query_id: str,
        tuple_id: str,
        *,
        values: Iterable[Any],
        confidence: float,
        verdict: str,
        phase: str,
        lineage: Iterable[tuple[str, float]],
    ) -> None:
        """One result tuple's verdict under one enforcement pass."""
        self.record_decisions(
            query_id, [(tuple_id, values, confidence, verdict, phase, lineage)]
        )

    def record_decisions(
        self,
        query_id: str,
        decisions: "Iterable[tuple[str, Iterable[Any], float, str, str, Iterable[tuple[str, float]]]]",
    ) -> None:
        """One enforcement pass's verdicts, batched.

        *decisions* yields ``(tuple_id, values, confidence, verdict,
        phase, lineage)`` tuples in result-set order.  The engine records
        a whole pass in one call — one lock acquisition instead of one
        per result row, which matters on wide results.
        """
        batch = []
        for tuple_id, values, confidence, verdict, phase, lineage in decisions:
            if verdict not in _VERDICTS:
                raise ValueError(
                    f"verdict must be one of {_VERDICTS}, got {verdict!r}"
                )
            # Keys in sorted order — _encode_batch relies on it.
            batch.append(
                {
                    "confidence": confidence,
                    "kind": "decision",
                    "lineage": [[tid, conf] for tid, conf in lineage],
                    "phase": phase,
                    "query_id": query_id,
                    "tuple_id": tuple_id,
                    "values": list(values),
                    "verdict": verdict,
                }
            )
        if not batch:
            return
        with self._lock:
            if self._closed:
                raise ValueError(f"audit log {self.path} is closed")
            self._buffers.setdefault(query_id, []).extend(batch)

    def record_increment(
        self,
        query_id: str,
        *,
        approved: bool,
        cost: float,
        targets: Mapping[str, float],
    ) -> None:
        """A quoted (and possibly applied) confidence-increment strategy."""
        self._append(
            {
                "approved": approved,
                "cost": cost,
                "kind": "increment",
                "query_id": query_id,
                "targets": {tid: conf for tid, conf in sorted(targets.items())},
            }
        )

    def end_query(
        self,
        query_id: str,
        *,
        status: str,
        released: int,
        withheld: int,
        shortfall: int = 0,
        degraded: bool = False,
    ) -> None:
        """Close a query trail with its final outcome and flush its batch.

        ``degraded`` records that the increment plan came from a
        degradation path (fallback hop or exhausted-budget incumbent);
        the key is only written when set, and "degraded" sorts before
        every existing key, so records from non-degraded queries stay
        byte-identical to earlier journal versions.
        """
        record: dict = {
            "kind": "outcome",
            "query_id": query_id,
            "released": released,
            "shortfall": shortfall,
            "status": status,
            "withheld": withheld,
        }
        if degraded:
            record = {"degraded": True, **record}
        self._append(record)
        self._flush(query_id)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Flush pending trails, drain the writer, close the journal.

        A trail still buffered here belongs to a query that died before
        ``end_query`` (pipeline exception); its partial records are
        flushed so the journal keeps the evidence.  Idempotent.
        """
        with self._work:
            if self._closed:
                return
            self._closed = True
            leftovers = [
                self._buffers[query_id]
                for query_id in sorted(self._buffers, key=_query_number)
                if self._buffers[query_id]
            ]
            self._buffers.clear()
            if self._writer is not None:
                self._queue.extend(leftovers)
                leftovers = []
                self._stopping = True
                self._work.notify_all()
        if self._writer is not None:
            self._writer.join(timeout=10.0)
            self._writer = None
        for batch in leftovers:
            self._write_batch(batch)
        self._wal.close()

    def __enter__(self) -> "AuditLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _query_number(query_id: str) -> int:
    if query_id.startswith("q") and query_id[1:].isdigit():
        return int(query_id[1:])
    return 0
