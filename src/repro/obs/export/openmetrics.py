"""OpenMetrics text exposition and its strict parser.

The registry's flat dotted names (``solver.greedy.runs``) become valid
metric family names (``solver_greedy_runs``); the original dotted name is
preserved in the ``# HELP`` line so dashboards can map back.  Encoding
follows the OpenMetrics 1.0 text format:

* counters expose one ``<family>_total`` sample;
* gauges expose ``<family>``;
* histograms expose cumulative ``<family>_bucket{le="..."}`` samples
  (including ``le="+Inf"``), ``<family>_sum``, ``<family>_count``, plus
  interpolated quantile gauges ``<family>_p50/_p95/_p99`` (see
  :meth:`~repro.obs.metrics.Histogram.percentile` for the error bound);
* the exposition ends with ``# EOF``.

:func:`parse_openmetrics` is deliberately strict — it is the CI validator
that keeps the exposition honest (type lines before samples, cumulative
non-decreasing buckets, ``+Inf`` bucket equal to ``_count``, valid name
and label grammar, exactly one ``# EOF`` at the end).
"""

from __future__ import annotations

import math
import re
from typing import Any, Mapping

from ...errors import ReproError
from ..metrics import Histogram, MetricsRegistry, get_metrics

__all__ = [
    "OpenMetricsParseError",
    "render_openmetrics",
    "parse_openmetrics",
    "sanitize_metric_name",
    "sanitize_label_value",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>\S+))?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


class OpenMetricsParseError(ReproError):
    """The exposition violates the OpenMetrics text format."""


def sanitize_metric_name(name: str) -> str:
    """Map an arbitrary instrument name onto the metric-name grammar.

    Dots and any other invalid characters become underscores; a leading
    digit gains an underscore prefix.  The mapping is deterministic, so
    the same registry always renders the same families.
    """
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def sanitize_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    formatted = repr(float(value))
    return formatted


def _format_le(bound: float) -> str:
    if bound == math.inf:
        return "+Inf"
    return f"{bound:g}"


def render_openmetrics(registry: MetricsRegistry | None = None) -> str:
    """The registry's instruments as OpenMetrics text (ends in ``# EOF``)."""
    registry = registry if registry is not None else get_metrics()
    lines: list[str] = []
    used: dict[str, str] = {}
    for name in registry.names():
        instrument = registry._instruments[name]
        family = sanitize_metric_name(name)
        if family in used and used[family] != name:
            # Two dotted names collapsing onto one family: disambiguate
            # deterministically rather than emit a duplicate family.
            suffix = 2
            while f"{family}_{suffix}" in used:
                suffix += 1
            family = f"{family}_{suffix}"
        used[family] = name
        help_text = sanitize_label_value(name)
        if isinstance(instrument, Histogram):
            # snapshot() reads everything under the instrument's lock, so
            # the rendered count/sum/buckets are mutually consistent even
            # while other threads observe.
            snapshot = instrument.snapshot()
            lines.append(f"# TYPE {family} histogram")
            lines.append(f"# HELP {family} {help_text}")
            cumulative = 0
            per_bucket = list(snapshot["buckets"].values())
            for bound, count in zip(instrument.buckets, per_bucket):
                cumulative += count
                lines.append(
                    f'{family}_bucket{{le="{_format_le(bound)}"}} {cumulative}'
                )
            cumulative += per_bucket[-1]
            lines.append(f'{family}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{family}_count {cumulative}")
            lines.append(f"{family}_sum {_format_value(snapshot['sum'])}")
            for quantile in (50.0, 95.0, 99.0):
                estimate = instrument.percentile(quantile)
                if estimate is not None:
                    lines.append(
                        f"# TYPE {family}_p{quantile:g} gauge"
                    )
                    lines.append(
                        f"{family}_p{quantile:g} {_format_value(estimate)}"
                    )
                    used[f"{family}_p{quantile:g}"] = name
        elif type(instrument).__name__ == "Counter":
            lines.append(f"# TYPE {family} counter")
            lines.append(f"# HELP {family} {help_text}")
            lines.append(f"{family}_total {_format_value(instrument.value)}")
        else:  # gauge
            lines.append(f"# TYPE {family} gauge")
            lines.append(f"# HELP {family} {help_text}")
            lines.append(f"{family} {_format_value(instrument.value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> dict[str, dict[str, Any]]:
    """Strictly parse an OpenMetrics exposition.

    Returns ``{family: {"type": ..., "help": ..., "samples": [(name,
    labels, value), ...]}}``.  Raises :class:`OpenMetricsParseError` on
    any format violation — this is the validator CI runs on every dump.
    """
    if not text.endswith("# EOF\n"):
        raise OpenMetricsParseError("exposition must end with '# EOF\\n'")
    families: dict[str, dict[str, Any]] = {}
    current: str | None = None
    saw_eof = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        if saw_eof:
            raise OpenMetricsParseError(
                f"line {line_number}: content after # EOF"
            )
        if line == "# EOF":
            saw_eof = True
            continue
        if not line:
            raise OpenMetricsParseError(f"line {line_number}: blank line")
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4:
                raise OpenMetricsParseError(
                    f"line {line_number}: malformed TYPE line"
                )
            _, _, family, metric_type = parts
            if not _NAME_RE.match(family):
                raise OpenMetricsParseError(
                    f"line {line_number}: invalid family name {family!r}"
                )
            if metric_type not in ("counter", "gauge", "histogram", "summary",
                                   "unknown", "info", "stateset"):
                raise OpenMetricsParseError(
                    f"line {line_number}: unknown type {metric_type!r}"
                )
            if family in families:
                raise OpenMetricsParseError(
                    f"line {line_number}: duplicate TYPE for {family}"
                )
            families[family] = {"type": metric_type, "help": None, "samples": []}
            current = family
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                raise OpenMetricsParseError(
                    f"line {line_number}: malformed HELP line"
                )
            _, _, family, help_text = parts
            if family not in families:
                raise OpenMetricsParseError(
                    f"line {line_number}: HELP before TYPE for {family}"
                )
            families[family]["help"] = help_text
            continue
        if line.startswith("#"):
            raise OpenMetricsParseError(
                f"line {line_number}: unexpected comment {line!r}"
            )
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise OpenMetricsParseError(
                f"line {line_number}: malformed sample {line!r}"
            )
        sample_name = match.group("name")
        family = _family_of(sample_name, families)
        if family is None:
            raise OpenMetricsParseError(
                f"line {line_number}: sample {sample_name!r} has no TYPE"
            )
        if current is not None and family != current and family in families:
            # Samples may only appear inside their family's block.
            if families[family]["samples"] and current != family:
                raise OpenMetricsParseError(
                    f"line {line_number}: interleaved family {family}"
                )
        labels = _parse_labels(match.group("labels"), line_number)
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            raise OpenMetricsParseError(
                f"line {line_number}: bad value {raw_value!r}"
            ) from None
        metric_type = families[family]["type"]
        if metric_type == "counter" and not sample_name.endswith(
            ("_total", "_created")
        ):
            raise OpenMetricsParseError(
                f"line {line_number}: counter sample {sample_name!r} "
                f"must end in _total"
            )
        families[family]["samples"].append((sample_name, labels, value))
        current = family
    _validate_histograms(families)
    return families


def _family_of(
    sample_name: str, families: Mapping[str, Any]
) -> str | None:
    if sample_name in families:
        return sample_name
    for suffix in ("_total", "_bucket", "_sum", "_count", "_created"):
        if sample_name.endswith(suffix):
            candidate = sample_name[: -len(suffix)]
            if candidate in families:
                return candidate
    return None


def _parse_labels(
    raw: str | None, line_number: int
) -> dict[str, str]:
    if raw is None or raw == "":
        return {}
    labels: dict[str, str] = {}
    consumed = 0
    for match in _LABEL_RE.finditer(raw):
        name, value = match.group(1), match.group(2)
        if not _LABEL_NAME_RE.match(name):
            raise OpenMetricsParseError(
                f"line {line_number}: bad label name {name!r}"
            )
        if name in labels:
            raise OpenMetricsParseError(
                f"line {line_number}: duplicate label {name!r}"
            )
        labels[name] = value
        consumed = match.end()
        if consumed < len(raw) and raw[consumed] == ",":
            consumed += 1
    if consumed < len(raw.rstrip(",")):
        raise OpenMetricsParseError(
            f"line {line_number}: malformed labels {raw!r}"
        )
    return labels


def _validate_histograms(families: Mapping[str, dict[str, Any]]) -> None:
    for family, info in families.items():
        if info["type"] != "histogram":
            continue
        buckets: list[tuple[float, float]] = []
        total_count: float | None = None
        has_sum = False
        for sample_name, labels, value in info["samples"]:
            if sample_name == f"{family}_bucket":
                le = labels.get("le")
                if le is None:
                    raise OpenMetricsParseError(
                        f"{family}: bucket sample without le label"
                    )
                bound = math.inf if le == "+Inf" else float(le)
                buckets.append((bound, value))
            elif sample_name == f"{family}_count":
                total_count = value
            elif sample_name == f"{family}_sum":
                has_sum = True
        if not buckets:
            raise OpenMetricsParseError(f"{family}: histogram has no buckets")
        bounds = [bound for bound, _count in buckets]
        if bounds != sorted(bounds):
            raise OpenMetricsParseError(
                f"{family}: bucket bounds out of order"
            )
        if bounds[-1] != math.inf:
            raise OpenMetricsParseError(f"{family}: missing +Inf bucket")
        counts = [count for _bound, count in buckets]
        if any(b < a for a, b in zip(counts, counts[1:])):
            raise OpenMetricsParseError(
                f"{family}: bucket counts are not cumulative"
            )
        if total_count is None:
            raise OpenMetricsParseError(f"{family}: missing _count sample")
        if not has_sum:
            raise OpenMetricsParseError(f"{family}: missing _sum sample")
        if counts[-1] != total_count:
            raise OpenMetricsParseError(
                f"{family}: +Inf bucket {counts[-1]} != _count {total_count}"
            )
