"""Production telemetry exposition for the metrics registry.

* :func:`render_openmetrics` — the registry as OpenMetrics/Prometheus
  text: counters as ``_total`` samples, gauges, histograms with proper
  cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` encoding, names
  and labels sanitized to the spec's grammar, terminated by ``# EOF``.
* :func:`parse_openmetrics` — a strict parser for the same format; the
  round-trip validator CI runs against every dump.
* :class:`MetricsServer` — a zero-dependency ``http.server`` exposing
  ``/metrics`` (the shell's ``metrics serve``).
"""

from .openmetrics import (
    OpenMetricsParseError,
    parse_openmetrics,
    render_openmetrics,
    sanitize_metric_name,
)
from .server import MetricsServer

__all__ = [
    "OpenMetricsParseError",
    "parse_openmetrics",
    "render_openmetrics",
    "sanitize_metric_name",
    "MetricsServer",
]
