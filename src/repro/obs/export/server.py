"""A zero-dependency ``/metrics`` endpoint over ``http.server``.

:class:`MetricsServer` serves the process-wide (or an explicit) registry
as OpenMetrics text on a daemon thread — the shell's ``metrics serve``
and the scrape target the ROADMAP's serving arc will publish through.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..metrics import MetricsRegistry, get_metrics
from .openmetrics import render_openmetrics

__all__ = ["MetricsServer", "CONTENT_TYPE"]

#: The OpenMetrics content type Prometheus negotiates for.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    registry: MetricsRegistry | None = None  # set per-server subclass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "only /metrics is served")
            return
        registry = self.registry if self.registry is not None else get_metrics()
        body = render_openmetrics(registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes are high-frequency; stay silent


class MetricsServer:
    """Serve a metrics registry on ``http://host:port/metrics``.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports the
    bound one.  The server runs on a daemon thread: :meth:`start` returns
    immediately, :meth:`stop` shuts it down and joins the thread.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 9464,
    ) -> None:
        handler = type("BoundHandler", (_Handler,), {"registry": registry})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        if self._thread is not None:
            raise RuntimeError("metrics server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join(timeout=5.0)
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
